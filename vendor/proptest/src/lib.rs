//! Offline stand-in for the `proptest` crate.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map` / `prop_flat_map`,
//! range and tuple strategies, [`collection::vec`], [`any`], simple
//! regex-class string strategies, [`prop_oneof!`], and the
//! `prop_assert*` / [`prop_assume!`] macros.
//!
//! Differences from real proptest: generation is seeded deterministically
//! from the test's module path + name (reproducible run-to-run with no env
//! vars), and failing cases are reported but **not shrunk**.

use std::ops::Range;

pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Runner configuration. Only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a generated case did not count as a pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip the case without counting it.
    Reject,
    /// A `prop_assert*` failed.
    Fail(String),
}

/// Deterministic generator driving all strategies (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary string (the test's full path), FNV-1a hashed.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    pub fn from_seed(seed: u64) -> Self {
        // SplitMix64 expansion.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        TestRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values of one type.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(std::rc::Rc::new(self))
    }
}

/// Type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice between boxed alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128) - (self.start as i128);
                assert!(span > 0, "empty range strategy");
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                ((self.start as i128) + v) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                ((*self.start() as i128) + v) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bound accepted by [`vec()`]: an exact `usize` or a `Range`.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.end > r.start, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len)` (the function, not the macro).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Regex-class string strategies: `"[a-z][a-z0-9]{0,8}"` etc.
// ---------------------------------------------------------------------------

enum Atom {
    Lit(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Compile the character-class/quantifier regex subset the tests use.
/// Supported: literals, `\x` escapes, `[...]` classes with ranges, and the
/// `{m}`, `{m,n}`, `?`, `*`, `+` quantifiers.
fn compile_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        chars[i]
                    } else {
                        chars[i]
                    };
                    // Range `a-z` (a `-` that is escaped, first or last is a
                    // literal).
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let hi = chars[i + 2];
                        for v in c..=hi {
                            set.push(v);
                        }
                        i += 3;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated [class] in pattern {pattern:?}"
                );
                i += 1; // consume ']'
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                let c = chars[i];
                i += 1;
                Atom::Lit(c)
            }
            c => {
                i += 1;
                Atom::Lit(c)
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {quantifier}")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n: usize = body.trim().parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in compile_pattern(self) {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty [class] in pattern {self:?}");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Property-test entry point; same surface as real proptest for the forms
/// the workspace uses.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            let strat = ($($strat,)+);
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < cfg.cases {
                let ($($arg,)+) = $crate::Strategy::generate(&strat, &mut rng);
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match result {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < cfg.cases.saturating_mul(256).max(4096),
                            "prop_assume! rejected too many cases"
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case failed: {}", msg)
                    }
                }
            }
        }
    )*};
}

/// Assert inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l, r, stringify!($left), stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Skip cases violating a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("t1");
        let strat = (1usize..5, -3i64..3, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!((1..5).contains(&a));
            assert!((-3..3).contains(&b));
            assert!((0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut rng = TestRng::for_test("t2");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = Strategy::generate(&"[a-z0-9 _/.-]{0,24}", &mut rng);
            assert!(t.len() <= 24);
            assert!(t
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || " _/.-".contains(c)));
        }
    }

    #[test]
    fn vec_and_oneof_and_flat_map() {
        let mut rng = TestRng::for_test("t3");
        let strat = (1usize..4)
            .prop_flat_map(|rank| crate::collection::vec(0u8..10, rank))
            .prop_map(|v| v.len());
        for _ in 0..100 {
            let n = Strategy::generate(&strat, &mut rng);
            assert!((1..4).contains(&n));
        }
        let choice = prop_oneof![Just(1u8), Just(2u8), (5u8..7).prop_map(|x| x)];
        for _ in 0..100 {
            let v = Strategy::generate(&choice, &mut rng);
            assert!(v == 1 || v == 2 || v == 5 || v == 6);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != 9);
            prop_assert!(a < 10);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(a, 100);
        }
    }
}
