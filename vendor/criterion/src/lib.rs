//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the measurement subset the `hpacml-bench` benches use: groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `Throughput`, the
//! `criterion_group!` / `criterion_main!` macros and a `Bencher` whose
//! `iter` auto-scales iteration counts to the configured sample size. Output
//! is one human-readable line per benchmark (mean ± spread); there is no
//! HTML report or statistical regression machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
    /// Substring filter from the command line (cargo bench passes the free
    /// argument through).
    filter: Option<String>,
    /// Smoke mode (`cargo bench -- --test`): run each routine a couple of
    /// times without calibration so CI validates every bench cheaply, like
    /// upstream criterion's test mode.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            filter: None,
            test_mode: false,
        }
    }
}

impl Criterion {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn with_filter(mut self, f: Option<String>) -> Self {
        self.filter = f;
        self
    }

    /// Enable smoke mode (see [`Criterion::default`] docs); used by the
    /// `criterion_main!` entry point when `--test` is on the command line.
    pub fn with_test_mode(mut self, on: bool) -> Self {
        self.test_mode = on;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: if self.test_mode { 2 } else { self.sample_size },
            throughput: None,
            filter: self.filter.clone(),
            test_mode: self.test_mode,
        }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("");
        g.bench_function(id, f);
        g.finish();
    }
}

/// Units processed per iteration, reported as a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    filter: Option<String>,
    test_mode: bool,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.test_mode {
            self.sample_size = n.max(2);
        }
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = if self.name.is_empty() {
            id.id.clone()
        } else {
            format!("{}/{}", self.name, id.id)
        };
        if let Some(filt) = &self.filter {
            if !full.contains(filt.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            target: self.sample_size,
            test_mode: self.test_mode,
        };
        f(&mut b);
        report(&full, &b.samples, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {}
}

/// Runs the closure under measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
    test_mode: bool,
}

impl Bencher {
    /// Time `routine`, collecting `sample_size` samples. Iterations per
    /// sample auto-scale so very fast routines still get resolvable timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            // Smoke mode: execute once per sample, no calibration — just
            // prove the routine runs.
            for _ in 0..self.target {
                let t0 = Instant::now();
                black_box(routine());
                self.samples.push(t0.elapsed());
            }
            return;
        }
        // Warm up and calibrate: aim for >= 20us per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_micros(20) || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.target {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let lo = sorted[0];
    let hi = sorted[sorted.len() - 1];
    let rate = throughput.map(|t| {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!("  {:.3} Melem/s", per_sec(n) / 1e6),
            Throughput::Bytes(n) => format!("  {:.3} MiB/s", per_sec(n) / (1024.0 * 1024.0)),
        }
    });
    println!(
        "{name:<50} time: [{} {} {}]{}",
        human(lo),
        human(median),
        human(hi),
        rate.unwrap_or_default()
    );
}

/// Declare a group of benchmark functions, criterion style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name(filter: Option<String>) {
            let test_mode = std::env::args().any(|a| a == "--test");
            $(
                {
                    let mut c: $crate::Criterion = $cfg;
                    c = c.with_filter(filter.clone()).with_test_mode(test_mode);
                    $target(&mut c);
                }
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point: run each group, passing through an optional substring filter.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes `--bench`; treat the first non-flag
            // argument as a name filter, like criterion does.
            let filter = std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-'));
            $( $group(filter.clone()); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(100));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }
}
