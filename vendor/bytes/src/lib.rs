//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the little-endian [`Buf`]/[`BufMut`]
//! accessor subset the store and NN serializers use. `Bytes` is a cheaply
//! cloneable `Arc<[u8]>` window with an advancing read cursor, matching the
//! semantics the codecs rely on (`remaining`, `advance`, `slice`).

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read-side byte buffer: an immutable shared backing store plus a window.
#[derive(Clone, Debug, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Length of the remaining window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window of the current window (indices relative to it).
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

/// Write-side byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    pub fn clear(&mut self) {
        self.data.clear();
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    /// The remaining bytes as one contiguous chunk.
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor that appends little-endian primitives.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(42);
        w.put_u64_le(1 << 40);
        w.put_i64_le(-3);
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 42);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_i64_le(), -3);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_f64_le(), -2.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_and_advance_window() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mut s = b.slice(2..5);
        assert_eq!(s.chunk(), &[2, 3, 4]);
        s.advance(1);
        assert_eq!(s.chunk(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }
}
