//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! Implements the subset the workspace uses: [`rngs::SmallRng`] (a
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom`] (`shuffle`, `choose`). All generators are fully
//! deterministic from their seed; there is no entropy source on purpose —
//! every call site in this workspace seeds explicitly for reproducibility.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the exact PCG32-based recipe of
    /// `rand_core` 0.6, so seeded sequences match real rand 0.8 bit-for-bit
    /// (fixed-seed tests in this workspace are calibrated against them).
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Values sampled uniformly over a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = if inclusive {
                    (hi as i128) - (lo as i128) + 1
                } else {
                    (hi as i128) - (lo as i128)
                };
                assert!(span > 0, "gen_range: empty range");
                // Multiply-shift rejection-free mapping is fine for a stub:
                // bias is < 2^-64 for the spans the workspace uses.
                let v = (rng.next_u64() as u128 * span as u128) >> 64;
                ((lo as i128) + v as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_uniform_float {
    ($t:ty, $bits:expr) => {
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> (64 - $bits)) as $t / (1u64 << $bits) as $t;
                lo + (hi - lo) * unit
            }
        }
    };
}

impl_uniform_float!(f32, 24);
impl_uniform_float!(f64, 53);

/// Argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self)
    }

    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::gen_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator rand 0.8 backs `SmallRng`
    /// with on 64-bit targets.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s.iter().all(|&x| x == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let i = r.gen_range(-5i64..6);
            assert!((-5..6).contains(&i));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0usize..=4);
            assert!(u <= 4);
        }
    }

    #[test]
    fn uniform_unit_mean() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
