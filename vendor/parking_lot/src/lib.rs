//! Offline stand-in for the `parking_lot` crate.
//!
//! The container image has no registry access, so this crate provides the
//! subset of the real API the workspace uses — `Mutex`, `RwLock` and
//! `Condvar` with parking_lot's non-poisoning semantics — implemented over
//! `std::sync`. Poisoned std locks are recovered transparently, matching
//! parking_lot's behavior of not propagating panics through locks.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as ss;

/// A mutual-exclusion primitive. `lock` returns the guard directly (no
/// poisoning `Result`), like the real parking_lot.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(ss::PoisonError::into_inner),
            ),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(ss::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard returned by [`Mutex::lock`]. The inner `Option` is only ever `None`
/// transiently inside [`Condvar::wait`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<ss::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable usable with [`MutexGuard`]; `wait` takes the guard by
/// `&mut`, parking_lot style.
#[derive(Default)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: ss::Condvar::new(),
        }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        guard.inner = Some(
            self.inner
                .wait(g)
                .unwrap_or_else(ss::PoisonError::into_inner),
        );
    }

    /// Bounded wait, parking_lot style: takes the guard by `&mut` and
    /// reports whether the timeout elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard taken during wait");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(ss::PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait ended by timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A reader-writer lock with non-poisoning guards.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: ss::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: ss::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(ss::PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(ss::PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(ss::PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ss::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ss::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let cv = std::sync::Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let t = std::thread::spawn(move || {
            let mut g = m2.lock();
            while *g == 0 {
                cv2.wait(&mut g);
            }
            *g
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *m.lock() = 7;
        cv.notify_all();
        assert_eq!(t.join().unwrap(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
