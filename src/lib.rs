//! Umbrella crate for the HPAC-ML reproduction.
//!
//! Re-exports every subsystem crate under a short module name so examples
//! and downstream users can depend on one crate:
//!
//! ```no_run
//! use hpac_ml::tensor::Tensor;
//!
//! let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]).unwrap();
//! assert_eq!(t.dims(), &[2, 2]);
//! ```

pub use hpacml_apps as apps;
pub use hpacml_bench as bench;
pub use hpacml_bridge as bridge;
pub use hpacml_core as core;
pub use hpacml_directive as directive;
pub use hpacml_nn as nn;
pub use hpacml_par as par;
pub use hpacml_search as search;
pub use hpacml_serve as serve;
pub use hpacml_store as store;
pub use hpacml_tensor as tensor;
