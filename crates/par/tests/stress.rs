//! Stress tests for the work-stealing dispatcher: exactly-once execution
//! under deliberately imbalanced chunk durations (forcing steals), nested
//! dispatch, panic containment, and the `with_pool` scoping used by the
//! thread-count benchmarks.

use hpacml_par::{with_pool, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Burn deterministic CPU proportional to `units` (no wall clock, no rng).
fn spin_work(units: usize) -> u64 {
    let mut acc = 0u64;
    for i in 0..units {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        std::hint::black_box(acc);
    }
    acc
}

#[test]
fn every_index_runs_exactly_once_under_stealing() {
    // Severely imbalanced chunk costs: the first participant's span holds
    // almost all the work, so the job cannot finish in time without the
    // other participants stealing from it. Exactly-once is the invariant
    // the disjoint-slice helpers build their safety argument on.
    let pool = Pool::new(3);
    let n = 4096usize;
    let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    for round in 0..20 {
        hits.iter().for_each(|h| h.store(0, Ordering::Relaxed));
        pool.parallel_for(n, 16, |r| {
            for i in r {
                // Front-loaded cost: indices in the first quarter are ~100x
                // more expensive than the rest.
                let units = if i < n / 4 { 2000 } else { 20 };
                std::hint::black_box(spin_work(units));
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "round {round}: index {i} did not run exactly once"
            );
        }
    }
    let stats = pool.stats();
    assert_eq!(
        stats.chunks,
        stats.participant_chunks.iter().sum::<u64>(),
        "every executed chunk must be attributed to exactly one participant"
    );
}

#[test]
fn nested_dispatch_inside_stolen_chunks_runs_inline() {
    let pool = Pool::new(3);
    let count = AtomicUsize::new(0);
    pool.parallel_for(64, 1, |outer| {
        for _ in outer {
            // Nested call on the same pool: must run inline, not deadlock on
            // the single dispatch slot.
            pool.parallel_for(100, 7, |inner| {
                count.fetch_add(inner.len(), Ordering::Relaxed);
            });
        }
    });
    assert_eq!(count.load(Ordering::Relaxed), 64 * 100);
}

#[test]
fn panic_in_stolen_chunk_is_contained_and_pool_survives() {
    let pool = Pool::new(2);
    for _ in 0..5 {
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.parallel_for(512, 4, |r| {
                // Imbalance forces stealing; one mid-range chunk panics.
                if r.start < 128 {
                    std::hint::black_box(spin_work(5000));
                }
                if r.contains(&300) {
                    panic!("injected failure");
                }
            });
        }));
        assert!(res.is_err(), "the injected panic must reach the caller");
        // Pool must be fully reusable: next job completes and covers all.
        let acc = AtomicUsize::new(0);
        pool.parallel_for(1000, 16, |r| {
            acc.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 1000);
    }
}

#[test]
fn with_pool_scopes_nest_and_restore() {
    let a = Pool::new(1);
    let b = Pool::new(3);
    assert_eq!(with_pool(&a, hpacml_par::current_parallelism), 2);
    let (outer, inner) = with_pool(&a, || {
        let inner = with_pool(&b, hpacml_par::current_parallelism);
        (hpacml_par::current_parallelism(), inner)
    });
    assert_eq!(outer, 2, "inner scope must restore the outer override");
    assert_eq!(inner, 4);
}

#[test]
fn slice_helpers_follow_the_pool_override() {
    let pool = Pool::new(2);
    let before = pool.stats().jobs;
    let mut v = vec![0usize; 10_000];
    with_pool(&pool, || {
        hpacml_par::par_chunks_mut(&mut v, 64, |start, sub| {
            for (k, x) in sub.iter_mut().enumerate() {
                *x = start + k;
            }
        });
    });
    assert!(v.iter().enumerate().all(|(i, &x)| x == i));
    assert!(
        pool.stats().jobs > before,
        "par_chunks_mut must have dispatched on the override pool"
    );
}

#[test]
fn repeated_jobs_alternate_with_broadcasts() {
    // Interleave normal jobs and broadcasts to shake out slot-reuse bugs
    // between the two dispatch modes (stealing on/off share the same slot).
    let workers = 3;
    let pool = Pool::new(workers);
    for round in 0..50usize {
        let acc = AtomicUsize::new(0);
        pool.parallel_for(round * 13 + 1, 4, |r| {
            acc.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), round * 13 + 1);
        let seen = AtomicUsize::new(0);
        pool.broadcast(|_| {
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), workers + 1);
    }
}

#[test]
fn occupancy_and_steal_ratio_are_in_range() {
    let pool = Pool::new(3);
    for _ in 0..10 {
        pool.parallel_for(2048, 8, |r| {
            for i in r {
                std::hint::black_box(spin_work(if i < 512 { 500 } else { 10 }));
            }
        });
    }
    let s = pool.stats();
    assert!(s.jobs >= 10);
    let ratio = s.steal_ratio();
    assert!(
        (0.0..=1.0).contains(&ratio),
        "steal ratio {ratio} out of range"
    );
    let occ = s.occupancy();
    assert!((0.0..=1.0).contains(&occ), "occupancy {occ} out of range");
    // Every dispatched job was executed by at least one participant.
    assert!(s.participant_jobs.iter().sum::<u64>() >= 10);
}
