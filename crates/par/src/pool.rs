//! Persistent worker pool with chunked self-scheduling and work stealing.
//!
//! # Dispatch model
//!
//! A job splits `0..len` into `grain`-sized chunks, and the chunk index
//! space is partitioned evenly into one bounded queue per *participant*
//! (every worker thread plus the caller, which always works too). Each
//! queue is a single atomic cursor: the owner claims chunks from the
//! front of its own span, and a participant whose span is exhausted
//! *steals* by claiming from another participant's cursor — owner and
//! thief use the identical compare-exchange, so a chunk index is handed
//! out exactly once no matter who asks. Long chunks therefore cannot
//! strand work behind a busy participant the way a static even partition
//! can, and idle participants self-balance without any coordination
//! beyond the per-queue cursor.
//!
//! # Zero-allocation dispatch
//!
//! The queues, completion counter and per-participant statistics are all
//! allocated once when the pool is built; dispatching a job only writes
//! the preallocated slot. This keeps `parallel_for` on the steady-state
//! inference path allocation-free (proven by the counting-allocator
//! harnesses in `hpacml-nn`). Because the slot is reused, every cursor is
//! tagged with the job's sequence number: a worker that raced past the
//! end of an old job can never claim a chunk of a newer one (its
//! compare-exchange fails on the tag), which is what makes slot reuse
//! sound without a per-job allocation.
//!
//! # Determinism
//!
//! Stealing changes *which thread* runs a chunk and *when*, never what
//! the chunk computes: tasks own disjoint output ranges and each output
//! element keeps its one fixed accumulation order (see
//! `hpacml-tensor::gemm`). Results are therefore bitwise identical across
//! worker counts, steal schedules and repeated runs — pinned by the
//! `gemm_determinism` integration suite.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Lifetime-erased pointer to the task closure of an in-flight job.
///
/// # Safety
///
/// The pointee is a `dyn Fn(Range<usize>) + Sync` borrowed from the caller's
/// stack. It is only dereferenced while the job it belongs to is live, and the
/// caller of [`Pool::parallel_for`] blocks until the job's completion barrier
/// trips (`remaining == 0`), so the borrow is never outlived. A participant
/// holding a *stale* descriptor cannot reach the pointer at all: its chunk
/// claims fail on the job sequence tag before any dereference. `Sync` on the
/// closure makes concurrent invocation sound; the raw pointer itself is made
/// `Send + Sync` here because those invariants are upheld by construction.
#[derive(Clone, Copy)]
struct TaskPtr(*const (dyn Fn(Range<usize>) + Sync));
// SAFETY: see the type-level safety contract above — the pointee outlives
// every job that dereferences it (completion barrier), so sending the
// pointer to worker threads is sound.
unsafe impl Send for TaskPtr {}
// SAFETY: the pointee is `Sync`, so shared `&TaskPtr` access (concurrent
// invocation from many workers) is sound; see the contract above.
unsafe impl Sync for TaskPtr {}

/// Everything a participant needs to work on the current job. Published
/// under the state mutex (fresh workers copy it after observing a new
/// epoch) and kept by value while draining, so the reusable dispatch slot
/// can be rewritten for the next job without tearing anyone's view.
#[derive(Clone, Copy)]
struct JobDesc {
    task: TaskPtr,
    /// One past the last index of the iteration space.
    len: usize,
    /// Chunk size handed to each claim.
    grain: usize,
    /// Total chunks: `len.div_ceil(grain)`.
    chunks: u32,
    /// Job sequence number; every cursor claim is tagged with it so a
    /// stale participant can never claim chunks of a newer job.
    seq: u32,
    /// `false` for [`Pool::broadcast`] jobs: each participant runs only
    /// its own queue, guaranteeing per-thread execution (used for
    /// per-worker scratch warm-up).
    steal: bool,
}

impl JobDesc {
    /// Chunk-index span `[base, limit)` owned by participant `p` of `n`:
    /// the even partition the stealing then rebalances.
    #[inline]
    fn span(&self, p: usize, n: usize) -> (u32, u32) {
        let c = self.chunks as usize;
        ((p * c / n) as u32, ((p + 1) * c / n) as u32)
    }
}

struct DispatchState {
    /// Descriptor of the in-flight job, if any.
    desc: Option<JobDesc>,
    /// Bumped on every dispatch (and on shutdown) to wake parked workers.
    epoch: u64,
    /// Next job sequence number for cursor tagging.
    next_seq: u32,
    shutdown: bool,
}

/// Lifetime per-participant counters (index 0 aggregates caller threads,
/// index `i + 1` is worker `i`).
#[derive(Default)]
struct ParticipantStat {
    /// Chunks this participant executed.
    chunks: AtomicU64,
    /// Chunks claimed from another participant's queue.
    steals: AtomicU64,
    /// Jobs in which this participant executed at least one chunk — the
    /// numerator of the occupancy diagnostic.
    jobs: AtomicU64,
}

struct Shared {
    state: Mutex<DispatchState>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    /// Serializes dispatchers: the job slot below is reused in place, so at
    /// most one job may be in flight. Acquired with `try_lock` only — a
    /// caller that loses the race runs its job inline (liveness, and no
    /// queueing allocation).
    dispatch: Mutex<()>,
    /// One claim cursor per participant: `(job_seq << 32) | next_chunk`.
    /// Preallocated at pool build; rewritten per job under dispatch
    /// exclusivity (see [`Pool::run_job`]).
    queues: Vec<AtomicU64>,
    /// Chunks of the current job not yet completed; the completion barrier.
    remaining: AtomicUsize,
    /// Set if any chunk of the current job panicked.
    panicked: AtomicBool,
    jobs_dispatched: AtomicU64,
    stats: Vec<ParticipantStat>,
}

/// Claim one chunk from `cursor` if it still belongs to job `seq` and its
/// span has room. Owner and thief call this identically — the
/// compare-exchange is what makes "hand out each chunk exactly once" hold
/// under any interleaving.
#[inline]
fn claim(cursor: &AtomicU64, seq: u32, limit: u32) -> Option<u32> {
    let mut cur = cursor.load(Ordering::Acquire);
    loop {
        if (cur >> 32) as u32 != seq {
            return None; // a newer job owns this queue now
        }
        let next = cur as u32;
        if next >= limit {
            return None;
        }
        match cursor.compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return Some(next),
            Err(actual) => cur = actual,
        }
    }
}

/// Run one claimed chunk and tick the completion barrier.
fn run_chunk(shared: &Shared, desc: &JobDesc, chunk: u32) {
    let start = chunk as usize * desc.grain;
    let stop = (start + desc.grain).min(desc.len);
    // SAFETY: the pointee is live for the whole job — the caller of
    // `parallel_for` blocks on the completion barrier (`remaining == 0`)
    // before its frame (which owns the closure) can end, and a chunk of
    // this job can only be claimed while the job is in flight (sequence
    // tag check in `claim`).
    let task = unsafe { &*desc.task.0 };
    if catch_unwind(AssertUnwindSafe(|| task(start..stop))).is_err() {
        shared.panicked.store(true, Ordering::Relaxed);
    }
    shared.remaining.fetch_sub(1, Ordering::Release);
}

/// Work on the current job as participant `me`: drain the own queue
/// front-to-back, then sweep the other queues cyclically and steal.
/// Cursors only move forward, so one sweep suffices — a queue observed
/// empty stays empty for this job.
fn drain(shared: &Shared, desc: &JobDesc, me: usize) {
    let n = shared.queues.len();
    let mut executed = 0u64;
    let mut stolen = 0u64;
    let sweep = if desc.steal { n } else { 1 };
    for off in 0..sweep {
        let victim = (me + off) % n;
        let (_, limit) = desc.span(victim, n);
        while let Some(chunk) = claim(&shared.queues[victim], desc.seq, limit) {
            run_chunk(shared, desc, chunk);
            executed += 1;
            if off > 0 {
                stolen += 1;
            }
        }
    }
    let st = &shared.stats[me];
    if executed > 0 {
        st.chunks.fetch_add(executed, Ordering::Relaxed);
        st.jobs.fetch_add(1, Ordering::Relaxed);
    }
    if stolen > 0 {
        st.steals.fetch_add(stolen, Ordering::Relaxed);
    }
}

thread_local! {
    /// True while this thread is executing inside a pool task (worker or
    /// participating caller); nested `parallel_for` calls then run
    /// sequentially inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// RAII in-worker flag: restored even if the task unwinds, so a panicking
/// inline task cannot leave the thread permanently marked as a worker.
struct InWorkerGuard {
    was: bool,
}

impl InWorkerGuard {
    fn set() -> Self {
        InWorkerGuard {
            was: IN_WORKER.with(|f| f.replace(true)),
        }
    }
}

impl Drop for InWorkerGuard {
    fn drop(&mut self) {
        let was = self.was;
        IN_WORKER.with(|f| f.set(was));
    }
}

/// Run a job inline on the calling thread, preserving the grain-multiple
/// chunking (callers like `par_chunks_mut` rely on every range starting
/// at a multiple of `grain` with length <= grain). The thread is flagged
/// in-worker for the duration, exactly as it would be when participating
/// in a dispatched job, so the nesting rule is uniform: task bodies never
/// re-dispatch.
fn run_inline(len: usize, grain: usize, task: &(dyn Fn(Range<usize>) + Sync)) {
    let _guard = InWorkerGuard::set();
    let mut s = 0;
    while s < len {
        let e = (s + grain).min(len);
        task(s..e);
        s = e;
    }
}

/// Best-effort thread pinning for persistent worker affinity.
mod affinity {
    /// Pin the calling thread to `cpu` (modulo the mask width). Returns
    /// whether the kernel accepted the mask; failure (sandboxes, exotic
    /// platforms) is harmless — the thread simply stays unpinned.
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    pub fn pin_current_thread(cpu: usize) -> bool {
        const WORDS: usize = 16; // 1024-bit CPU mask
        let mut mask = [0usize; WORDS];
        mask[(cpu / 64) % WORDS] |= 1usize << (cpu % 64);
        let ret: isize;
        // SAFETY: raw `sched_setaffinity(0, sizeof(mask), &mask)` syscall
        // (number 203 on x86_64). pid 0 targets the calling thread; the
        // kernel only reads `WORDS * 8` bytes from the mask, which is a
        // live stack array for the duration of the call. `syscall`
        // clobbers rcx/r11 per the ABI, declared below.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 203isize => ret,
                in("rdi") 0,
                in("rsi") WORDS * 8,
                in("rdx") mask.as_ptr(),
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret == 0
    }

    #[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
    pub fn pin_current_thread(_cpu: usize) -> bool {
        false
    }
}

/// A persistent pool of worker threads.
///
/// All parallel work in the workspace — accurate benchmark kernels, NN
/// matmul/conv kernels, data-bridge sweeps — is dispatched through one of
/// these (normally the [`global`] pool).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    /// Create a pool with `workers` worker threads (callers participate too,
    /// so total parallelism is `workers + 1`). Workers are not pinned; the
    /// [`global`] pool uses [`Pool::with_affinity`].
    pub fn new(workers: usize) -> Self {
        Self::with_affinity(workers, false)
    }

    /// [`Pool::new`] with optional persistent worker affinity: worker `i`
    /// pins itself to CPU `(i + 1) % ncpus` (the caller keeps CPU 0's
    /// share), giving a stable worker→CPU mapping where the platform
    /// allows (`sched_setaffinity`; silently skipped elsewhere or on a
    /// single-CPU host).
    pub fn with_affinity(workers: usize, pin: bool) -> Self {
        let participants = workers + 1;
        let ncpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(DispatchState {
                desc: None,
                epoch: 0,
                next_seq: 1,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            dispatch: Mutex::new(()),
            queues: (0..participants).map(|_| AtomicU64::new(0)).collect(),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            jobs_dispatched: AtomicU64::new(0),
            stats: (0..participants)
                .map(|_| ParticipantStat::default())
                .collect(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let cpu = (pin && ncpus > 1).then_some((i + 1) % ncpus);
                std::thread::Builder::new()
                    .name(format!("hpacml-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i + 1, cpu))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads (not counting the caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Statistics snapshot (see [`crate::PoolStats`] for the derived
    /// steal-ratio and occupancy diagnostics).
    pub fn stats(&self) -> crate::PoolStats {
        let s = &self.shared;
        let participant_chunks: Vec<u64> = s
            .stats
            .iter()
            .map(|p| p.chunks.load(Ordering::Relaxed))
            .collect();
        let participant_jobs: Vec<u64> = s
            .stats
            .iter()
            .map(|p| p.jobs.load(Ordering::Relaxed))
            .collect();
        crate::PoolStats {
            jobs: s.jobs_dispatched.load(Ordering::Relaxed),
            workers: self.workers,
            chunks: participant_chunks.iter().sum(),
            steals: s
                .stats
                .iter()
                .map(|p| p.steals.load(Ordering::Relaxed))
                .sum(),
            participant_chunks,
            participant_jobs,
        }
    }

    /// Run `task` over `0..len` in parallel, handing out `grain`-sized chunks.
    ///
    /// The caller participates in the work and returns only after every chunk
    /// has completed. Panics in any chunk are re-raised on the caller after
    /// the barrier (so the pool itself never deadlocks on a panicked task).
    /// Dispatch is allocation-free: the job slot is preallocated, and a
    /// second caller arriving while a job is in flight runs its own job
    /// inline instead of queueing.
    pub fn parallel_for<F>(&self, len: usize, grain: usize, task: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        // Sequential fast paths: tiny jobs and nested calls.
        let nested = IN_WORKER.with(|f| f.get());
        if nested || self.workers == 0 || len <= grain {
            run_inline(len, grain, &task);
            return;
        }
        // One dispatch at a time per pool: the slot is reused in place, so a
        // concurrent caller (another session thread) runs inline rather than
        // blocking — full liveness, no allocation, no cross-job interference.
        // The guard is held across the whole job (released on unwind too).
        let Some(_dispatch) = self.shared.dispatch.try_lock() else {
            run_inline(len, grain, &task);
            return;
        };
        self.run_job(len, grain, &task, true);
    }

    /// Run `f(participant)` exactly once on every participant — each worker
    /// thread and the caller. Stealing is disabled for the job, so each
    /// participant is guaranteed to execute its own (single-chunk) queue.
    /// Used to warm per-thread resources (GEMM scratch, workspaces) so the
    /// parallel forward path is allocation-free from the first dispatch.
    ///
    /// Best-effort from nested contexts or when another dispatch is in
    /// flight: `f(0)` then runs once on the calling thread only (workers
    /// warm lazily on their first real task instead).
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let run_local = || {
            let _guard = InWorkerGuard::set();
            f(0);
        };
        if IN_WORKER.with(|g| g.get()) || self.workers == 0 {
            run_local();
            return;
        }
        let Some(_dispatch) = self.shared.dispatch.try_lock() else {
            run_local();
            return;
        };
        let task = |r: Range<usize>| {
            for i in r {
                f(i);
            }
        };
        self.run_job(self.workers + 1, 1, &task, false);
    }

    /// Publish a job into the preallocated slot, participate, and block on
    /// the completion barrier. Caller must hold the `dispatch` lock.
    fn run_job(&self, len: usize, grain: usize, task: &(dyn Fn(Range<usize>) + Sync), steal: bool) {
        let shared = &*self.shared;
        let chunks = len.div_ceil(grain);
        assert!(
            chunks <= u32::MAX as usize,
            "parallel_for: more than 2^32 chunks"
        );
        // SAFETY: erase the closure's lifetime. The completion barrier below
        // guarantees every participant is done with `task` before this frame
        // ends, and stale descriptors cannot claim chunks (sequence tag).
        let erased: &'static (dyn Fn(Range<usize>) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(Range<usize>) + Sync), _>(task) };
        let participants = shared.queues.len();
        let desc = {
            let mut st = self.shared.state.lock();
            let seq = st.next_seq;
            st.next_seq = st.next_seq.wrapping_add(1);
            let desc = JobDesc {
                task: TaskPtr(erased as *const _),
                len,
                grain,
                chunks: chunks as u32,
                seq,
                steal,
            };
            // The previous job fully completed (dispatch exclusivity +
            // barrier), so the slot fields are quiescent and safe to rewrite.
            shared.remaining.store(chunks, Ordering::Relaxed);
            shared.panicked.store(false, Ordering::Relaxed);
            for (p, q) in shared.queues.iter().enumerate() {
                let (base, _) = desc.span(p, participants);
                q.store(((seq as u64) << 32) | base as u64, Ordering::Release);
            }
            st.desc = Some(desc);
            st.epoch += 1;
            shared.jobs_dispatched.fetch_add(1, Ordering::Relaxed);
            desc
        };
        self.shared.work_cv.notify_all();

        // The caller works too — flagged as in-worker for the duration so a
        // nested `parallel_for` issued from inside its chunks runs inline
        // (the documented nesting rule).
        {
            let _guard = InWorkerGuard::set();
            drain(shared, &desc, 0);
        }

        // Completion barrier: spin briefly, then yield. Chunks are sized so
        // that the tail wait is short; yielding avoids burning a core when a
        // single long chunk straggles.
        let mut spins = 0u32;
        while shared.remaining.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        // Retire the job so late-waking workers see an empty slot and park.
        {
            let mut st = self.shared.state.lock();
            st.desc = None;
        }

        if shared.panicked.load(Ordering::Relaxed) {
            panic!("hpacml-par: a parallel_for task panicked");
        }
    }

    /// Parallel map-reduce over `0..len`: `map` produces a partial result per
    /// chunk, `fold` combines partials (in unspecified order), starting from
    /// `identity`.
    pub fn parallel_reduce<T, M, R>(
        &self,
        len: usize,
        grain: usize,
        identity: T,
        map: M,
        fold: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        let partials = Mutex::new(Vec::new());
        self.parallel_for(len, grain, |r| {
            let part = map(r);
            partials.lock().push(part);
        });
        partials.into_inner().into_iter().fold(identity, fold)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            st.epoch += 1;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, me: usize, pin_cpu: Option<usize>) {
    if let Some(cpu) = pin_cpu {
        affinity::pin_current_thread(cpu);
    }
    IN_WORKER.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let desc = {
            let mut st = shared.state.lock();
            while st.epoch == seen_epoch && !st.shutdown {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.desc
        };
        if let Some(desc) = desc {
            drain(shared, &desc, me);
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The `HPACML_THREADS` contract: total thread count (workers + caller).
///
/// * unset, empty, or unparseable → `available_parallelism()` (auto);
/// * `0` or `1` → 1 total thread (caller-only pool, no workers; `0` is
///   clamped so it cannot mean "no threads at all");
/// * `N ≥ 2` → `N - 1` workers plus the participating caller.
pub fn total_threads_from_env(raw: Option<&str>) -> usize {
    match raw
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .and_then(|s| s.parse::<usize>().ok())
    {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    }
}

/// The process-wide pool, built on first use with
/// [`total_threads_from_env`] (`HPACML_THREADS`) and persistent worker
/// affinity.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let total = total_threads_from_env(std::env::var("HPACML_THREADS").ok().as_deref());
        Pool::with_affinity(total - 1, true)
    })
}

thread_local! {
    /// Innermost `with_pool` override for this thread, if any.
    static CURRENT_POOL: std::cell::Cell<Option<*const Pool>> =
        const { std::cell::Cell::new(None) };
}

/// Run `f` with `pool` as this thread's dispatch target for the free
/// functions ([`parallel_for`], [`crate::par_chunks_mut`], …) instead of
/// the global pool. Restores the previous target on exit, including on
/// unwind. This is how benches and tests compare thread counts within one
/// process — the global pool's count is fixed by the environment at first
/// use, but an override pool can have any worker count.
pub fn with_pool<R>(pool: &Pool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<*const Pool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0;
            CURRENT_POOL.with(|c| c.set(prev));
        }
    }
    let prev = CURRENT_POOL.with(|c| c.replace(Some(pool as *const Pool)));
    let _restore = Restore(prev);
    f()
}

/// Dispatch target for the free functions: the innermost [`with_pool`]
/// override, else the global pool.
fn with_current<R>(f: impl FnOnce(&Pool) -> R) -> R {
    match CURRENT_POOL.with(|c| c.get()) {
        // SAFETY: the pointer was created from a live `&Pool` in
        // `with_pool`, whose scope both outlives this call (it is still on
        // the stack of this same thread) and restores the previous value
        // on exit, so the pointee is alive.
        Some(p) => f(unsafe { &*p }),
        None => f(global()),
    }
}

/// Total threads the current dispatch target brings to bear (workers of
/// the innermost [`with_pool`] override or the global pool, plus the
/// caller). The "cores in use" heuristics in `hpacml-tensor` are pure
/// functions of shapes and this number.
pub fn current_parallelism() -> usize {
    with_current(|p| p.workers() + 1)
}

/// Convenience: `parallel_for` on the current pool (see [`with_pool`]).
pub fn parallel_for<F>(len: usize, grain: usize, task: F)
where
    F: Fn(Range<usize>) + Sync,
{
    with_current(|p| p.parallel_for(len, grain, task))
}

/// Convenience: `parallel_reduce` on the current pool.
pub fn parallel_reduce<T, M, R>(len: usize, grain: usize, identity: T, map: M, fold: R) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    with_current(|p| p.parallel_reduce(len, grain, identity, map, fold))
}

/// Convenience: `broadcast` on the current pool.
pub fn broadcast<F>(f: F)
where
    F: Fn(usize) + Sync,
{
    with_current(|p| p.broadcast(f))
}

/// Run two independent closures, potentially in parallel, returning both
/// results. Routed through the pool (a two-chunk job — no ad-hoc thread
/// spawn); runs sequentially inside pool workers or on a workerless pool.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let fa = Mutex::new(Some(a));
    let fb = Mutex::new(Some(b));
    let ra: Mutex<Option<RA>> = Mutex::new(None);
    let rb: Mutex<Option<RB>> = Mutex::new(None);
    with_current(|p| {
        p.parallel_for(2, 1, |r| {
            for i in r {
                if i == 0 {
                    let f = fa.lock().take().expect("join: side A claimed twice");
                    *ra.lock() = Some(f());
                } else {
                    let f = fb.lock().take().expect("join: side B claimed twice");
                    *rb.lock() = Some(f());
                }
            }
        })
    });
    (
        ra.into_inner().expect("join: side A never ran"),
        rb.into_inner().expect("join: side B never ran"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = Pool::new(3);
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 64, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential_sum() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (0..100_000).collect();
        let total = pool.parallel_reduce(
            data.len(),
            1024,
            0u64,
            |r| r.map(|i| data[i]).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn zero_len_and_tiny_jobs_run_inline() {
        let pool = Pool::new(2);
        pool.parallel_for(0, 16, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        pool.parallel_for(3, 16, |r| {
            count.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_calls_run_sequentially_without_deadlock() {
        let pool = Pool::new(2);
        let count = AtomicU64::new(0);
        pool.parallel_for(8, 1, |outer| {
            for _ in outer {
                // Nested dispatch inside a task must not deadlock.
                crate::pool::global().parallel_for(100, 10, |inner| {
                    count.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = Pool::new(3);
        for round in 1..50usize {
            let acc = AtomicUsize::new(0);
            pool.parallel_for(round * 37, 8, |r| {
                acc.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), round * 37);
        }
        let stats = pool.stats();
        assert!(stats.jobs > 0);
        // Every chunk executed is attributed to exactly one participant.
        assert_eq!(
            stats.chunks,
            stats.participant_chunks.iter().sum::<u64>(),
            "chunk attribution must be exhaustive"
        );
        assert!(stats.steals <= stats.chunks);
    }

    #[test]
    #[should_panic(expected = "parallel_for task panicked")]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::new(2);
        pool.parallel_for(1000, 10, |r| {
            if r.start == 500 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn pool_survives_a_panicked_job() {
        let pool = Pool::new(2);
        let res = catch_unwind(AssertUnwindSafe(|| {
            pool.parallel_for(100, 5, |r| {
                if r.start == 50 {
                    panic!("boom");
                }
            });
        }));
        assert!(res.is_err());
        // The slot must be clean: subsequent jobs complete normally.
        let acc = AtomicUsize::new(0);
        pool.parallel_for(1000, 16, |r| {
            acc.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(acc.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn broadcast_reaches_every_participant() {
        let workers = 3;
        let pool = Pool::new(workers);
        let seen: Vec<AtomicUsize> = (0..workers + 1).map(|_| AtomicUsize::new(0)).collect();
        pool.broadcast(|p| {
            seen[p].fetch_add(1, Ordering::Relaxed);
        });
        for (p, s) in seen.iter().enumerate() {
            assert_eq!(
                s.load(Ordering::Relaxed),
                1,
                "participant {p} must run the broadcast exactly once"
            );
        }
    }

    #[test]
    fn broadcast_runs_inline_when_nested_or_workerless() {
        let pool = Pool::new(0);
        let count = AtomicUsize::new(0);
        pool.broadcast(|p| {
            assert_eq!(p, 0);
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);

        let pool = Pool::new(2);
        let count = AtomicUsize::new(0);
        pool.parallel_for(2, 1, |_| {
            pool.broadcast(|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 2); // once per outer chunk
    }

    #[test]
    fn with_pool_overrides_free_functions() {
        let pool = Pool::new(2);
        let before = pool.stats().jobs;
        with_pool(&pool, || {
            crate::parallel_for(10_000, 16, |_| {});
        });
        assert!(
            pool.stats().jobs > before,
            "free parallel_for must dispatch on the override pool"
        );
        assert_eq!(with_pool(&pool, crate::current_parallelism), 3);
    }

    #[test]
    fn env_thread_count_contract() {
        // 0 clamps to 1 (caller-only), 1 is caller-only, N is N.
        assert_eq!(total_threads_from_env(Some("0")), 1);
        assert_eq!(total_threads_from_env(Some("1")), 1);
        assert_eq!(total_threads_from_env(Some("8")), 8);
        assert_eq!(total_threads_from_env(Some(" 2 ")), 2);
        // Garbage, empty and unset fall back to auto-detection.
        let auto = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        assert_eq!(total_threads_from_env(Some("garbage")), auto);
        assert_eq!(total_threads_from_env(Some("")), auto);
        assert_eq!(total_threads_from_env(Some("-3")), auto);
        assert_eq!(total_threads_from_env(None), auto);
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = Pool::new(4);
        pool.parallel_for(100, 10, |_| {});
        drop(pool); // must not hang
    }
}
