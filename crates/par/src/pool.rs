//! Persistent worker pool with atomic range-splitting dispatch.

use parking_lot::{Condvar, Mutex};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Lifetime-erased pointer to the task closure of an in-flight job.
///
/// # Safety
///
/// The pointee is a `dyn Fn(Range<usize>) + Sync` borrowed from the caller's
/// stack. It is only dereferenced while the job it belongs to is live, and the
/// caller of [`Pool::parallel_for`] blocks until the job's completion barrier
/// trips (`remaining == 0`), so the borrow is never outlived. `Sync` on the
/// closure makes concurrent invocation sound; the raw pointer itself is made
/// `Send + Sync` here because those invariants are upheld by construction.
struct TaskPtr(*const (dyn Fn(Range<usize>) + Sync));
// SAFETY: see the type-level safety contract above — the pointee outlives
// every job that dereferences it (completion barrier), so sending the
// pointer to worker threads is sound.
unsafe impl Send for TaskPtr {}
// SAFETY: the pointee is `Sync`, so shared `&TaskPtr` access (concurrent
// invocation from many workers) is sound; see the contract above.
unsafe impl Sync for TaskPtr {}

struct Job {
    task: TaskPtr,
    /// Next index to hand out.
    cursor: AtomicUsize,
    /// One past the last index of the iteration space.
    end: usize,
    /// Chunk size handed to each claim.
    grain: usize,
    /// Chunks not yet completed; the completion barrier.
    remaining: AtomicUsize,
    /// Set if any chunk panicked.
    panicked: AtomicBool,
}

impl Job {
    /// Claim and run chunks until the cursor passes `end`.
    fn drain(&self) {
        loop {
            let start = self.cursor.fetch_add(self.grain, Ordering::Relaxed);
            if start >= self.end {
                return;
            }
            let stop = (start + self.grain).min(self.end);
            // SAFETY: the pointee is live for the whole job — the caller of
            // `parallel_for` blocks on the completion barrier (`remaining ==
            // 0`) before its frame (which owns the closure) can end, and this
            // drain loop only runs between dispatch and that barrier.
            let task = unsafe { &*self.task.0 };
            let res = catch_unwind(AssertUnwindSafe(|| task(start..stop)));
            if res.is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            self.remaining.fetch_sub(1, Ordering::Release);
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

#[derive(Default)]
struct DispatchState {
    job: Option<Arc<Job>>,
    epoch: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<DispatchState>,
    /// Workers park here waiting for a new epoch.
    work_cv: Condvar,
    jobs_dispatched: AtomicU64,
}

thread_local! {
    /// True while this thread is executing inside a pool worker; nested
    /// `parallel_for` calls then run sequentially inline.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A persistent pool of worker threads.
///
/// All parallel work in the workspace — accurate benchmark kernels, NN
/// matmul/conv kernels, data-bridge sweeps — is dispatched through one of
/// these (normally the [`global`] pool).
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    workers: usize,
}

impl Pool {
    /// Create a pool with `workers` worker threads (callers participate too,
    /// so total parallelism is `workers + 1`).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(DispatchState::default()),
            work_cv: Condvar::new(),
            jobs_dispatched: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("hpacml-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads (not counting the caller).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> crate::PoolStats {
        crate::PoolStats {
            jobs: self.shared.jobs_dispatched.load(Ordering::Relaxed),
            workers: self.workers,
        }
    }

    /// Run `task` over `0..len` in parallel, handing out `grain`-sized chunks.
    ///
    /// The caller participates in the work and returns only after every chunk
    /// has completed. Panics in any chunk are re-raised on the caller after
    /// the barrier (so the pool itself never deadlocks on a panicked task).
    pub fn parallel_for<F>(&self, len: usize, grain: usize, task: F)
    where
        F: Fn(Range<usize>) + Sync,
    {
        if len == 0 {
            return;
        }
        let grain = grain.max(1);
        // Sequential fast paths: tiny jobs and nested calls. Chunking is
        // preserved even inline — callers (e.g. `par_chunks_mut`) rely on
        // every range starting at a multiple of `grain` with length <= grain.
        let nested = IN_WORKER.with(|f| f.get());
        if nested || self.workers == 0 || len <= grain {
            let mut s = 0;
            while s < len {
                let e = (s + grain).min(len);
                task(s..e);
                s = e;
            }
            return;
        }

        let chunks = len.div_ceil(grain);
        // SAFETY: erase the closure's lifetime. The completion barrier below
        // guarantees every worker is done with `task` before this frame ends.
        let erased: &'static (dyn Fn(Range<usize>) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(Range<usize>) + Sync), _>(&task) };
        let job = Arc::new(Job {
            task: TaskPtr(erased as *const _),
            cursor: AtomicUsize::new(0),
            end: len,
            grain,
            remaining: AtomicUsize::new(chunks),
            panicked: AtomicBool::new(false),
        });

        {
            let mut st = self.shared.state.lock();
            st.job = Some(Arc::clone(&job));
            st.epoch += 1;
            self.shared.jobs_dispatched.fetch_add(1, Ordering::Relaxed);
        }
        self.shared.work_cv.notify_all();

        // The caller works too — flagged as in-worker for the duration so a
        // nested `parallel_for` issued from inside its chunks runs inline
        // (the documented nesting rule) instead of re-dispatching a second
        // job into the pool's single dispatch slot mid-job.
        let was_worker = IN_WORKER.with(|f| f.replace(true));
        job.drain();
        IN_WORKER.with(|f| f.set(was_worker));

        // Completion barrier: spin briefly, then yield. Chunks are sized so
        // that the tail wait is short; yielding avoids burning a core when a
        // single long chunk straggles.
        let mut spins = 0u32;
        while !job.is_done() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }

        // Drop the job from the dispatch slot if it is still ours, so workers
        // park instead of re-inspecting an exhausted job.
        {
            let mut st = self.shared.state.lock();
            if let Some(current) = &st.job {
                if Arc::ptr_eq(current, &job) {
                    st.job = None;
                }
            }
        }

        if job.panicked.load(Ordering::Relaxed) {
            panic!("hpacml-par: a parallel_for task panicked");
        }
    }

    /// Parallel map-reduce over `0..len`: `map` produces a partial result per
    /// chunk, `fold` combines partials (in unspecified order), starting from
    /// `identity`.
    pub fn parallel_reduce<T, M, R>(
        &self,
        len: usize,
        grain: usize,
        identity: T,
        map: M,
        fold: R,
    ) -> T
    where
        T: Send,
        M: Fn(Range<usize>) -> T + Sync,
        R: Fn(T, T) -> T,
    {
        let partials = Mutex::new(Vec::new());
        self.parallel_for(len, grain, |r| {
            let part = map(r);
            partials.lock().push(part);
        });
        partials.into_inner().into_iter().fold(identity, fold)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            st.epoch += 1;
        }
        self.shared.work_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    IN_WORKER.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            while st.epoch == seen_epoch && !st.shutdown {
                shared.work_cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            seen_epoch = st.epoch;
            st.job.clone()
        };
        if let Some(job) = job {
            job.drain();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool. Thread count comes from `HPACML_THREADS` if set,
/// otherwise `available_parallelism() - 1` workers (the caller participates).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| {
        let n = std::env::var("HPACML_THREADS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        Pool::new(n.saturating_sub(1))
    })
}

/// Convenience: `parallel_for` on the global pool.
pub fn parallel_for<F>(len: usize, grain: usize, task: F)
where
    F: Fn(Range<usize>) + Sync,
{
    global().parallel_for(len, grain, task)
}

/// Convenience: `parallel_reduce` on the global pool.
pub fn parallel_reduce<T, M, R>(len: usize, grain: usize, identity: T, map: M, fold: R) -> T
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    global().parallel_reduce(len, grain, identity, map, fold)
}

/// Run two independent closures, potentially in parallel, returning both
/// results. Uses a scoped thread for the second closure; falls back to
/// sequential execution inside pool workers.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if IN_WORKER.with(|f| f.get()) {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("join: second closure panicked");
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_covers_every_index_exactly_once() {
        let pool = Pool::new(3);
        let n = 10_001;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.parallel_for(n, 64, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_reduce_matches_sequential_sum() {
        let pool = Pool::new(4);
        let data: Vec<u64> = (0..100_000).collect();
        let total = pool.parallel_reduce(
            data.len(),
            1024,
            0u64,
            |r| r.map(|i| data[i]).sum::<u64>(),
            |a, b| a + b,
        );
        assert_eq!(total, data.iter().sum::<u64>());
    }

    #[test]
    fn zero_len_and_tiny_jobs_run_inline() {
        let pool = Pool::new(2);
        pool.parallel_for(0, 16, |_| panic!("must not run"));
        let count = AtomicU64::new(0);
        pool.parallel_for(3, 16, |r| {
            count.fetch_add(r.len() as u64, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn nested_calls_run_sequentially_without_deadlock() {
        let pool = Pool::new(2);
        let count = AtomicU64::new(0);
        pool.parallel_for(8, 1, |outer| {
            for _ in outer {
                // Nested dispatch inside a task must not deadlock.
                crate::pool::global().parallel_for(100, 10, |inner| {
                    count.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 800);
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = Pool::new(3);
        for round in 1..50usize {
            let acc = AtomicUsize::new(0);
            pool.parallel_for(round * 37, 8, |r| {
                acc.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(acc.load(Ordering::Relaxed), round * 37);
        }
        assert!(pool.stats().jobs > 0);
    }

    #[test]
    #[should_panic(expected = "parallel_for task panicked")]
    fn task_panic_propagates_to_caller() {
        let pool = Pool::new(2);
        pool.parallel_for(1000, 10, |r| {
            if r.start == 500 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn join_runs_both_and_returns_results() {
        let (a, b) = join(|| 2 + 2, || "ok".to_string());
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn dropping_pool_joins_workers() {
        let pool = Pool::new(4);
        pool.parallel_for(100, 10, |_| {});
        drop(pool); // must not hang
    }
}
