//! Parallel runtime substrate for the HPAC-ML reproduction.
//!
//! The paper's evaluation runs both the *accurate* benchmark kernels and the
//! surrogate inference engine on NVIDIA A100 GPUs. This crate is the
//! corresponding substrate in the reproduction: a persistent, work-distributing
//! thread pool on which both execution paths run, so that measured speedups
//! compare like against like.
//!
//! Design (following the idioms of Rayon and *Rust Atomics and Locks*):
//!
//! * one persistent pool of workers that **park** between jobs
//!   ([`parking_lot::Condvar`]), so repeated small dispatches stay cheap;
//! * a job is a lifetime-erased `Fn(Range<usize>)` whose chunk-index space is
//!   partitioned into one atomic claim cursor per participant; each worker
//!   (and the caller, which always participates) self-schedules chunks from
//!   its own cursor and **steals** from the others' once its span runs dry,
//!   so long chunks cannot strand work behind a busy thread;
//! * dispatch is allocation-free: the job slot, cursors and counters are
//!   preallocated and sequence-tagged, so steady-state inference never
//!   allocates in the scheduler;
//! * the caller blocks on a completion barrier before returning, which is what
//!   makes the lifetime erasure sound — borrowed data outlives the job;
//! * nested calls from inside a worker run sequentially inline (no deadlock,
//!   no oversubscription), and stealing moves only *where/when* a chunk runs,
//!   never what it computes — results stay bitwise identical across worker
//!   counts and schedules;
//! * workers take persistent CPU affinity where the platform allows it
//!   (Linux `sched_setaffinity`), giving a stable worker→CPU mapping;
//! * [`with_pool`] scopes the free functions to an explicit pool, which is
//!   how benches compare thread counts within one process.
//!
//! The only `unsafe` in the whole workspace outside of disjoint slice
//! splitting lives here; see the safety comments on `TaskPtr` in
//! [`pool`] (the type itself is private to that module).

pub mod pool;
pub mod slice;

pub use pool::{
    broadcast, current_parallelism, global, join, parallel_for, parallel_reduce,
    total_threads_from_env, with_pool, Pool,
};
pub use slice::{par_chunks_mut, par_map_inplace, par_zip_apply};

/// Statistics snapshot for a pool, used by benchmarks and the fig8
/// "was the machine busy" diagnostics.
#[derive(Debug, Clone, Default)]
pub struct PoolStats {
    /// Number of jobs dispatched so far (including broadcasts).
    pub jobs: u64,
    /// Number of worker threads (excluding callers).
    pub workers: usize,
    /// Total chunks executed across all participants.
    pub chunks: u64,
    /// Chunks a participant claimed from another participant's queue.
    pub steals: u64,
    /// Chunks executed per participant (index 0 aggregates caller threads,
    /// index `i + 1` is worker `i`).
    pub participant_chunks: Vec<u64>,
    /// Per participant, the number of jobs in which it executed at least
    /// one chunk.
    pub participant_jobs: Vec<u64>,
}

impl PoolStats {
    /// Fraction of executed chunks that were stolen rather than claimed
    /// from the executing participant's own span. High values mean the
    /// static partition underestimates imbalance (or chunks are too
    /// coarse); `0.0` when nothing ran.
    pub fn steal_ratio(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.steals as f64 / self.chunks as f64
        }
    }

    /// Mean fraction of participants that did useful work per dispatched
    /// job, in `0.0..=1.0`. Low occupancy with many dispatches means jobs
    /// are too small to feed the pool.
    pub fn occupancy(&self) -> f64 {
        let participants = self.participant_jobs.len() as u64;
        if self.jobs == 0 || participants == 0 {
            return 0.0;
        }
        let active: u64 = self.participant_jobs.iter().sum();
        (active as f64 / (self.jobs * participants) as f64).min(1.0)
    }

    /// Counters accumulated since `base` was snapshotted from the same
    /// pool — for windowed measurements around a specific phase.
    pub fn delta_since(&self, base: &PoolStats) -> PoolStats {
        PoolStats {
            jobs: self.jobs.saturating_sub(base.jobs),
            workers: self.workers,
            chunks: self.chunks.saturating_sub(base.chunks),
            steals: self.steals.saturating_sub(base.steals),
            participant_chunks: self
                .participant_chunks
                .iter()
                .zip(base.participant_chunks.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
            participant_jobs: self
                .participant_jobs
                .iter()
                .zip(base.participant_jobs.iter().chain(std::iter::repeat(&0)))
                .map(|(a, b)| a.saturating_sub(*b))
                .collect(),
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;

    #[test]
    fn ratios_are_safe_on_empty_stats() {
        let s = PoolStats::default();
        assert_eq!(s.steal_ratio(), 0.0);
        assert_eq!(s.occupancy(), 0.0);
    }

    #[test]
    fn delta_subtracts_a_baseline() {
        let base = PoolStats {
            jobs: 2,
            workers: 3,
            chunks: 10,
            steals: 1,
            participant_chunks: vec![4, 3, 2, 1],
            participant_jobs: vec![2, 1, 1, 1],
        };
        let now = PoolStats {
            jobs: 5,
            workers: 3,
            chunks: 30,
            steals: 4,
            participant_chunks: vec![10, 8, 7, 5],
            participant_jobs: vec![5, 4, 3, 3],
        };
        let d = now.delta_since(&base);
        assert_eq!(d.jobs, 3);
        assert_eq!(d.chunks, 20);
        assert_eq!(d.steals, 3);
        assert_eq!(d.participant_chunks, vec![6, 5, 5, 4]);
        assert_eq!(d.participant_jobs, vec![3, 3, 2, 2]);
        assert!(d.steal_ratio() > 0.0 && d.steal_ratio() < 1.0);
        assert!(d.occupancy() > 0.0 && d.occupancy() <= 1.0);
    }
}
