//! Parallel runtime substrate for the HPAC-ML reproduction.
//!
//! The paper's evaluation runs both the *accurate* benchmark kernels and the
//! surrogate inference engine on NVIDIA A100 GPUs. This crate is the
//! corresponding substrate in the reproduction: a persistent, work-distributing
//! thread pool on which both execution paths run, so that measured speedups
//! compare like against like.
//!
//! Design (following the idioms of Rayon and *Rust Atomics and Locks*):
//!
//! * one persistent pool of workers that **park** between jobs
//!   ([`parking_lot::Condvar`]), so repeated small dispatches stay cheap;
//! * a job is a lifetime-erased `Fn(Range<usize>)` plus an atomic cursor;
//!   workers (and the caller, which always participates) claim grain-sized
//!   chunks with `fetch_add` until the range is exhausted;
//! * the caller blocks on a completion barrier before returning, which is what
//!   makes the lifetime erasure sound — borrowed data outlives the job;
//! * nested calls from inside a worker run sequentially inline (no deadlock,
//!   no oversubscription).
//!
//! The only `unsafe` in the whole workspace outside of disjoint slice
//! splitting lives here; see the safety comments on `TaskPtr` in
//! [`pool`] (the type itself is private to that module).

pub mod pool;
pub mod slice;

pub use pool::{global, join, parallel_for, parallel_reduce, Pool};
pub use slice::{par_chunks_mut, par_map_inplace, par_zip_apply};

/// Statistics snapshot for a pool, used by ablation benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Number of `parallel_for` jobs dispatched so far.
    pub jobs: u64,
    /// Number of worker threads (excluding callers).
    pub workers: usize,
}
