//! Safe slice-oriented parallel helpers built on the pool.
//!
//! The soundness argument for the `unsafe` below is the classic disjoint-
//! chunks one: each task receives a sub-slice reconstructed from the base
//! pointer over a range that no other task overlaps (chunk indices are handed
//! out exactly once by the pool's per-participant claim cursors, in `grain`
//! multiples, whether claimed by the owner or stolen), and the caller of
//! `parallel_for` does not return until every task has finished, so no task
//! outlives the `&mut [T]` borrow.
//!
//! These helpers dispatch on the *current* pool — the innermost
//! [`crate::with_pool`] override if one is active, else the global pool.

/// Process `data` in parallel, `chunk`-elements at a time. The closure
/// receives the chunk's starting element index and the mutable chunk.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let len = data.len();
    if len == 0 {
        return;
    }
    let chunk = chunk.max(1);
    let base = data.as_mut_ptr() as usize;
    crate::pool::parallel_for(len, chunk, |r| {
        // SAFETY: `r` ranges handed out by the pool are disjoint and within
        // `0..len`; the borrow of `data` outlives the job (completion barrier).
        let sub = unsafe { std::slice::from_raw_parts_mut((base as *mut T).add(r.start), r.len()) };
        f(r.start, sub);
    });
}

/// Map every element of `data` in place: `data[i] = f(i, data[i])`.
pub fn par_map_inplace<T, F>(data: &mut [T], grain: usize, f: F)
where
    T: Send + Sync + Copy,
    F: Fn(usize, T) -> T + Sync,
{
    par_chunks_mut(data, grain, |start, sub| {
        for (k, v) in sub.iter_mut().enumerate() {
            *v = f(start + k, *v);
        }
    });
}

/// Element-wise combine: `out[i] = f(a[i], b[i])`. Panics on length mismatch.
pub fn par_zip_apply<T, F>(out: &mut [T], a: &[T], b: &[T], grain: usize, f: F)
where
    T: Send + Sync + Copy,
    F: Fn(T, T) -> T + Sync,
{
    assert_eq!(
        out.len(),
        a.len(),
        "par_zip_apply: length mismatch (out vs a)"
    );
    assert_eq!(
        out.len(),
        b.len(),
        "par_zip_apply: length mismatch (out vs b)"
    );
    par_chunks_mut(out, grain, |start, sub| {
        for (k, v) in sub.iter_mut().enumerate() {
            *v = f(a[start + k], b[start + k]);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_chunks_mut_writes_every_element() {
        let mut v = vec![0usize; 5000];
        par_chunks_mut(&mut v, 37, |start, sub| {
            for (k, x) in sub.iter_mut().enumerate() {
                *x = start + k;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i);
        }
    }

    #[test]
    fn par_map_inplace_matches_sequential() {
        let mut a = (0..10_000).map(|i| i as f64).collect::<Vec<_>>();
        let mut b = a.clone();
        par_map_inplace(&mut a, 128, |i, x| x * 2.0 + i as f64);
        for (i, x) in b.iter_mut().enumerate() {
            *x = *x * 2.0 + i as f64;
        }
        assert_eq!(a, b);
    }

    #[test]
    fn par_zip_apply_adds() {
        let a: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| (i * 2) as f32).collect();
        let mut out = vec![0.0f32; 1000];
        par_zip_apply(&mut out, &a, &b, 64, |x, y| x + y);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, (i * 3) as f32);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn par_zip_apply_length_mismatch_panics() {
        let a = vec![0.0f32; 4];
        let b = vec![0.0f32; 5];
        let mut out = vec![0.0f32; 4];
        par_zip_apply(&mut out, &a, &b, 2, |x, y| x + y);
    }

    #[test]
    fn empty_slice_is_fine() {
        let mut v: Vec<u8> = vec![];
        par_chunks_mut(&mut v, 8, |_, _| panic!("must not run"));
    }
}
