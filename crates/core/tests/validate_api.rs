//! Integration tests of online validation and adaptive fallback through the
//! compiled Session path: shadow sampling, error scoring against the host
//! code, controller-driven disable/re-enable, forced fallback, recorded
//! validation rows and the stats counters.

use hpacml_core::{ErrorMetric, PathTaken, Region, ValidationPolicy};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-validate-api").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, seed: u64) {
    let spec = ModelSpec::mlp(3, &[8], 1, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

/// Per-sample region: 3 features in, 1 value out, infer mode.
fn region_for(model: &std::path::Path, db: Option<&std::path::Path>) -> Region {
    let db_clause = db
        .map(|d| format!(" db(\"{}\")", d.display()))
        .unwrap_or_default();
    Region::from_source(
        "validate",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}"){db_clause}
            "#,
            model.display()
        ),
    )
    .unwrap()
}

fn sample(i: usize) -> [f32; 3] {
    [(i as f32 * 0.37).sin(), (i as f32 * 0.11).cos(), 0.5]
}

/// One session invocation whose accurate closure writes `host` into the
/// output buffer; returns (value left in the buffer, path taken).
fn invoke_with_host(
    session: &hpacml_core::Session<'_>,
    x: &[f32; 3],
    host: f32,
) -> (f32, PathTaken) {
    let mut y = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", x)
        .unwrap()
        .run(|| y[0] = host)
        .unwrap();
    out.output("y", &mut y).unwrap();
    let path = out.finish().unwrap();
    (y[0], path)
}

/// The model's own outputs, computed before any policy is attached.
fn model_outputs(session: &hpacml_core::Session<'_>, count: usize) -> Vec<f32> {
    (0..count)
        .map(|i| {
            let mut y = [0.0f32; 1];
            let mut out = session
                .invoke()
                .input("x", &sample(i))
                .unwrap()
                .run(|| unreachable!())
                .unwrap();
            out.output("y", &mut y).unwrap();
            out.finish().unwrap();
            y[0]
        })
        .collect()
}

#[test]
fn drift_disables_recovery_reenables() {
    let dir = tmpdir("drift");
    let model = dir.join("m.hml");
    save_mlp(&model, 3);
    let region = region_for(&model, None);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();
    let truth = model_outputs(&session, 8);
    region.reset_stats();

    // Validate every invocation, window 2, MaxAbs budget 0.5.
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::MaxAbs, 0.5)
                .with_sample_rate(1)
                .with_window(2),
        )
        .unwrap();
    assert!(region.surrogate_active());

    // 1: host code agrees exactly -> error 0, surrogate serves.
    let (y, path) = invoke_with_host(&session, &sample(0), truth[0]);
    assert_eq!(path, PathTaken::Surrogate);
    assert_eq!(y, truth[0], "surrogate output is the primary result");
    assert_eq!(region.validation_rolling_error(), Some(0.0));

    // 2: drift of 1.0 -> rolling mean (0 + 1)/2 == budget, still enabled.
    let (_, path) = invoke_with_host(&session, &sample(1), truth[1] + 1.0);
    assert_eq!(path, PathTaken::Surrogate);
    assert!(region.surrogate_active());

    // 3: second drift -> rolling mean 1.0 > 0.5: the controller disables.
    let (_, path) = invoke_with_host(&session, &sample(2), truth[2] + 1.0);
    assert_eq!(
        path,
        PathTaken::Surrogate,
        "the drifting pass itself served"
    );
    assert!(!region.surrogate_active(), "rolling error over budget");

    // 4: fallback serves the host code, bit for bit; the probe (host value
    // far from the model) keeps the window bad.
    let (y, path) = invoke_with_host(&session, &sample(3), 1234.5);
    assert_eq!(path, PathTaken::Accurate);
    assert_eq!(y, 1234.5, "fallback leaves the host result untouched");
    assert!(!region.surrogate_active());

    // 5-6: recovered probes (host == model). The first is still inside the
    // hysteresis window; the second clears both cooldown and rolling error.
    let (_, path) = invoke_with_host(&session, &sample(4), truth[4]);
    assert_eq!(path, PathTaken::Accurate);
    assert!(!region.surrogate_active(), "no re-enable within one window");
    let (_, path) = invoke_with_host(&session, &sample(5), truth[5]);
    assert_eq!(path, PathTaken::Accurate);
    assert!(
        region.surrogate_active(),
        "window of clean probes re-enables"
    );

    // 7: surrogate serves again.
    let (y, path) = invoke_with_host(&session, &sample(6), truth[6]);
    assert_eq!(path, PathTaken::Surrogate);
    assert_eq!(y, truth[6]);

    let s = region.stats();
    assert_eq!(s.surrogate_disables, 1);
    assert_eq!(s.surrogate_reenables, 1);
    assert_eq!(
        s.validated_invocations, 7,
        "rate 1: every invocation scored"
    );
    assert_eq!(s.fallback_invocations, 3, "invocations 4-6 fell back");
    assert!(s.validation_shadow_ns > 0);
    assert_eq!(s.invocations, 7);
}

#[test]
fn sampling_rate_and_batch_caps_draws() {
    let dir = tmpdir("sampling");
    let model = dir.join("m.hml");
    save_mlp(&model, 5);
    let region = region_for(&model, None);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    // Loose budget: nothing ever disables; rate 2, <=2 samples per batch.
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::Rmse, 1e9)
                .with_sample_rate(2)
                .with_batch_samples(2),
        )
        .unwrap();

    let xs: Vec<f32> = (0..4).flat_map(sample).collect();
    let mut ys = [0.0f32; 4];
    for _ in 0..4 {
        let mut out = session
            .invoke_batch(4)
            .unwrap()
            .input("x", &xs)
            .unwrap()
            .run(|| ys.fill(0.0))
            .unwrap();
        out.output("y", &mut ys).unwrap();
        out.finish().unwrap();
    }
    let s = region.stats();
    // 4 flushes, every 2nd drawn, 2 samples compared per draw.
    assert_eq!(s.validated_invocations, 4);
    assert_eq!(s.surrogate_disables, 0);
    assert_eq!(s.fallback_invocations, 0);
    assert_eq!(s.invocations, 16);
}

#[test]
fn validation_rows_are_recorded() {
    let dir = tmpdir("rows");
    let model = dir.join("m.hml");
    let db = dir.join("d.h5");
    save_mlp(&model, 7);
    let region = region_for(&model, Some(&db));
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 2)
        .unwrap();
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::Mape, 1e9)
                .with_sample_rate(1)
                .with_batch_samples(0),
        )
        .unwrap();
    let xs: Vec<f32> = (0..2).flat_map(sample).collect();
    let mut ys = [0.0f32; 2];
    for _ in 0..3 {
        let mut out = session
            .invoke_batch(2)
            .unwrap()
            .input("x", &xs)
            .unwrap()
            .run(|| ys.fill(1.0))
            .unwrap();
        out.output("y", &mut ys).unwrap();
        out.finish().unwrap();
    }
    region.flush_db().unwrap();

    let file = hpacml_store::H5File::open(&db).unwrap();
    let group = file
        .root()
        .group("validate")
        .unwrap()
        .group("validation")
        .unwrap();
    // 3 flushes x 2 samples each, every flush drawn.
    assert_eq!(group.dataset("error").unwrap().rows(), 6);
    assert_eq!(group.dataset("invocation").unwrap().rows(), 6);
    let metrics = group.dataset("metric").unwrap().read_f64().unwrap();
    assert!(metrics
        .iter()
        .all(|&m| m == ErrorMetric::Mape.code() as f64));
    let invs = group.dataset("invocation").unwrap().read_f64().unwrap();
    assert_eq!(invs, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0]);
    let errors = group.dataset("error").unwrap().read_f64().unwrap();
    assert!(errors.iter().all(|e| e.is_finite()));
}

#[test]
fn forced_fallback_is_host_code_without_a_model() {
    let dir = tmpdir("forced");
    // The model path does not exist: a forced fallback must never resolve it.
    let region = region_for(&dir.join("missing.hml"), None);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    region.force_fallback(true);
    assert!(!region.surrogate_active());
    let (y, path) = invoke_with_host(&session, &sample(0), 42.0);
    assert_eq!(path, PathTaken::Accurate);
    assert_eq!(y, 42.0);

    // The one-shot API honors the same gate.
    let mut y1 = [0.0f32; 1];
    let mut out = region
        .invoke(&binds)
        .input("x", &sample(1), &[3])
        .unwrap()
        .run(|| y1[0] = 7.0)
        .unwrap();
    out.output("y", &mut y1, &[1]).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y1[0], 7.0);

    let s = region.stats();
    assert_eq!(s.fallback_invocations, 2);
    assert_eq!(s.surrogate_invocations, 0);
    assert_eq!(s.model_cache_misses, 0, "forced fallback never loads");

    // Lifting the force restores the surrogate (and now needs the model).
    region.force_fallback(false);
    assert!(region.surrogate_active());
    let run = session.invoke().input("x", &sample(2)).unwrap().run(|| ());
    assert!(
        run.is_err(),
        "missing model must fail on the surrogate path"
    );
}

#[test]
fn explicit_surrogate_off_is_not_counted_as_fallback() {
    let dir = tmpdir("off");
    let model = dir.join("m.hml");
    save_mlp(&model, 9);
    let region = region_for(&model, None);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 1e9).with_sample_rate(1))
        .unwrap();
    let mut y = [0.0f32; 1];
    let mut out = session
        .invoke()
        .use_surrogate(false)
        .input("x", &sample(0))
        .unwrap()
        .run(|| y[0] = 3.0)
        .unwrap();
    out.output("y", &mut y).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y[0], 3.0);
    let s = region.stats();
    assert_eq!(s.fallback_invocations, 0);
    assert_eq!(
        s.validated_invocations, 0,
        "surrogate-off invocations are never drawn"
    );
}

#[test]
fn policy_knobs_are_validated_and_clearable() {
    let dir = tmpdir("knobs");
    let model = dir.join("m.hml");
    save_mlp(&model, 11);
    let region = region_for(&model, None);
    assert!(region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 0.1).with_sample_rate(0))
        .is_err());
    assert!(region.validation_policy().is_none());
    region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 0.1))
        .unwrap();
    assert_eq!(
        region.validation_policy().map(|p| p.metric),
        Some(ErrorMetric::Rmse)
    );
    region.clear_validation_policy();
    assert!(region.validation_policy().is_none());
    assert!(region.validation_rolling_error().is_none());
}

#[test]
fn fallback_invocations_do_not_record_collection_rows() {
    let dir = tmpdir("fallback-no-collect");
    let model = dir.join("m.hml");
    let db = dir.join("d.h5");
    save_mlp(&model, 13);
    let region = region_for(&model, Some(&db));
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    region.force_fallback(true);
    for i in 0..5 {
        let (_, path) = invoke_with_host(&session, &sample(i), 1.0);
        assert_eq!(path, PathTaken::Accurate);
    }
    region.flush_db().unwrap();
    // Fallback runs the host code for safety, not to collect training
    // data: nothing may have been appended (an intentional accurate run
    // via use_surrogate(false) still collects, as before).
    assert_eq!(region.db_size_bytes(), 0, "fallback must not grow the db");
    assert_eq!(region.stats().fallback_invocations, 5);
}

#[test]
fn unread_outputs_never_feed_the_controller() {
    let dir = tmpdir("unread");
    let model = dir.join("m.hml");
    save_mlp(&model, 15);
    let region = region_for(&model, None);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    // Validate everything, zero tolerance: any real comparison would have
    // to observe *some* error for a drifting host closure.
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::MaxAbs, 1e-12).with_sample_rate(1),
        )
        .unwrap();
    for i in 0..4 {
        let mut y = [0.0f32; 1];
        let out = session
            .invoke()
            .input("x", &sample(i))
            .unwrap()
            .run(|| y[0] = 1.0e6)
            .unwrap();
        // The caller never reads the output: no comparison happened, so
        // no (fabricated zero) error may reach the controller.
        drop(out);
        let out2 = session
            .invoke()
            .input("x", &sample(i))
            .unwrap()
            .run(|| y[0] = 1.0e6)
            .unwrap();
        // finish() without output() on a drawn invocation: same rule.
        out2.finish().unwrap();
    }
    let s = region.stats();
    assert_eq!(
        s.validated_invocations, 0,
        "no output was read, so nothing was compared"
    );
    assert!(region.surrogate_active());
}
