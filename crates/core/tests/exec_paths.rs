//! Runtime execution-control edge cases: model/output size mismatches,
//! output ordering, stats accounting, and model hot-swapping.

use hpacml_core::{PathTaken, Region};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-exec-paths").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Save an MLP `in_dim -> out_dim` with fixed weights to `path`.
fn save_mlp(path: &std::path::Path, in_dim: usize, out_dim: usize, seed: u64) {
    let spec = ModelSpec::mlp(in_dim, &[4], out_dim, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

fn simple_region(model: &std::path::Path) -> Region {
    Region::from_source(
        "exec-paths",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(predicated:false) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

#[test]
fn model_output_size_mismatch_is_reported() {
    let dir = tmpdir("mismatch");
    let model = dir.join("wrong.hml");
    // Model emits 3 outputs per sample but the from-map needs 1.
    save_mlp(&model, 2, 3, 1);
    let region = simple_region(&model);
    let binds = Bindings::new().with("N", 4);
    let x = [0.1f32; 8];
    let mut y = [0.0f32; 4];
    let mut out = region
        .invoke(&binds)
        .use_surrogate(true)
        .input("x", &x, &[8])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    // 4 samples x 3 outputs = 12 elements; the from-map wants 4 — the first
    // output() call consumes 4 and succeeds, but a second region output
    // doesn't exist, so this surfaces as leftover model output. The scatter
    // itself must succeed on the available chunk.
    out.output("y", &mut y, &[4]).unwrap();
    out.finish().unwrap();
    // Now the reverse: model emits fewer than needed.
    let model2 = dir.join("short.hml");
    save_mlp(&model2, 2, 0, 1);
    // 0-output MLP is rejected by shape inference at build; use a 1-output
    // model against an 8-element from-map instead.
    let model3 = dir.join("narrow.hml");
    save_mlp(&model3, 2, 1, 2);
    let region = Region::from_source(
        "exec-narrow",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(rows(y[0:N])) model("{}")
            "#,
            model3.display()
        ),
    )
    .unwrap();
    let mut y8 = [0.0f32; 8];
    let mut out = region
        .invoke(&binds)
        .input("x", &x, &[8])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    // Model produced 4 elements (4 samples x 1), from-map needs 8.
    let err = match out.output("y", &mut y8, &[8]) {
        Err(e) => e,
        Ok(_) => panic!("expected a model-output-size error"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("needs"), "unexpected error: {msg}");
}

#[test]
fn hot_swapping_models_changes_outputs() {
    let dir = tmpdir("swap");
    let m1 = dir.join("m1.hml");
    let m2 = dir.join("m2.hml");
    save_mlp(&m1, 2, 1, 10);
    save_mlp(&m2, 2, 1, 20);

    let region = simple_region(&m1);
    let binds = Bindings::new().with("N", 4);
    let x = [0.4f32; 8];
    let run = |region: &Region| -> Vec<f32> {
        let mut y = [0.0f32; 4];
        let mut out = region
            .invoke(&binds)
            .use_surrogate(true)
            .input("x", &x, &[8])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y, &[4]).unwrap();
        out.finish().unwrap();
        y.to_vec()
    };
    let y1 = run(&region);
    region.set_model_path(&m2);
    let y2 = run(&region);
    assert_ne!(y1, y2, "different models must give different outputs");
    // Swap back: the engine must serve the original (cache keyed by path).
    region.set_model_path(&m1);
    let y1_again = run(&region);
    assert_eq!(y1, y1_again);
}

#[test]
fn stats_accumulate_across_mixed_invocations() {
    let dir = tmpdir("stats");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 3);
    let region = simple_region(&model);
    let binds = Bindings::new().with("N", 4);
    let x = [0.2f32; 8];
    for step in 0..6 {
        let mut y = [0.0f32; 4];
        let use_model = step % 2 == 0;
        let mut out = region
            .invoke(&binds)
            .use_surrogate(use_model)
            .input("x", &x, &[8])
            .unwrap()
            .run(|| y.iter_mut().for_each(|v| *v = 1.0))
            .unwrap();
        out.output("y", &mut y, &[4]).unwrap();
        let path = out.finish().unwrap();
        assert_eq!(path == PathTaken::Surrogate, use_model);
    }
    let stats = region.stats();
    assert_eq!(stats.invocations, 6);
    assert_eq!(stats.surrogate_invocations, 3);
    assert!(stats.accurate_ns > 0);
    assert!(stats.inference_ns > 0);
    region.reset_stats();
    assert_eq!(region.stats().invocations, 0);
}

#[test]
fn infer_mode_ignores_missing_db_and_collect_mode_ignores_missing_model() {
    let dir = tmpdir("modes");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 4);
    // collect mode without a model file: accurate path runs fine.
    let region = Region::from_source(
        "collect-only",
        r#"
        #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
        #pragma approx tensor map(to: rows(x[0:N]))
        #pragma approx ml(collect) in(x) out(rows(y[0:N]))
        "#,
    )
    .unwrap();
    let binds = Bindings::new().with("N", 2);
    let x = [0.5f32; 4];
    let mut y = [0.0f32; 4];
    let mut out = region
        .invoke(&binds)
        .input("x", &x, &[4])
        .unwrap()
        .run(|| y.copy_from_slice(&x))
        .unwrap();
    out.output("y", &mut y, &[4]).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y, x);
}
