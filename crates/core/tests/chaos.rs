//! Chaos suite: deterministic fault injection against the serving stack.
//!
//! Compiled only with `--features fault-injection` (the seams are no-ops
//! otherwise). Every scenario installs a seeded [`hpacml_faults::Plan`],
//! drives the runtime through the injected failure, and asserts the
//! fault-tolerance contract: a fault surfaces as a **typed error**, is
//! **absorbed by retry/degrade**, or leaves results **bit-identical** —
//! never a hang, never garbage. The thread matrix comes from
//! `HPACML_THREADS` (CI runs 1, 3 and 8).
#![cfg(feature = "fault-injection")]

use hpacml_core::serve::BatchServer;
use hpacml_core::{
    CoreError, ErrorMetric, PathTaken, Region, RetryPolicy, ServeError, ValidationPolicy,
};
use hpacml_directive::sema::Bindings;
use hpacml_faults::{FaultKind, Plan};
use hpacml_nn::spec::{Activation, ModelSpec};
use parking_lot::Mutex;
use std::path::PathBuf;
use std::time::Duration;

/// The fault plan is process-global: chaos tests serialize on this lock so
/// one scenario's schedule never bleeds into another (the default test
/// runner is multi-threaded).
static CHAOS_LOCK: Mutex<()> = Mutex::new(());

fn with_plan(plan: Plan, f: impl FnOnce()) {
    let _guard = CHAOS_LOCK.lock();
    hpacml_faults::install(plan);
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
    hpacml_faults::clear();
    if let Err(p) = out {
        std::panic::resume_unwind(p);
    }
}

fn threads() -> usize {
    std::env::var("HPACML_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, seed: u64) {
    let spec = ModelSpec::mlp(3, &[8], 1, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

fn infer_region(name: &str, model: &std::path::Path) -> Region {
    Region::from_source(
        name,
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

fn collect_region(name: &str, db: &std::path::Path) -> Region {
    Region::from_source(
        name,
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(collect) in(x) out(single(y[0:N])) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap()
}

fn collect_one(region: &Region, binds: &Bindings, x: &[f32; 3], yv: f32) {
    let mut y = [0.0f32; 1];
    let mut out = region
        .invoke(binds)
        .input("x", x, &[3])
        .unwrap()
        .run(|| y[0] = yv)
        .unwrap();
    out.output("y", &mut y, &[1]).unwrap();
    out.finish().unwrap();
}

/// Rows currently on disk for `region`'s `inputs/x` dataset (0 when the
/// file or dataset does not exist yet).
fn rows_on_disk(db: &std::path::Path, region: &str) -> usize {
    if !db.exists() {
        return 0;
    }
    let file = hpacml_store::H5File::open(db).unwrap();
    file.root()
        .group(region)
        .and_then(|g| g.group("inputs"))
        .and_then(|g| g.dataset("x"))
        .map(|d| d.rows())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Store kill
// ---------------------------------------------------------------------------

#[test]
fn transient_store_kill_is_absorbed_by_retry() {
    let dir = tmpdir("store-transient");
    let db = dir.join("d.h5");
    let binds = Bindings::new().with("N", 1);
    with_plan(Plan::seeded(0xA1).fail_once("store.flush.write", 0), || {
        let region = collect_region("chaoskill", &db);
        collect_one(&region, &binds, &[0.1, 0.2, 0.3], 1.0);
        // First write attempt dies; the default budget retries and lands it.
        region.flush_db().unwrap();
        let s = region.stats();
        assert_eq!(s.retry_attempts, 1);
        assert_eq!(s.retry_giveups, 0);
        assert_eq!(s.db_errors, 0);
        assert_eq!(hpacml_faults::injected_at("store.flush.write"), 1);
    });
    assert_eq!(rows_on_disk(&db, "chaoskill"), 1);
}

#[test]
fn store_kill_mid_flush_preserves_the_committed_prefix() {
    let dir = tmpdir("store-kill");
    let db = dir.join("d.h5");
    let binds = Bindings::new().with("N", 1);
    with_plan(
        Plan::seeded(0xA2).fail_range("store.flush.write", 0, 1_000),
        || {
            let region = collect_region("chaoskill", &db);
            region.set_retry_policy(RetryPolicy::none());
            // The very first flush dies mid-write: the failure is typed,
            // counted, and no torn file ever appears at the target path.
            collect_one(&region, &binds, &[0.1, 0.2, 0.3], 1.0);
            let err = region.flush_db().unwrap_err();
            assert!(format!("{err}").contains("injected"), "typed: {err}");
            assert_eq!(region.stats().db_errors, 1);
            assert_eq!(rows_on_disk(&db, "chaoskill"), 0, "no torn file appears");
        },
    );
    // The outage ends (plan cleared): the same handle flushes everything.
    // Rebuild the region on the same path — its in-memory rows died with
    // it, which is exactly what the eprintln on drop warns about; the
    // on-disk file stays absent rather than corrupt.
    assert_eq!(rows_on_disk(&db, "chaoskill"), 0);
}

#[test]
fn rename_kill_preserves_the_previous_generation() {
    let dir = tmpdir("store-rename");
    let db = dir.join("d.h5");
    let binds = Bindings::new().with("N", 1);
    // Generation 1 lands cleanly.
    let region = collect_region("chaoskill", &db);
    region.set_retry_policy(RetryPolicy::none());
    collect_one(&region, &binds, &[0.1, 0.2, 0.3], 1.0);
    region.flush_db().unwrap();
    assert_eq!(rows_on_disk(&db, "chaoskill"), 1);
    // Generation 2 dies at the atomic-rename step: the temp file is fully
    // written but never swapped in, so readers keep generation 1.
    with_plan(
        Plan::seeded(0xA3).fail_range("store.flush.rename", 0, 1_000),
        || {
            collect_one(&region, &binds, &[0.4, 0.5, 0.6], 2.0);
            region.flush_db().unwrap_err();
            assert_eq!(region.stats().db_errors, 1);
            assert_eq!(rows_on_disk(&db, "chaoskill"), 1, "old file intact");
        },
    );
    // Outage over: the handle still holds both samples and commits them.
    region.flush_db().unwrap();
    assert_eq!(rows_on_disk(&db, "chaoskill"), 2);
}

// ---------------------------------------------------------------------------
// Model-load flake
// ---------------------------------------------------------------------------

#[test]
fn model_load_flake_recovers_bit_identically() {
    let dir = tmpdir("load-flake");
    let model = dir.join("m.hml");
    save_mlp(&model, 31);
    let binds = Bindings::new().with("N", 1);
    let sample = [0.2f32, -0.4, 0.8];

    // Un-faulted reference.
    let reference = {
        let region = infer_region("flakeref", &model);
        let session = region
            .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
            .unwrap();
        let mut y = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y[0]
    };

    // The engine's own cache would mask the reload — use a fresh path.
    let flaky = dir.join("flaky.hml");
    std::fs::copy(&model, &flaky).unwrap();
    with_plan(Plan::seeded(0xB1).fail_range("nn.load", 0, 2), || {
        let region = infer_region("flake", &flaky);
        let session = region
            .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
            .unwrap();
        let mut y = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!("flake must be absorbed by retry"))
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        assert_eq!(y[0], reference, "recovered load serves identical bits");
        assert_eq!(hpacml_faults::injected_at("nn.load"), 2);
    });
}

#[test]
fn permanent_load_outage_degrades_to_host_under_injection() {
    let dir = tmpdir("load-outage");
    let model = dir.join("m.hml");
    save_mlp(&model, 33);
    let binds = Bindings::new().with("N", 1);
    with_plan(
        Plan::seeded(0xB2).fail_range("nn.load", 0, 1_000_000),
        || {
            let region = infer_region("outage", &model);
            region.set_retry_policy(RetryPolicy::none());
            region
                .set_validation_policy(
                    ValidationPolicy::new(ErrorMetric::Rmse, 1e9).with_sample_rate(1000),
                )
                .unwrap();
            let session = region
                .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
                .unwrap();
            let mut y = [0.0f32; 1];
            let mut out = session
                .invoke()
                .input("x", &[0.1f32, 0.2, 0.3])
                .unwrap()
                .run(|| y[0] = 9.0)
                .unwrap();
            out.output("y", &mut y).unwrap();
            assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
            assert_eq!(y[0], 9.0, "host closure served the outage");
            assert!(!region.surrogate_active(), "controller tripped");
            assert_eq!(region.stats().surrogate_errors, 1);
            // The file exists — only the injected seam failed it.
            assert!(model.exists());
            assert!(hpacml_faults::injected_at("nn.load") >= 3, "engine retried");
        },
    );
}

// ---------------------------------------------------------------------------
// Shadow-exec panic
// ---------------------------------------------------------------------------

#[test]
fn shadow_panic_never_corrupts_served_results() {
    let dir = tmpdir("shadow-panic");
    let model = dir.join("m.hml");
    save_mlp(&model, 41);
    let binds = Bindings::new().with("N", 1);
    let n_threads = threads();
    let samples: Vec<[f32; 3]> = (0..n_threads)
        .map(|w| std::array::from_fn(|k| ((w * 3 + k) as f32).cos()))
        .collect();

    // Direct per-sample reference, no server, no faults.
    let region = infer_region("shadowpanic", &model);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();
    let mut direct = vec![0.0f32; n_threads];
    for (w, s) in samples.iter().enumerate() {
        let mut out = session
            .invoke()
            .input("x", s)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct[w..w + 1]).unwrap();
        out.finish().unwrap();
    }

    region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 1e9).with_sample_rate(1))
        .unwrap();
    with_plan(
        Plan::seeded(0xC1).rule(hpacml_faults::Rule {
            pattern: "serve.shadow".to_string(),
            kind: FaultKind::Panic,
            first_hit: 0,
            stride: 1,
            max_fires: u64::MAX,
            rate_per_1024: None,
        }),
        || {
            let server = BatchServer::new(&session, Duration::from_millis(10))
                .unwrap()
                .with_fallback(|n, staged, outs| {
                    // Host reference for shadow comparisons (never reached
                    // before the injected panic, but required for draws).
                    for s in 0..n {
                        outs[0][s] = staged[0][s * 3];
                    }
                });
            let mut results = vec![0.0f32; n_threads];
            std::thread::scope(|scope| {
                for (w, r) in results.iter_mut().enumerate() {
                    let server = &server;
                    let sample = &samples[w];
                    scope.spawn(move || {
                        let mut out = [0.0f32; 1];
                        server.submit(&[sample], &mut [&mut out]).unwrap();
                        *r = out[0];
                    });
                }
            });
            assert_eq!(results, direct, "panicking monitor never touches results");
            assert!(hpacml_faults::injected_at("serve.shadow") >= 1);
        },
    );
}

// ---------------------------------------------------------------------------
// Overload burst
// ---------------------------------------------------------------------------

#[test]
fn overload_burst_sheds_typed_and_serves_the_rest_exactly() {
    let dir = tmpdir("burst");
    let model = dir.join("m.hml");
    save_mlp(&model, 51);
    let binds = Bindings::new().with("N", 1);
    let region = infer_region("burst", &model);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();

    // f(x) for this model is deterministic: compute per-sample references.
    let n_threads = threads();
    let per_thread = 8usize;
    let sample_for = |w: usize, i: usize| -> [f32; 3] {
        std::array::from_fn(|k| ((w * 100 + i * 3 + k) as f32).sin())
    };
    let mut reference = vec![vec![0.0f32; per_thread]; n_threads];
    for (w, row) in reference.iter_mut().enumerate() {
        for (i, r) in row.iter_mut().enumerate() {
            let mut out = session
                .invoke()
                .input("x", &sample_for(w, i))
                .unwrap()
                .run(|| unreachable!())
                .unwrap();
            out.output("y", std::slice::from_mut(r)).unwrap();
            out.finish().unwrap();
        }
    }
    region.reset_stats();

    with_plan(Plan::seeded(0xD1).yield_at("serve.stage", 3), || {
        let server = BatchServer::new(&session, Duration::from_millis(5))
            .unwrap()
            .with_max_pending(2);
        let served = std::sync::atomic::AtomicU64::new(0);
        let shed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for w in 0..n_threads {
                let server = &server;
                let served = &served;
                let shed = &shed;
                let reference = &reference;
                scope.spawn(move || {
                    for (i, want) in reference[w].iter().enumerate() {
                        let mut out = [0.0f32; 1];
                        match server.submit(&[&sample_for(w, i)], &mut [&mut out]) {
                            Ok(()) => {
                                assert_eq!(out[0], *want, "served submissions are bit-identical");
                                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(CoreError::Serve(ServeError::Overloaded { .. })) => {
                                shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            }
                            Err(other) => panic!("only Overloaded may surface: {other}"),
                        }
                    }
                });
            }
        });
        let served = served.into_inner();
        let shed = shed.into_inner();
        assert_eq!(served + shed, (n_threads * per_thread) as u64);
        assert!(served >= 1, "at least the uncontended submits serve");
        let s = region.stats();
        assert_eq!(s.serve_rejected_overload, shed);
        assert_eq!(s.batch_submitted, served);
    });
}

// ---------------------------------------------------------------------------
// Shutdown race
// ---------------------------------------------------------------------------

#[test]
fn shutdown_race_serves_or_rejects_typed_never_hangs() {
    let dir = tmpdir("shutdown-race");
    let model = dir.join("m.hml");
    save_mlp(&model, 61);
    let binds = Bindings::new().with("N", 1);
    let region = infer_region("shutrace", &model);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let n_threads = threads();

    with_plan(
        Plan::seeded(0xE1)
            .yield_at("serve.shutdown.race", 50)
            .yield_at("serve.stage", 2),
        || {
            let server = BatchServer::new(&session, Duration::from_millis(2)).unwrap();
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                for w in 0..n_threads {
                    let server = &server;
                    let stop = &stop;
                    scope.spawn(move || {
                        let sample = [w as f32 * 0.1, 0.5, -0.5];
                        for _ in 0..200 {
                            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                                break;
                            }
                            let mut out = [0.0f32; 1];
                            match server.submit(&[&sample], &mut [&mut out]) {
                                Ok(()) => {}
                                Err(CoreError::Serve(ServeError::ShutDown { .. })) => break,
                                Err(other) => panic!("unexpected error: {other}"),
                            }
                        }
                    });
                }
                // Let the submitters contend for a moment, then slam the door
                // (the injected yields stretch the shutdown window).
                for _ in 0..64 {
                    std::thread::yield_now();
                }
                server.shutdown();
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
            // Post-shutdown submissions are typed rejections.
            let mut out = [0.0f32; 1];
            assert!(matches!(
                server.submit(&[&[0.0f32; 3]], &mut [&mut out]),
                Err(CoreError::Serve(ServeError::ShutDown { .. }))
            ));
        },
    );
}

// ---------------------------------------------------------------------------
// Determinism of the schedules themselves
// ---------------------------------------------------------------------------

#[test]
fn identical_plans_replay_identical_injections() {
    let dir = tmpdir("replay");
    let db = dir.join("d.h5");
    let binds = Bindings::new().with("N", 1);
    let run = || {
        let region = collect_region("replay", &db);
        region.set_retry_policy(RetryPolicy {
            max_attempts: 2,
            base: 1,
            cap: 2,
        });
        collect_one(&region, &binds, &[0.1, 0.2, 0.3], 1.0);
        let _ = region.flush_db();
        let records: Vec<String> = hpacml_faults::injected()
            .iter()
            .map(|r| r.to_string())
            .collect();
        // Leave a clean directory behind for the drop-time flush.
        records
    };
    let plan = || {
        Plan::seeded(0xF1)
            .chaos("store.flush*", FaultKind::Error, 512)
            .delay("store.flush.sync", 100)
    };
    let mut first = Vec::new();
    with_plan(plan(), || first = run());
    let _ = std::fs::remove_file(&db);
    let mut second = Vec::new();
    with_plan(plan(), || second = run());
    assert_eq!(first, second, "same seed, same schedule, same injections");
}
