//! Counting-allocator proof of the batched zero-allocation steady state:
//! after a session's per-thread buffers are warm, `invoke_batch(n)` performs
//! **no** heap allocation on the surrogate path — gather, assembly, forward
//! pass, scatter and stats included — for *any* `n` up to `max_batch`
//! (buffers are sized to `max_batch` once, so varying `n` between calls
//! stays allocation-free too).
//!
//! The counter is a `#[global_allocator]` that tallies allocations on the
//! calling thread only (const-initialized thread-locals, so the bookkeeping
//! itself never allocates), which keeps the counts immune to other threads.

use hpacml_core::Region;
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    let _ = TL_TRACKING.try_with(|t| {
        if t.get() {
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: a pass-through `GlobalAlloc`: every method delegates to `System`
// under the caller's own contract, and the thread-local counting on the side
// never allocates (const-initialized cells) and never touches the layout.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System.alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `layout` is forwarded unchanged from our caller.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same ptr/layout contract as `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc` via the method above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System.realloc`, to which this delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count heap allocations performed by the current thread while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = TL_ALLOCS.with(|c| c.get());
    TL_TRACKING.with(|t| t.set(true));
    f();
    TL_TRACKING.with(|t| t.set(false));
    let after = TL_ALLOCS.with(|c| c.get());
    after - before
}

#[test]
fn steady_state_batched_invocation_is_allocation_free() {
    let dir = std::env::temp_dir().join("hpacml-alloc-free-batch");
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("m.hml");
    let spec = ModelSpec::mlp(2, &[16], 1, Activation::ReLU, 0.0);
    let mut model = spec.build(7).unwrap();
    hpacml_nn::serialize::save_model(&model_path, &spec, &mut model, None, None).unwrap();

    let region = Region::from_source(
        "alloc-free-batch",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model_path.display()
        ),
    )
    .unwrap();

    const MAX_BATCH: usize = 64;
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[1])], MAX_BATCH)
        .unwrap();

    let x: Vec<f32> = (0..MAX_BATCH * 2)
        .map(|k| (k as f32 * 0.11).sin())
        .collect();
    let mut y = vec![0.0f32; MAX_BATCH];

    let run_batch = |n: usize, y: &mut [f32]| {
        let mut out = session
            .invoke_batch(n)
            .unwrap()
            .input("x", &x[..n * 2])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y[..n]).unwrap();
        out.finish().unwrap();
    };

    // Warm-up: resolves the model, sizes every buffer for MAX_BATCH, lazily
    // initializes thread-locals and the global inference engine.
    run_batch(MAX_BATCH, &mut y);
    run_batch(3, &mut y);

    // Steady state: zero heap allocations per batched invocation, with the
    // runtime batch size varying call to call.
    const ITERS: u64 = 200;
    let sizes = [MAX_BATCH, 1, 17, 64, 5, 33];
    let allocs = allocations_during(|| {
        for i in 0..ITERS {
            run_batch(sizes[(i as usize) % sizes.len()], &mut y);
        }
    });
    assert_eq!(
        allocs, 0,
        "steady-state batched invocation allocated {allocs} times over {ITERS} iterations \
         (gather, assembly, forward, scatter and stats must all reuse warmed buffers)"
    );

    // The results are still right (guards against a silent no-op).
    run_batch(2, &mut y);
    let mut y1 = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &x[..2])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut y1).unwrap();
    out.finish().unwrap();
    assert_eq!(y[0], y1[0]);
}
