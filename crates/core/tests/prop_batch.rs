//! Property tests of the runtime batch dimension: for random per-sample
//! region specs (feature width, model shape, seed), random batch sizes and
//! random input data, `invoke_batch(n)` must be **bit-identical** to `n`
//! sequential one-shot `Region::invoke` calls — and the concurrent
//! auto-batching submitter must produce the same bits regardless of the
//! order submissions land in.

use hpacml_core::serve::BatchServer;
use hpacml_core::Region;
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use proptest::prelude::*;
use std::time::Duration;

/// Save a fixed-seed MLP `feat -> hidden -> out_dim` and return its path.
fn saved_model(feat: usize, hidden: usize, out_dim: usize, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("hpacml-prop-batch");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("mlp-{feat}-{hidden}-{out_dim}-{seed}.hml"));
    if !path.exists() {
        let spec = ModelSpec::mlp(feat, &[hidden], out_dim, Activation::Tanh, 0.0);
        let mut model = spec.build(seed).unwrap();
        hpacml_nn::serialize::save_model(&path, &spec, &mut model, None, None).unwrap();
    }
    path
}

/// A per-sample region: `feat` features per sweep element, `out_dim` outputs.
fn per_sample_region(feat: usize, out_dim: usize, model: &std::path::Path) -> Region {
    Region::from_source(
        "prop-batch",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:{feat}] = ([{feat}*i : {feat}*i+{feat}]))
            #pragma approx tensor functor(outs: [i, 0:{out_dim}] = ([{out_dim}*i : {out_dim}*i+{out_dim}]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(outs(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// invoke_batch(n) == n sequential one-shot invokes, bit for bit, for
    /// random region widths, model seeds, batch sizes and data.
    #[test]
    fn batched_invocation_matches_sequential_one_shots(
        feat in 1usize..5,
        hidden in 2usize..12,
        out_dim in 1usize..3,
        n in 1usize..20,
        model_seed in 0u64..6,
        data_seed in 0u64..1000,
    ) {
        // Headroom above n so batches regularly run below max_batch.
        let max_batch = n + (data_seed % 8) as usize;
        let model = saved_model(feat, hidden, out_dim, model_seed);
        let region = per_sample_region(feat, out_dim, &model);
        let binds = Bindings::new().with("N", 1);

        // Deterministic pseudo-random input data.
        let mut s = data_seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 40) as f32 / (1u64 << 24) as f32 - 0.5
        };
        let x: Vec<f32> = (0..n * feat).map(|_| next()).collect();

        // Reference: n sequential *one-shot* invocations (dims per call).
        let mut y_seq = vec![0.0f32; n * out_dim];
        for i in 0..n {
            let mut out = region
                .invoke(&binds)
                .input("x", &x[i * feat..(i + 1) * feat], &[feat]).unwrap()
                .run(|| unreachable!()).unwrap();
            out.output("y", &mut y_seq[i * out_dim..(i + 1) * out_dim], &[out_dim]).unwrap();
            out.finish().unwrap();
        }

        // One batched invocation through a compiled session.
        let session = region
            .session(&binds, &[("x", &[feat]), ("y", &[out_dim])], max_batch).unwrap();
        let mut y_batch = vec![0.0f32; n * out_dim];
        let mut out = session
            .invoke_batch(n).unwrap()
            .input("x", &x).unwrap()
            .run(|| unreachable!()).unwrap();
        out.output("y", &mut y_batch).unwrap();
        out.finish().unwrap();
        prop_assert_eq!(&y_batch, &y_seq);

        // The concurrent submitter coalesces however the scheduler lands the
        // threads — every sample must still come back bit-identical.
        let server = BatchServer::new(&session, Duration::from_millis(2)).unwrap();
        let mut y_served = vec![0.0f32; n * out_dim];
        std::thread::scope(|scope| {
            for (i, chunk) in y_served.chunks_mut(out_dim).enumerate() {
                let server = &server;
                let sample = &x[i * feat..(i + 1) * feat];
                scope.spawn(move || {
                    server.submit(&[sample], &mut [chunk]).unwrap();
                });
            }
        });
        prop_assert_eq!(&y_served, &y_seq);
    }
}
