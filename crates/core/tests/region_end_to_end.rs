//! End-to-end tests of the HPAC-ML runtime: a full collect → train → deploy
//! cycle through the same annotated region, mirroring the paper's Fig. 1
//! workflow on a small 2-D stencil.

use hpacml_core::{PathTaken, Region};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_nn::{InMemoryDataset, Normalizer};
use hpacml_tensor::Tensor;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-core-e2e").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One accurate Jacobi step: 4-neighbour average over the interior.
fn jacobi_step(t: &[f32], tnew: &mut [f32], n: usize, m: usize) {
    for i in 1..n - 1 {
        for j in 1..m - 1 {
            tnew[i * m + j] = 0.25
                * (t[(i - 1) * m + j] + t[(i + 1) * m + j] + t[i * m + j - 1] + t[i * m + j + 1]);
        }
    }
}

fn stencil_source(db: &std::path::Path, model: &std::path::Path) -> String {
    format!(
        r#"
        #pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
        #pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
        #pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
        #pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
        #pragma approx ml(predicated:false) in(t) out(tnew) db("{}") model("{}")
        "#,
        db.display(),
        model.display()
    )
}

fn random_grid(n: usize, m: usize, seed: u64) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n * m)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

#[test]
fn collect_train_deploy_cycle() {
    let dir = tmpdir("cycle");
    let db = dir.join("stencil.h5");
    let model_path = dir.join("stencil.hml");
    let (n, m) = (10usize, 12usize);
    let region = Region::from_source("stencil", &stencil_source(&db, &model_path)).unwrap();
    let binds = Bindings::new().with("N", n as i64).with("M", m as i64);

    // Phase 1: data collection over many invocations (predicated:false).
    let invocations = 40usize;
    for k in 0..invocations {
        let t = random_grid(n, m, k as u64 + 1);
        let mut tnew = vec![0.0f32; n * m];
        let mut out = region
            .invoke(&binds)
            .input("t", &t, &[n, m])
            .unwrap()
            .run(|| jacobi_step(&t, &mut tnew, n, m))
            .unwrap();
        assert_eq!(out.path(), PathTaken::Accurate);
        out.output("tnew", &mut tnew, &[n, m]).unwrap();
        assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    }
    region.flush_db().unwrap();
    assert!(region.db_size_bytes() > 0);

    // Phase 2: an "ML engineer" loads the database and trains a surrogate.
    let file = hpacml_store::H5File::open(&db).unwrap();
    let group = file.root().group("stencil").unwrap();
    let xs = group.group("inputs").unwrap().dataset("t").unwrap();
    let ys = group.group("outputs").unwrap().dataset("tnew").unwrap();
    assert_eq!(xs.rows(), invocations);
    assert_eq!(xs.inner_shape(), &[n - 2, m - 2, 5]);
    assert_eq!(ys.inner_shape(), &[n - 2, m - 2, 1]);
    let times = group.dataset("region_time_ns").unwrap().read_f64().unwrap();
    assert_eq!(times.len(), invocations);

    // Flatten sweep points into training samples: 5 features -> 1 target.
    let points = invocations * (n - 2) * (m - 2);
    let x = Tensor::from_vec(xs.read_f32().unwrap(), [points, 5]).unwrap();
    let y = Tensor::from_vec(ys.read_f32().unwrap(), [points, 1]).unwrap();
    let ds = InMemoryDataset::new(x, y).unwrap();
    let (train_ds, val_ds) = ds.split(0.8, 7);

    let spec = ModelSpec::mlp(5, &[16], 1, Activation::Tanh, 0.0);
    let mut model = spec.build(3).unwrap();
    let in_norm = Normalizer::fit(&train_ds.x, hpacml_nn::data::NormAxis::PerFeature).unwrap();
    let normed = InMemoryDataset::new(in_norm.transform(&train_ds.x), train_ds.y.clone()).unwrap();
    let normed_val = InMemoryDataset::new(in_norm.transform(&val_ds.x), val_ds.y.clone()).unwrap();
    let cfg = hpacml_nn::TrainConfig {
        epochs: 40,
        batch_size: 128,
        optimizer: hpacml_nn::optim::Optimizer::adam(5e-3, 0.0),
        ..Default::default()
    };
    let hist = hpacml_nn::train(&mut model, &normed, Some(&normed_val), &cfg).unwrap();
    assert!(
        hist.best_val < 1e-3,
        "stencil surrogate should fit well, got {}",
        hist.best_val
    );
    hpacml_nn::serialize::save_model(&model_path, &spec, &mut model, Some(&in_norm), None).unwrap();

    // Phase 3: deployment — same region, same source, surrogate on.
    let t = random_grid(n, m, 999);
    let mut accurate = vec![0.0f32; n * m];
    jacobi_step(&t, &mut accurate, n, m);

    let mut surrogate_out = vec![0.0f32; n * m];
    let mut out = region
        .invoke(&binds)
        .use_surrogate(true)
        .input("t", &t, &[n, m])
        .unwrap()
        .run(|| panic!("accurate path must not run in surrogate mode"))
        .unwrap();
    assert_eq!(out.path(), PathTaken::Surrogate);
    out.output("tnew", &mut surrogate_out, &[n, m]).unwrap();
    out.finish().unwrap();

    // The surrogate should approximate the Jacobi average closely, and must
    // only have written the interior.
    let mut max_err = 0.0f32;
    for i in 0..n {
        for j in 0..m {
            let (s, a) = (surrogate_out[i * m + j], accurate[i * m + j]);
            if i == 0 || i == n - 1 || j == 0 || j == m - 1 {
                assert_eq!(s, 0.0, "boundary must be untouched");
            } else {
                max_err = max_err.max((s - a).abs());
            }
        }
    }
    assert!(max_err < 0.15, "surrogate error too high: {max_err}");

    // Stats: one surrogate invocation recorded with full phase coverage.
    let stats = region.stats();
    assert_eq!(stats.invocations, invocations as u64 + 1);
    assert_eq!(stats.surrogate_invocations, 1);
    assert!(stats.to_tensor_ns > 0);
    assert!(stats.inference_ns > 0);
    assert!(stats.from_tensor_ns > 0);
    assert!(stats.accurate_ns > 0);
}

#[test]
fn predicated_interleaving_switches_paths() {
    let dir = tmpdir("interleave");
    let model_path = dir.join("id.hml");
    // Identity surrogate: y = x through a 1->1 linear layer trained trivially.
    let spec = ModelSpec::new(
        vec![1],
        vec![hpacml_nn::LayerSpec::Linear {
            in_features: 1,
            out_features: 1,
        }],
    );
    let mut model = spec.build(1).unwrap();
    // Force weights to the identity.
    model.import_weights(&[vec![1.0], vec![0.0]]).unwrap();
    hpacml_nn::serialize::save_model(&model_path, &spec, &mut model, None, None).unwrap();

    let src = format!(
        r#"
        #pragma approx tensor functor(idf: [i, 0:1] = ([i]))
        #pragma approx tensor map(to: idf(x[0:N]))
        #pragma approx tensor map(from: idf(y[0:N]))
        #pragma approx ml(predicated:false) in(x) out(y) model("{}")
        "#,
        model_path.display()
    );
    let region = Region::from_source("interleave", &src).unwrap();
    let binds = Bindings::new().with("N", 8);
    let x: Vec<f32> = (0..8).map(|i| i as f32).collect();

    let mut surrogate_hits = 0;
    for step in 0..10 {
        let use_model = step % 3 == 0; // 1:2 interleaving
        let mut y = vec![-1.0f32; 8];
        let mut out = region
            .invoke(&binds)
            .use_surrogate(use_model)
            .input("x", &x, &[8])
            .unwrap()
            .run(|| y.copy_from_slice(&x))
            .unwrap();
        out.output("y", &mut y, &[8]).unwrap();
        let path = out.finish().unwrap();
        if use_model {
            assert_eq!(path, PathTaken::Surrogate);
            surrogate_hits += 1;
            for (a, b) in y.iter().zip(&x) {
                assert!((a - b).abs() < 1e-5, "identity surrogate: {a} vs {b}");
            }
        } else {
            assert_eq!(path, PathTaken::Accurate);
            assert_eq!(y, x);
        }
    }
    assert_eq!(surrogate_hits, 4);
    assert_eq!(region.stats().surrogate_invocations, 4);
}

#[test]
fn undeclared_arrays_and_missing_model_are_rejected() {
    let region = Region::from_source(
        "strict",
        r#"
        #pragma approx tensor functor(f: [i, 0:1] = ([i]))
        #pragma approx tensor map(to: f(x[0:N]))
        #pragma approx tensor map(from: f(y[0:N]))
        #pragma approx ml(infer) in(x) out(y)
        "#,
    )
    .unwrap();
    let binds = Bindings::new().with("N", 4);
    let x = [0.0f32; 4];
    // Unknown input name.
    assert!(region.invoke(&binds).input("z", &x, &[4]).is_err());
    // Duplicate input.
    let inv = region.invoke(&binds).input("x", &x, &[4]).unwrap();
    assert!(inv.input("x", &x, &[4]).is_err());
    // Missing model in infer mode.
    let err = match region
        .invoke(&binds)
        .input("x", &x, &[4])
        .unwrap()
        .run(|| {})
    {
        Err(e) => e,
        Ok(_) => panic!("expected a missing-model error"),
    };
    let msg = format!("{err}");
    assert!(msg.contains("model"), "unexpected error: {msg}");
}

#[test]
fn collect_without_db_clause_is_noop() {
    let region = Region::from_source(
        "nodb",
        r#"
        #pragma approx tensor functor(f: [i, 0:1] = ([i]))
        #pragma approx tensor map(to: f(x[0:N]))
        #pragma approx tensor map(from: f(y[0:N]))
        #pragma approx ml(collect) in(x) out(y)
        "#,
    )
    .unwrap();
    let binds = Bindings::new().with("N", 4);
    let x = [1.0f32; 4];
    let mut y = [0.0f32; 4];
    let mut ran = false;
    let mut out = region
        .invoke(&binds)
        .input("x", &x, &[4])
        .unwrap()
        .run(|| ran = true)
        .unwrap();
    out.output("y", &mut y, &[4]).unwrap();
    out.finish().unwrap();
    assert!(ran);
    assert_eq!(region.db_size_bytes(), 0);
}
