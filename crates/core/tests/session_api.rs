//! The compiled `Session` API: compile-once/invoke-many equivalence with the
//! one-shot path, cache-counter observability, thread safety, and the
//! collect-mode path through a session.

use hpacml_core::{PathTaken, Region, Session};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-session-api").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Save an MLP `in_dim -> out_dim` with fixed weights to `path`.
fn save_mlp(path: &std::path::Path, in_dim: usize, out_dim: usize, seed: u64) {
    let spec = ModelSpec::mlp(in_dim, &[8], out_dim, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

fn rows_region(model: &std::path::Path) -> Region {
    Region::from_source(
        "session-rows",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

#[test]
fn session_matches_one_shot_invocation() {
    let dir = tmpdir("parity");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 7);
    let region = rows_region(&model);
    let binds = Bindings::new().with("N", 4);
    let x: Vec<f32> = (0..8).map(|k| k as f32 * 0.11 - 0.4).collect();

    // One-shot reference.
    let mut y_ref = [0.0f32; 4];
    let mut out = region
        .invoke(&binds)
        .input("x", &x, &[8])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut y_ref, &[4]).unwrap();
    out.finish().unwrap();

    // Compiled session, invoked repeatedly: identical results every time.
    let session = region
        .session(&binds, &[("x", &[8]), ("y", &[4])], 1)
        .unwrap();
    for _ in 0..5 {
        let mut y = [0.0f32; 4];
        let mut out = session
            .invoke()
            .input("x", &x)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        assert_eq!(out.path(), PathTaken::Surrogate);
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        assert_eq!(y, y_ref);
    }
    let stats = region.stats();
    assert_eq!(stats.invocations, 6);
    assert_eq!(stats.surrogate_invocations, 6);
    assert!(stats.to_tensor_ns > 0 && stats.from_tensor_ns > 0);
}

#[test]
fn cache_counters_show_compile_once_execute_many() {
    let dir = tmpdir("counters");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 3);
    let region = rows_region(&model);
    let binds = Bindings::new().with("N", 4);
    let x = [0.25f32; 8];

    let session = region
        .session(&binds, &[("x", &[8]), ("y", &[4])], 1)
        .unwrap();
    let after_build = region.stats();
    // Building compiled the two plans (to + from): misses only.
    assert_eq!(after_build.plan_cache_misses, 2);
    let plan_hits_at_build = after_build.plan_cache_hits;

    let invocations = 10u64;
    for _ in 0..invocations {
        let mut y = [0.0f32; 4];
        let mut out = session
            .invoke()
            .input("x", &x)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
    }
    let stats = region.stats();
    // Steady-state session invocations never touch the plan cache...
    assert_eq!(stats.plan_cache_hits, plan_hits_at_build);
    assert_eq!(stats.plan_cache_misses, 2);
    // ...and resolve the model exactly once.
    assert_eq!(stats.model_cache_misses, 1);
    assert_eq!(stats.model_cache_hits, invocations - 1);

    // The one-shot wrapper hits the plan cache per call instead.
    let mut y = [0.0f32; 4];
    let mut out = region
        .invoke(&binds)
        .input("x", &x, &[8])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut y, &[4]).unwrap();
    out.finish().unwrap();
    let stats = region.stats();
    assert_eq!(stats.plan_cache_hits, plan_hits_at_build + 2);
}

#[test]
fn n_threads_invoking_one_session_agree() {
    let dir = tmpdir("threads");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 11);
    let region = rows_region(&model);
    let binds = Bindings::new().with("N", 16);
    let x: Vec<f32> = (0..32).map(|k| (k as f32).sin()).collect();

    let session = region
        .session(&binds, &[("x", &[32]), ("y", &[16])], 1)
        .unwrap();

    // Reference from the main thread.
    let run_once = |session: &Session| -> Vec<f32> {
        let mut y = vec![0.0f32; 16];
        let mut out = session
            .invoke()
            .input("x", &x)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y
    };
    let reference = run_once(&session);

    let threads = 8;
    let reps = 25;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let session = &session;
            let reference = &reference;
            let run_once = &run_once;
            scope.spawn(move || {
                for _ in 0..reps {
                    assert_eq!(&run_once(session), reference);
                }
            });
        }
    });
    let stats = region.stats();
    assert_eq!(stats.surrogate_invocations, (threads * reps) as u64 + 1);
    // One model resolution total, across all threads.
    assert_eq!(stats.model_cache_misses, 1);
}

#[test]
fn session_collect_mode_records_samples() {
    let dir = tmpdir("collect");
    let db = dir.join("d.h5");
    let region = Region::from_source(
        "session-collect",
        &format!(
            r#"
            #pragma approx tensor functor(idf: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: idf(x[0:N]))
            #pragma approx tensor map(from: idf(y[0:N]))
            #pragma approx ml(collect) in(x) out(y) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap();
    let binds = Bindings::new().with("N", 6);
    let session = region
        .session(&binds, &[("x", &[6]), ("y", &[6])], 1)
        .unwrap();
    let x: Vec<f32> = (0..6).map(|k| k as f32).collect();
    for _ in 0..4 {
        let mut y = vec![0.0f32; 6];
        let mut out = session
            .invoke()
            .input("x", &x)
            .unwrap()
            .run(|| y.iter_mut().zip(&x).for_each(|(o, v)| *o = v * 2.0))
            .unwrap();
        assert_eq!(out.path(), PathTaken::Accurate);
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
    }
    region.flush_db().unwrap();
    let file = hpacml_store::H5File::open(&db).unwrap();
    let group = file.root().group("session-collect").unwrap();
    let xs = group.group("inputs").unwrap().dataset("x").unwrap();
    let ys = group.group("outputs").unwrap().dataset("y").unwrap();
    assert_eq!(xs.rows(), 4);
    assert_eq!(ys.rows(), 4);
    let read = ys.read_f32().unwrap();
    assert_eq!(&read[..6], &[0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
}

#[test]
fn session_rejects_unknown_arrays_and_missing_inputs() {
    let dir = tmpdir("errors");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 5);
    let region = rows_region(&model);
    let binds = Bindings::new().with("N", 4);

    // Missing shape for a declared array.
    assert!(region.session(&binds, &[("x", &[8])], 1).is_err());

    let session = region
        .session(&binds, &[("x", &[8]), ("y", &[4])], 1)
        .unwrap();
    // Unknown input name.
    assert!(session.invoke().input("z", &[0.0; 8]).is_err());
    // Duplicate input.
    let run = session.invoke().input("x", &[0.0; 8]).unwrap();
    assert!(run.input("x", &[0.0; 8]).is_err());
    // Surrogate run without inputs.
    let err = match session.invoke().run(|| {}) {
        Err(e) => e,
        Ok(_) => panic!("expected a missing-input error"),
    };
    assert!(format!("{err}").contains("missing input"));
    // Unknown output name.
    let mut out = session
        .invoke()
        .input("x", &[0.0; 8])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    assert!(out.output("nope", &mut [0.0; 4]).is_err());
}

#[test]
fn multi_input_assembly_is_declaration_ordered_on_both_apis() {
    // Two declared inputs `a, b`; supplying them in reversed order must not
    // change the model input: both APIs assemble in declaration order.
    let dir = tmpdir("order");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 31); // per sample: [a_i, b_i] -> y_i
    let region = Region::from_source(
        "order",
        &format!(
            r#"
            #pragma approx tensor functor(one: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: one(a[0:N]))
            #pragma approx tensor map(to: one(b[0:N]))
            #pragma approx ml(infer) in(a, b) out(one(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap();
    let binds = Bindings::new().with("N", 4);
    let a: Vec<f32> = (0..4).map(|k| k as f32 * 0.1).collect();
    let b: Vec<f32> = (0..4).map(|k| 1.0 - k as f32 * 0.2).collect();

    let one_shot = |first: &str, second: &str| -> Vec<f32> {
        let (d1, d2) = if first == "a" { (&a, &b) } else { (&b, &a) };
        let mut y = vec![0.0f32; 4];
        let mut out = region
            .invoke(&binds)
            .input(first, d1, &[4])
            .unwrap()
            .input(second, d2, &[4])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y, &[4]).unwrap();
        out.finish().unwrap();
        y
    };
    let declared = one_shot("a", "b");
    let reversed = one_shot("b", "a");
    assert_eq!(declared, reversed, "supply order must not change the batch");

    let session = region
        .session(&binds, &[("a", &[4]), ("b", &[4]), ("y", &[4])], 1)
        .unwrap();
    let mut y = vec![0.0f32; 4];
    let mut out = session
        .invoke()
        .input("b", &b)
        .unwrap()
        .input("a", &a)
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut y).unwrap();
    out.finish().unwrap();
    assert_eq!(y, declared, "session path must match the one-shot path");
}

/// A per-sample region (`N = 1`): 2 features in, 1 value out per sample.
fn per_sample_region(model: &std::path::Path) -> Region {
    Region::from_source(
        "session-batch",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:2] = ([2*i : 2*i+2]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

#[test]
fn invoke_batch_matches_sequential_invokes_bitwise() {
    let dir = tmpdir("batch-parity");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 13);
    let region = per_sample_region(&model);
    let binds = Bindings::new().with("N", 1);
    let max_batch = 16usize;
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[1])], max_batch)
        .unwrap();
    let x: Vec<f32> = (0..max_batch * 2)
        .map(|k| (k as f32 * 0.37).sin())
        .collect();

    // Sequential reference: one invoke() per sample.
    let mut y_seq = vec![0.0f32; max_batch];
    for i in 0..max_batch {
        let mut out = session
            .invoke()
            .input("x", &x[i * 2..(i + 1) * 2])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y_seq[i..i + 1]).unwrap();
        out.finish().unwrap();
    }

    // Every batch size up to max_batch must reproduce the same bits.
    for n in 1..=max_batch {
        let mut y = vec![0.0f32; n];
        let mut out = session
            .invoke_batch(n)
            .unwrap()
            .input("x", &x[..n * 2])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        assert_eq!(out.path(), PathTaken::Surrogate);
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        assert_eq!(y, y_seq[..n], "batch {n} diverged from sequential");
    }
}

#[test]
fn invoke_batch_validates_n_and_input_len() {
    let dir = tmpdir("batch-errors");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 17);
    let region = per_sample_region(&model);
    let binds = Bindings::new().with("N", 1);
    // max_batch of zero is rejected at build.
    assert!(region
        .session(&binds, &[("x", &[2]), ("y", &[1])], 0)
        .is_err());
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[1])], 8)
        .unwrap();
    // n outside 1..=max_batch.
    assert!(session.invoke_batch(0).is_err());
    assert!(session.invoke_batch(9).is_err());
    // Input data must carry exactly n per-sample arrays.
    let run = session.invoke_batch(4).unwrap();
    assert!(run.input("x", &[0.0; 7]).is_err());
    // Output buffer must carry exactly n per-sample arrays.
    let mut out = session
        .invoke_batch(2)
        .unwrap()
        .input("x", &[0.1; 4])
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    assert!(out.output("y", &mut [0.0; 3]).is_err());
    assert!(out.output("y", &mut [0.0; 2]).is_ok());
}

#[test]
fn batch_occupancy_counters_track_coalescing() {
    let dir = tmpdir("batch-counters");
    let model = dir.join("m.hml");
    save_mlp(&model, 2, 1, 19);
    let region = per_sample_region(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[1])], 32)
        .unwrap();
    let x = [0.2f32; 64];
    let mut y = [0.0f32; 32];
    // 3 batched invocations of 20 + 2 single invokes.
    for _ in 0..3 {
        let mut out = session
            .invoke_batch(20)
            .unwrap()
            .input("x", &x[..40])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y[..20]).unwrap();
        out.finish().unwrap();
    }
    for _ in 0..2 {
        let mut out = session
            .invoke()
            .input("x", &x[..2])
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y[..1]).unwrap();
        out.finish().unwrap();
    }
    let stats = region.stats();
    assert_eq!(stats.invocations, 62);
    assert_eq!(stats.surrogate_invocations, 62);
    assert_eq!(stats.batch_submitted, 62);
    assert_eq!(stats.batches_flushed, 5);
    assert!((stats.mean_batch_fill() - 62.0 / 5.0).abs() < 1e-9);
}

#[test]
fn batched_collect_records_one_row_per_sample() {
    let dir = tmpdir("batch-collect");
    let db = dir.join("d.h5");
    let region = Region::from_source(
        "batch-collect",
        &format!(
            r#"
            #pragma approx tensor functor(idf: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: idf(x[0:N]))
            #pragma approx tensor map(from: idf(y[0:N]))
            #pragma approx ml(collect) in(x) out(y) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap();
    let binds = Bindings::new().with("N", 3);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[3])], 4)
        .unwrap();
    let x: Vec<f32> = (0..12).map(|k| k as f32).collect();
    let mut y = vec![0.0f32; 12];
    let n = 4usize;
    let mut out = session
        .invoke_batch(n)
        .unwrap()
        .use_surrogate(false)
        .input("x", &x)
        .unwrap()
        .run(|| {
            for (o, v) in y.iter_mut().zip(&x) {
                *o = v * 3.0;
            }
        })
        .unwrap();
    assert_eq!(out.path(), PathTaken::Accurate);
    out.output("y", &mut y).unwrap();
    out.finish().unwrap();
    region.flush_db().unwrap();

    // One database row per *sample*, exactly like n sequential invocations.
    let file = hpacml_store::H5File::open(&db).unwrap();
    let group = file.root().group("batch-collect").unwrap();
    let xs = group.group("inputs").unwrap().dataset("x").unwrap();
    let ys = group.group("outputs").unwrap().dataset("y").unwrap();
    assert_eq!(xs.rows(), n);
    assert_eq!(ys.rows(), n);
    assert_eq!(group.dataset("region_time_ns").unwrap().rows(), n);
    let read = ys.read_f32().unwrap();
    let expect: Vec<f32> = (0..12).map(|k| k as f32 * 3.0).collect();
    assert_eq!(read, expect);
}

#[test]
fn sessions_follow_model_hot_swap_on_rebuild() {
    let dir = tmpdir("swap");
    let m1 = dir.join("m1.hml");
    let m2 = dir.join("m2.hml");
    save_mlp(&m1, 2, 1, 21);
    save_mlp(&m2, 2, 1, 22);
    let region = rows_region(&m1);
    let binds = Bindings::new().with("N", 4);
    let x = [0.3f32; 8];

    let run = |session: &Session| -> Vec<f32> {
        let mut y = vec![0.0f32; 4];
        let mut out = session
            .invoke()
            .input("x", &x)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y
    };
    let s1 = region
        .session(&binds, &[("x", &[8]), ("y", &[4])], 1)
        .unwrap();
    let y1 = run(&s1);
    region.set_model_path(&m2);
    // A session built after the swap sees the new model.
    let s2 = region
        .session(&binds, &[("x", &[8]), ("y", &[4])], 1)
        .unwrap();
    let y2 = run(&s2);
    assert_ne!(y1, y2);
}
