//! The concurrent auto-batching submitter: coalesced submissions must match
//! direct per-sample session invocations exactly (order-independent), the
//! occupancy counters must add up, and misuse must fail loudly.

use hpacml_core::serve::BatchServer;
use hpacml_core::Region;
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-serve-api").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, in_dim: usize, out_dim: usize, seed: u64) {
    let spec = ModelSpec::mlp(in_dim, &[8], out_dim, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

/// Per-sample region: 3 features in, 1 value out.
fn region_for(model: &std::path::Path) -> Region {
    Region::from_source(
        "serve",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

#[test]
fn concurrent_submitters_match_direct_invokes() {
    let dir = tmpdir("parity");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 7);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();

    let workers = 16usize;
    let samples: Vec<Vec<f32>> = (0..workers)
        .map(|w| (0..3).map(|k| ((w * 3 + k) as f32).sin()).collect())
        .collect();

    // Direct per-sample reference.
    let mut direct = vec![0.0f32; workers];
    for (w, s) in samples.iter().enumerate() {
        let mut out = session
            .invoke()
            .input("x", s)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct[w..w + 1]).unwrap();
        out.finish().unwrap();
    }
    region.reset_stats();

    // Concurrent submissions: whatever interleaving the scheduler produces,
    // every worker must get exactly its own sample's result.
    let server = BatchServer::new(&session, Duration::from_millis(20)).unwrap();
    let mut results = vec![0.0f32; workers];
    std::thread::scope(|scope| {
        for (w, r) in results.iter_mut().enumerate() {
            let server = &server;
            let sample = &samples[w];
            scope.spawn(move || {
                let mut out = [0.0f32; 1];
                server.submit(&[sample], &mut [&mut out]).unwrap();
                *r = out[0];
            });
        }
    });
    assert_eq!(results, direct);

    // Occupancy: every sample went through the surrogate, in at least
    // ceil(workers / max_batch) and at most `workers` forward passes.
    let stats = region.stats();
    assert_eq!(stats.batch_submitted, workers as u64);
    assert!(stats.batches_flushed >= (workers as u64).div_ceil(8));
    assert!(stats.batches_flushed <= workers as u64);
    assert!(stats.mean_batch_fill() >= 1.0);
}

#[test]
fn zero_wait_server_still_serves_sequential_submitters() {
    let dir = tmpdir("zero-wait");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 9);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO).unwrap();
    for w in 0..6 {
        let sample = [w as f32 * 0.1; 3];
        let mut direct = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct).unwrap();
        out.finish().unwrap();

        let mut served = [0.0f32; 1];
        server.submit(&[&sample], &mut [&mut served]).unwrap();
        assert_eq!(served, direct);
    }
}

#[test]
fn submit_validates_arity_and_lengths() {
    let dir = tmpdir("arity");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 11);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO).unwrap();
    let sample = [0.5f32; 3];
    let mut out = [0.0f32; 1];
    // Wrong input count.
    assert!(server.submit(&[], &mut [&mut out]).is_err());
    // Wrong per-sample input length.
    assert!(server.submit(&[&sample[..2]], &mut [&mut out]).is_err());
    // Wrong output count / length.
    assert!(server.submit(&[&sample], &mut []).is_err());
    let mut wide = [0.0f32; 2];
    assert!(server.submit(&[&sample], &mut [&mut wide]).is_err());
    // A valid submit still works after the failures.
    assert!(server.submit(&[&sample], &mut [&mut out]).is_ok());
}

#[test]
fn collect_mode_regions_are_rejected() {
    let dir = tmpdir("collect");
    let db = dir.join("d.h5");
    let region = Region::from_source(
        "serve-collect",
        &format!(
            r#"
            #pragma approx tensor functor(idf: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: idf(x[0:N]))
            #pragma approx tensor map(from: idf(y[0:N]))
            #pragma approx ml(collect) in(x) out(y) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap();
    let binds = Bindings::new().with("N", 2);
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[2])], 4)
        .unwrap();
    assert!(BatchServer::new(&session, Duration::ZERO).is_err());
}

/// Many rounds of concurrent submission against a small max_batch: exercises
/// leader handoff, batch close races, and staging recycling.
#[test]
fn sustained_concurrent_load_is_correct() {
    let dir = tmpdir("sustained");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 13);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 3)
        .unwrap();
    let server = BatchServer::new(&session, Duration::from_micros(300)).unwrap();

    let threads = 4usize;
    let rounds = 25usize;
    // Reference results computed directly, one per (thread, round) sample.
    let expect = |t: usize, r: usize| -> f32 {
        let sample = [t as f32 * 0.3, r as f32 * 0.05, 1.0];
        let mut y = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y[0]
    };
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            scope.spawn(move || {
                for r in 0..rounds {
                    let sample = [t as f32 * 0.3, r as f32 * 0.05, 1.0];
                    let mut y = [0.0f32; 1];
                    server.submit(&[&sample], &mut [&mut y]).unwrap();
                    assert_eq!(y[0], expect(t, r), "thread {t} round {r}");
                }
            });
        }
    });
    let stats = region.stats();
    // threads*rounds served submissions + threads*rounds reference invokes.
    assert_eq!(stats.batch_submitted, 2 * (threads * rounds) as u64);
}
