//! The concurrent auto-batching submitter: coalesced submissions must match
//! direct per-sample session invocations exactly (order-independent), the
//! occupancy counters must add up, and misuse must fail loudly.

use hpacml_core::serve::BatchServer;
use hpacml_core::{ErrorMetric, Region, ValidationPolicy};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-serve-api").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, in_dim: usize, out_dim: usize, seed: u64) {
    let spec = ModelSpec::mlp(in_dim, &[8], out_dim, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

/// Per-sample region: 3 features in, 1 value out.
fn region_for(model: &std::path::Path) -> Region {
    Region::from_source(
        "serve",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

#[test]
fn concurrent_submitters_match_direct_invokes() {
    let dir = tmpdir("parity");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 7);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();

    let workers = 16usize;
    let samples: Vec<Vec<f32>> = (0..workers)
        .map(|w| (0..3).map(|k| ((w * 3 + k) as f32).sin()).collect())
        .collect();

    // Direct per-sample reference.
    let mut direct = vec![0.0f32; workers];
    for (w, s) in samples.iter().enumerate() {
        let mut out = session
            .invoke()
            .input("x", s)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct[w..w + 1]).unwrap();
        out.finish().unwrap();
    }
    region.reset_stats();

    // Concurrent submissions: whatever interleaving the scheduler produces,
    // every worker must get exactly its own sample's result.
    let server = BatchServer::new(&session, Duration::from_millis(20)).unwrap();
    let mut results = vec![0.0f32; workers];
    std::thread::scope(|scope| {
        for (w, r) in results.iter_mut().enumerate() {
            let server = &server;
            let sample = &samples[w];
            scope.spawn(move || {
                let mut out = [0.0f32; 1];
                server.submit(&[sample], &mut [&mut out]).unwrap();
                *r = out[0];
            });
        }
    });
    assert_eq!(results, direct);

    // Occupancy: every sample went through the surrogate, in at least
    // ceil(workers / max_batch) and at most `workers` forward passes.
    let stats = region.stats();
    assert_eq!(stats.batch_submitted, workers as u64);
    assert!(stats.batches_flushed >= (workers as u64).div_ceil(8));
    assert!(stats.batches_flushed <= workers as u64);
    assert!(stats.mean_batch_fill() >= 1.0);
}

#[test]
fn zero_wait_server_still_serves_sequential_submitters() {
    let dir = tmpdir("zero-wait");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 9);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO).unwrap();
    for w in 0..6 {
        let sample = [w as f32 * 0.1; 3];
        let mut direct = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct).unwrap();
        out.finish().unwrap();

        let mut served = [0.0f32; 1];
        server.submit(&[&sample], &mut [&mut served]).unwrap();
        assert_eq!(served, direct);
    }
}

#[test]
fn submit_validates_arity_and_lengths() {
    let dir = tmpdir("arity");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 11);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO).unwrap();
    let sample = [0.5f32; 3];
    let mut out = [0.0f32; 1];
    // Wrong input count.
    assert!(server.submit(&[], &mut [&mut out]).is_err());
    // Wrong per-sample input length.
    assert!(server.submit(&[&sample[..2]], &mut [&mut out]).is_err());
    // Wrong output count / length.
    assert!(server.submit(&[&sample], &mut []).is_err());
    let mut wide = [0.0f32; 2];
    assert!(server.submit(&[&sample], &mut [&mut wide]).is_err());
    // A valid submit still works after the failures.
    assert!(server.submit(&[&sample], &mut [&mut out]).is_ok());
}

#[test]
fn collect_mode_regions_are_rejected() {
    let dir = tmpdir("collect");
    let db = dir.join("d.h5");
    let region = Region::from_source(
        "serve-collect",
        &format!(
            r#"
            #pragma approx tensor functor(idf: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: idf(x[0:N]))
            #pragma approx tensor map(from: idf(y[0:N]))
            #pragma approx ml(collect) in(x) out(y) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap();
    let binds = Bindings::new().with("N", 2);
    let session = region
        .session(&binds, &[("x", &[2]), ("y", &[2])], 4)
        .unwrap();
    assert!(BatchServer::new(&session, Duration::ZERO).is_err());
}

/// Many rounds of concurrent submission against a small max_batch: exercises
/// leader handoff, batch close races, and staging recycling.
#[test]
fn sustained_concurrent_load_is_correct() {
    let dir = tmpdir("sustained");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 13);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 3)
        .unwrap();
    let server = BatchServer::new(&session, Duration::from_micros(300)).unwrap();

    let threads = 4usize;
    let rounds = 25usize;
    // Reference results computed directly, one per (thread, round) sample.
    let expect = |t: usize, r: usize| -> f32 {
        let sample = [t as f32 * 0.3, r as f32 * 0.05, 1.0];
        let mut y = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y[0]
    };
    std::thread::scope(|scope| {
        for t in 0..threads {
            let server = &server;
            scope.spawn(move || {
                for r in 0..rounds {
                    let sample = [t as f32 * 0.3, r as f32 * 0.05, 1.0];
                    let mut y = [0.0f32; 1];
                    server.submit(&[&sample], &mut [&mut y]).unwrap();
                    assert_eq!(y[0], expect(t, r), "thread {t} round {r}");
                }
            });
        }
    });
    let stats = region.stats();
    // threads*rounds served submissions + threads*rounds reference invokes.
    assert_eq!(stats.batch_submitted, 2 * (threads * rounds) as u64);
}

/// A lone submitter against a mostly empty server: the leader's deadline
/// flush must serve the straggler as a batch of one, correctly.
#[test]
fn deadline_flush_serves_a_single_straggler() {
    let dir = tmpdir("straggler");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 17);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();

    let sample = [0.25f32, -0.5, 1.0];
    let mut direct = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &sample)
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut direct).unwrap();
    out.finish().unwrap();
    region.reset_stats();

    let server = BatchServer::new(&session, Duration::from_millis(2)).unwrap();
    let mut served = [0.0f32; 1];
    let t0 = std::time::Instant::now();
    server.submit(&[&sample], &mut [&mut served]).unwrap();
    assert_eq!(served, direct);
    // One deadline-flushed pass with a single member, not a hang.
    assert!(t0.elapsed() < Duration::from_secs(5));
    let s = region.stats();
    assert_eq!(s.batches_flushed, 1);
    assert_eq!(s.batch_submitted, 1);
    assert!((s.mean_batch_fill() - 1.0).abs() < 1e-9);
}

/// Shutdown flushes whatever is staged (parked members complete promptly)
/// and every later submission is rejected.
#[test]
fn shutdown_flushes_pending_and_rejects_later_submits() {
    let dir = tmpdir("shutdown");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 19);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();
    // A wait long enough that only shutdown can plausibly flush in time.
    let server = BatchServer::new(&session, Duration::from_secs(60)).unwrap();

    let sample = [0.7f32, 0.1, -0.2];
    let mut direct = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &sample)
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut direct).unwrap();
    out.finish().unwrap();

    let t0 = std::time::Instant::now();
    std::thread::scope(|scope| {
        let server = &server;
        let handle = scope.spawn(move || {
            let mut y = [0.0f32; 1];
            server.submit(&[&sample], &mut [&mut y]).unwrap();
            y[0]
        });
        // Wait until the submitter has actually staged its sample, then
        // shut the server down: the forming batch must flush immediately.
        while server.pending() == 0 {
            std::thread::yield_now();
        }
        server.shutdown();
        let served = handle.join().unwrap();
        assert_eq!(served, direct[0]);
    });
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "shutdown must flush the parked member, not wait out the deadline"
    );

    // Rejected from now on; idempotent shutdown stays rejected.
    let mut y = [0.0f32; 1];
    let err = server.submit(&[&sample], &mut [&mut y]).unwrap_err();
    assert!(err.to_string().contains("shut down"), "{err}");
    server.shutdown();
    assert!(server.submit(&[&sample], &mut [&mut y]).is_err());
}

/// max_batch = 1 degenerates the server into an immediate-execute path:
/// every submitter closes its own batch and no one ever parks.
#[test]
fn max_batch_one_degenerate_mode() {
    let dir = tmpdir("degenerate");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 23);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    // An hour-long max_wait: if any submitter were to park as leader, the
    // test would time out. With max_batch = 1 none ever does.
    let server = BatchServer::new(&session, Duration::from_secs(3600)).unwrap();
    for w in 0..5 {
        let sample = [w as f32 * 0.2, 0.4, -0.1];
        let mut direct = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &sample)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut direct).unwrap();
        out.finish().unwrap();
        let mut served = [0.0f32; 1];
        server.submit(&[&sample], &mut [&mut served]).unwrap();
        assert_eq!(served, direct);
    }
    let s = region.stats();
    assert_eq!(
        s.batches_flushed, 10,
        "5 direct + 5 immediate server passes"
    );
}

/// A panic inside the executing member's pass (here: a panicking fallback
/// handler while the region is forced onto the fallback path) must be
/// published as an error to every parked follower — never a deadlock.
#[test]
fn executor_panic_does_not_deadlock_followers() {
    let dir = tmpdir("panic");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 29);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    region.force_fallback(true);
    let server = BatchServer::new(&session, Duration::from_millis(50))
        .unwrap()
        .with_fallback(|_n, _inputs, _outputs| panic!("fallback kernel exploded"));

    std::thread::scope(|scope| {
        let server = &server;
        let handles: Vec<_> = (0..4)
            .map(|w| {
                scope.spawn(move || {
                    let sample = [w as f32; 3];
                    let mut y = [0.0f32; 1];
                    server.submit(&[&sample], &mut [&mut y]).unwrap_err()
                })
            })
            .collect();
        for h in handles {
            let err = h.join().expect("no follower may deadlock or die");
            assert!(err.to_string().contains("panic"), "{err}");
        }
    });

    // The server stays usable for the next batch once the fault clears.
    region.force_fallback(false);
    let sample = [0.5f32; 3];
    let mut y = [0.0f32; 1];
    server.submit(&[&sample], &mut [&mut y]).unwrap();
}

/// Fallback-disabled serving without a handler fails loudly (fanned out to
/// members) instead of silently serving an over-budget surrogate; with a
/// handler, the batch is served by the host code and counted as fallback.
#[test]
fn fallback_serving_with_and_without_handler() {
    let dir = tmpdir("fallback");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 31);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    region.force_fallback(true);

    let bare = BatchServer::new(&session, Duration::ZERO).unwrap();
    let sample = [0.3f32, 0.6, 0.9];
    let mut y = [0.0f32; 1];
    let err = bare.submit(&[&sample], &mut [&mut y]).unwrap_err();
    assert!(err.to_string().contains("no fallback handler"), "{err}");

    // With a handler: the host code serves, bit-exactly.
    let served = BatchServer::new(&session, Duration::ZERO)
        .unwrap()
        .with_fallback(|n, inputs, outputs| {
            for s in 0..n {
                outputs[0][s] = inputs[0][s * 3] + inputs[0][s * 3 + 1] + inputs[0][s * 3 + 2];
            }
        });
    served.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y[0], 0.3 + 0.6 + 0.9);
    let s = region.stats();
    assert_eq!(s.fallback_invocations, 1);
    assert_eq!(s.surrogate_invocations, 0);
}

/// The server participates in adaptive validation end to end: a handler
/// that disagrees with the model drives the controller over budget, the
/// next flushes are served by the handler, and once the handler agrees
/// again the probes re-enable the surrogate.
#[test]
fn server_adaptive_fallback_round_trip() {
    let dir = tmpdir("adaptive");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 37);
    let region = region_for(&model);
    // A second region over the same model, with no policy attached: its
    // session computes the model's reference values without ever being
    // drawn for shadow validation (which would run the closure).
    let oracle_region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 2)
        .unwrap();
    let oracle = oracle_region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::MaxAbs, 0.5)
                .with_sample_rate(1)
                .with_window(1)
                .with_batch_samples(0),
        )
        .unwrap();

    // Phase is shared with the handler via an atomic: 0 = agree with the
    // model (serve the oracle's value), 1 = drift hard.
    use std::sync::atomic::{AtomicUsize, Ordering};
    let drift = AtomicUsize::new(0);
    let reference_y = |x: &[f32]| -> f32 {
        let mut y = [0.0f32; 1];
        let mut out = oracle
            .invoke()
            .input("x", x)
            .unwrap()
            .run(|| unreachable!())
            .unwrap();
        out.output("y", &mut y).unwrap();
        out.finish().unwrap();
        y[0]
    };
    let server = BatchServer::new(&session, Duration::ZERO)
        .unwrap()
        .with_fallback(|n, inputs, outputs| {
            for s in 0..n {
                let x = &inputs[0][s * 3..(s + 1) * 3];
                outputs[0][s] = if drift.load(Ordering::Relaxed) == 1 {
                    reference_y(x) + 10.0
                } else {
                    reference_y(x)
                };
            }
        });

    let sample = [0.2f32, -0.4, 0.8];
    let expect = reference_y(&sample);
    let mut y = [0.0f32; 1];

    // Agreeing handler: surrogate serves, shadow errors are 0.
    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y[0], expect);
    assert!(region.surrogate_active());

    // Drifting handler: the shadow comparison trips the controller.
    drift.store(1, Ordering::Relaxed);
    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(
        y[0], expect,
        "the drifting flush itself is still surrogate-served"
    );
    assert!(!region.surrogate_active(), "shadow drift must disable");

    // Fallback-served flush returns the handler's (drifted) values.
    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y[0], expect + 10.0);

    // Recovered handler: the probe sees agreement and re-enables.
    drift.store(0, Ordering::Relaxed);
    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y[0], expect, "recovery flush is handler-served");
    assert!(region.surrogate_active(), "probe agreement re-enables");

    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y[0], expect);
    let s = region.stats();
    assert_eq!(s.surrogate_disables, 1);
    assert_eq!(s.surrogate_reenables, 1);
    assert!(s.validated_invocations >= 3);
}

/// Monitoring must never destroy correctly served results: a fallback
/// handler that panics while acting as the *shadow reference* (surrogate
/// active, flush drawn for validation) is contained — every member still
/// receives the surrogate's valid outputs.
#[test]
fn panicking_shadow_reference_does_not_destroy_served_results() {
    let dir = tmpdir("shadow-panic");
    let model = dir.join("m.hml");
    save_mlp(&model, 3, 1, 41);
    let region = region_for(&model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    let sample = [0.4f32, -0.3, 0.9];
    let mut direct = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &sample)
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut direct).unwrap();
    out.finish().unwrap();

    region
        .set_validation_policy(
            hpacml_core::ValidationPolicy::new(hpacml_core::ErrorMetric::Rmse, 1e9)
                .with_sample_rate(1),
        )
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO)
        .unwrap()
        .with_fallback(|_n, _inputs, _outputs| panic!("shadow reference exploded"));
    let mut y = [0.0f32; 1];
    // Every flush is drawn (rate 1) and the shadow reference panics, yet
    // the submit succeeds with the surrogate's bits.
    server.submit(&[&sample], &mut [&mut y]).unwrap();
    assert_eq!(y, direct);
    assert!(
        region.surrogate_active(),
        "a panicked shadow observes nothing"
    );
}
