//! Fault-tolerant serving, admission control and retry/degrade behavior —
//! the failure-path contract: rejections are typed and counted, permanent
//! surrogate failures degrade to the host closure through the fallback
//! controller, db I/O failures retry then surface with counters, and the
//! server's adaptive wait tracks occupancy.

use hpacml_core::serve::BatchServer;
use hpacml_core::{
    CoreError, ErrorMetric, PathTaken, Region, RetryPolicy, ServeError, ValidationPolicy,
};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use std::path::PathBuf;
use std::time::Duration;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("hpacml-robustness-api")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, seed: u64) {
    let spec = ModelSpec::mlp(3, &[8], 1, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

/// Per-sample infer region: 3 features in, 1 value out.
fn infer_region(name: &str, model: &std::path::Path) -> Region {
    Region::from_source(
        name,
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}")
            "#,
            model.display()
        ),
    )
    .unwrap()
}

/// Collect-mode region persisting to `db`.
fn collect_region(name: &str, db: &std::path::Path) -> Region {
    Region::from_source(
        name,
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(collect) in(x) out(single(y[0:N])) db("{}")
            "#,
            db.display()
        ),
    )
    .unwrap()
}

fn collect_one(region: &Region, binds: &Bindings, x: &[f32; 3], yv: f32) {
    let mut y = [0.0f32; 1];
    let mut out = region
        .invoke(binds)
        .input("x", x, &[3])
        .unwrap()
        .run(|| y[0] = yv)
        .unwrap();
    out.output("y", &mut y, &[1]).unwrap();
    out.finish().unwrap();
}

// ---------------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------------

#[test]
fn overload_rejection_is_typed_counted_and_recoverable() {
    let dir = tmpdir("overload");
    let model = dir.join("m.hml");
    save_mlp(&model, 3);
    let region = infer_region("overload", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();

    let sample = [0.3f32, -0.1, 0.7];
    let mut direct = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &sample)
        .unwrap()
        .run(|| unreachable!())
        .unwrap();
    out.output("y", &mut direct).unwrap();
    out.finish().unwrap();
    region.reset_stats();

    // Cap of 1: while one sample is staged, the next submit is shed.
    let server = BatchServer::new(&session, Duration::from_secs(5))
        .unwrap()
        .with_max_pending(1);
    std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            let mut out = [0.0f32; 1];
            server.submit(&[&sample], &mut [&mut out]).map(|()| out[0])
        });
        while server.in_flight() < 1 {
            std::thread::yield_now();
        }
        let mut out = [0.0f32; 1];
        let err = server.submit(&[&sample], &mut [&mut out]).unwrap_err();
        match err {
            CoreError::Serve(ServeError::Overloaded {
                pending,
                max_pending,
                ..
            }) => {
                assert!(pending >= 1);
                assert_eq!(max_pending, 1);
            }
            other => panic!("expected Overloaded, got: {other}"),
        }
        // The shed submit left the server fully usable: drain the parked
        // leader and its result is bit-identical to the direct invoke.
        server.drain();
        assert_eq!(leader.join().unwrap().unwrap(), direct[0]);
    });
    let s = region.stats();
    assert_eq!(s.serve_rejected_overload, 1);
    assert_eq!(s.serve_rejected_deadline, 0);
    // Rejected submissions never count as served work.
    assert_eq!(s.batch_submitted, 1);
}

#[test]
fn deadline_rejection_is_up_front_and_counted() {
    let dir = tmpdir("deadline");
    let model = dir.join("m.hml");
    save_mlp(&model, 5);
    let region = infer_region("deadline", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 2)
        .unwrap();
    let server = BatchServer::new(&session, Duration::from_secs(5)).unwrap();

    let sample = [0.1f32, 0.2, 0.3];
    std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            let mut out = [0.0f32; 1];
            server.submit(&[&sample], &mut [&mut out]).map(|()| out[0])
        });
        while server.pending() < 1 {
            std::thread::yield_now();
        }
        // The forming batch flushes ~5s out; a 1ns budget cannot make it.
        let budget = Duration::from_nanos(1);
        let mut out = [0.0f32; 1];
        let err = server
            .submit_with_deadline(&[&sample], &mut [&mut out], budget)
            .unwrap_err();
        match err {
            CoreError::Serve(ServeError::Deadline {
                budget_ns,
                flush_in_ns,
                ..
            }) => {
                assert_eq!(budget_ns, 1);
                assert!(flush_in_ns > budget_ns);
            }
            other => panic!("expected Deadline, got: {other}"),
        }
        // A budget that covers the flush joins normally — and filling the
        // batch (max_batch = 2) flushes it immediately, completing both.
        let mut out2 = [0.0f32; 1];
        server
            .submit_with_deadline(&[&sample], &mut [&mut out2], Duration::from_secs(60))
            .unwrap();
        let lead_y = leader.join().unwrap().unwrap();
        assert_eq!(lead_y, out2[0], "same sample, same batch, same result");
    });
    let s = region.stats();
    assert_eq!(s.serve_rejected_deadline, 1);
    assert_eq!(s.serve_rejected_overload, 0);

    // A tight-deadline submit that *leads* a new batch is admitted: the
    // batch's own wait shrinks to fit the budget.
    let mut out = [0.0f32; 1];
    server
        .submit_with_deadline(&[&sample], &mut [&mut out], Duration::ZERO)
        .unwrap();
    assert_eq!(region.stats().serve_rejected_deadline, 1);
}

#[test]
fn adaptive_wait_tracks_occupancy() {
    let dir = tmpdir("adaptive");
    let model = dir.join("m.hml");
    save_mlp(&model, 7);
    let region = infer_region("adaptive", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    let max_wait = Duration::from_millis(100);
    let server = BatchServer::new(&session, max_wait).unwrap();
    assert_eq!(server.current_max_wait(), max_wait);

    // Light load: solo submits flush 1/4-full batches; the leader wait
    // decays toward zero so lone requests stop paying for company that
    // never comes.
    let sample = [0.5f32, 0.5, 0.5];
    for _ in 0..5 {
        let mut out = [0.0f32; 1];
        server.submit(&[&sample], &mut [&mut out]).unwrap();
    }
    let after_solo = server.current_max_wait();
    assert!(
        after_solo < max_wait / 2,
        "five 1/4-fill flushes must at least halve the wait (got {after_solo:?})"
    );

    // Heavy load: full batches pull the wait back up toward the bound.
    for _ in 0..3 {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let server = &server;
                scope.spawn(move || {
                    let mut out = [0.0f32; 1];
                    server
                        .submit(&[&[0.2f32, 0.4, 0.6]], &mut [&mut out])
                        .unwrap();
                });
            }
        });
    }
    let after_burst = server.current_max_wait();
    assert!(
        after_burst > after_solo,
        "fuller flushes must grow the wait back ({after_solo:?} -> {after_burst:?})"
    );
    assert!(after_burst <= max_wait);
}

#[test]
fn deadline_rejection_saturates_absurd_horizons() {
    // `Duration` can hold ~2^64 seconds; `as_nanos()` of such a value does
    // not fit u64. The rejection diagnostics must saturate, not truncate —
    // a truncated `flush_in_ns` would report a tiny horizon and mask why
    // the submit was shed.
    let dir = tmpdir("saturate");
    let model = dir.join("m.hml");
    save_mlp(&model, 13);
    let region = infer_region("saturate", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 4)
        .unwrap();
    // 2^40 seconds ≈ 1.1e21 ns: legal Duration, un-representable as u64 ns.
    let server = BatchServer::new(&session, Duration::from_secs(1 << 40)).unwrap();

    let sample = [0.1f32, 0.2, 0.3];
    std::thread::scope(|scope| {
        let leader = scope.spawn(|| {
            let mut out = [0.0f32; 1];
            server.submit(&[&sample], &mut [&mut out]).map(|()| out[0])
        });
        while server.pending() < 1 {
            std::thread::yield_now();
        }
        // Budget of 2^39 s is also beyond u64 ns, yet below the flush
        // horizon — both reported fields must pin at u64::MAX.
        let mut out = [0.0f32; 1];
        let err = server
            .submit_with_deadline(&[&sample], &mut [&mut out], Duration::from_secs(1 << 39))
            .unwrap_err();
        match err {
            CoreError::Serve(ServeError::Deadline {
                budget_ns,
                flush_in_ns,
                ..
            }) => {
                assert_eq!(budget_ns, u64::MAX, "budget must saturate, not wrap");
                assert_eq!(flush_in_ns, u64::MAX, "horizon must saturate, not wrap");
            }
            other => panic!("expected Deadline, got: {other}"),
        }
        // Release the leader parked on the absurd wait.
        server.drain();
        leader.join().unwrap().unwrap();
    });
    assert_eq!(region.stats().serve_rejected_deadline, 1);
}

#[test]
fn cold_server_adapts_after_first_flush() {
    // A cold server's EWMA must be *seeded* by the first observed fill,
    // not blended with the optimistic 1.0 prior — otherwise the first
    // several light-load submitters each pay most of `max_wait` while the
    // average walks down.
    let dir = tmpdir("coldstart");
    let model = dir.join("m.hml");
    save_mlp(&model, 17);
    let region = infer_region("coldstart", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 8)
        .unwrap();
    let max_wait = Duration::from_millis(100);
    let server = BatchServer::new(&session, max_wait).unwrap();

    // The very first submit still waits for company (no data yet).
    let sample = [0.5f32, 0.5, 0.5];
    let mut out = [0.0f32; 1];
    server.submit(&[&sample], &mut [&mut out]).unwrap();

    // One 1/8-fill flush seeds the EWMA at 0.125: the wait collapses to an
    // eighth of the bound. The old blend would leave it at ~0.78.
    let after_one = server.current_max_wait();
    assert!(
        after_one <= max_wait / 4,
        "one light flush must collapse the cold wait (got {after_one:?})"
    );

    // And the second solo submitter observes the collapsed wait directly.
    let t0 = std::time::Instant::now();
    server.submit(&[&sample], &mut [&mut out]).unwrap();
    let second = t0.elapsed();
    assert!(
        second < max_wait / 2,
        "second solo submit must not pay the cold-start wait (took {second:?})"
    );
}

#[test]
fn batch_failure_names_member_and_fill() {
    let dir = tmpdir("member");
    let model = dir.join("m.hml");
    save_mlp(&model, 9);
    let region = infer_region("member", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 2)
        .unwrap();
    // Force fallback with no handler installed: every flush fails, and the
    // fan-out must tell each member its own slot and the batch fill.
    region.force_fallback(true);
    let server = BatchServer::new(&session, Duration::from_secs(5)).unwrap();
    let mut members = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = [0.0f32; 1];
                    server.submit(&[&[0.1f32, 0.2, 0.3]], &mut [&mut out])
                })
            })
            .collect();
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            match err {
                CoreError::Serve(ServeError::Batch {
                    member, fill, msg, ..
                }) => {
                    assert_eq!(fill, 2);
                    assert!(msg.contains("fallback"), "unexpected message: {msg}");
                    members.push(member);
                }
                other => panic!("expected Batch, got: {other}"),
            }
        }
    });
    members.sort_unstable();
    assert_eq!(members, vec![0, 1], "each member gets its own slot index");
}

#[test]
fn shutdown_rejection_is_typed() {
    let dir = tmpdir("shutdown");
    let model = dir.join("m.hml");
    save_mlp(&model, 11);
    let region = infer_region("shutdown", &model);
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 2)
        .unwrap();
    let server = BatchServer::new(&session, Duration::ZERO).unwrap();
    server.shutdown();
    let mut out = [0.0f32; 1];
    let err = server
        .submit(&[&[0.0f32, 0.0, 0.0]], &mut [&mut out])
        .unwrap_err();
    assert!(matches!(err, CoreError::Serve(ServeError::ShutDown { .. })));
}

// ---------------------------------------------------------------------------
// Retry/backoff and db-error accounting
// ---------------------------------------------------------------------------

#[test]
fn db_flush_failure_retries_then_counts() {
    let dir = tmpdir("db-flush");
    let db = dir.join("sub").join("d.h5");
    let region = collect_region("dbflush", &db);
    let binds = Bindings::new().with("N", 1);
    collect_one(&region, &binds, &[0.1, 0.2, 0.3], 1.0);
    region.flush_db().unwrap();
    assert!(db.exists());
    let clean = region.stats();
    assert_eq!(clean.db_errors, 0);
    assert_eq!(clean.retry_attempts, 0);
    assert_eq!(clean.retry_giveups, 0);

    // Yank the directory out from under the store: the atomic-rename flush
    // can no longer create its temp file. Default policy = 3 attempts.
    std::fs::remove_dir_all(&dir).unwrap();
    let err = region.flush_db().unwrap_err();
    assert!(format!("{err}").contains("io"), "unexpected error: {err}");
    let s = region.stats();
    assert_eq!(s.db_errors, 1);
    assert_eq!(s.retry_attempts, 2, "3 attempts = 2 retries");
    assert_eq!(s.retry_giveups, 1);

    // Restoring the directory lets the same handle flush cleanly — the
    // collected rows were never lost, only unpersisted.
    std::fs::create_dir_all(db.parent().unwrap()).unwrap();
    region.flush_db().unwrap();
    assert!(db.exists());
    assert_eq!(region.stats().db_errors, 1, "recovered flush adds no error");
}

#[test]
fn retry_policy_none_fails_fast() {
    let dir = tmpdir("fail-fast");
    let db = dir.join("d.h5");
    let region = collect_region("failfast", &db);
    region.set_retry_policy(RetryPolicy::none());
    assert_eq!(region.retry_policy(), RetryPolicy::none());
    let binds = Bindings::new().with("N", 1);
    collect_one(&region, &binds, &[0.4, 0.5, 0.6], 2.0);
    std::fs::remove_dir_all(&dir).unwrap();
    region.flush_db().unwrap_err();
    let s = region.stats();
    assert_eq!(s.retry_attempts, 0, "none() never retries");
    assert_eq!(s.retry_giveups, 1);
    assert_eq!(s.db_errors, 1);
    // Leave the directory in place so the drop-time flush succeeds quietly.
    std::fs::create_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------------
// Degrade-to-host through the fallback controller
// ---------------------------------------------------------------------------

#[test]
fn missing_model_without_policy_still_errors() {
    let dir = tmpdir("no-policy");
    let region = infer_region("nopolicy", &dir.join("missing.hml"));
    region.set_retry_policy(RetryPolicy::none());
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    // No controller: nothing to recover through, so the error surfaces.
    assert!(session
        .invoke()
        .input("x", &[0.0f32; 3])
        .unwrap()
        .run(|| ())
        .is_err());
    let s = region.stats();
    assert_eq!(s.surrogate_errors, 1);
    assert!(s.retry_giveups >= 1);
}

#[test]
fn permanent_model_failure_degrades_session_to_host() {
    let dir = tmpdir("degrade-session");
    let model = dir.join("late.hml");
    let region = infer_region("degrade", &model);
    region.set_retry_policy(RetryPolicy::none());
    region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 1e9).with_sample_rate(1000))
        .unwrap();
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();

    // The model file does not exist: the pass fails permanently, the
    // invocation is served by the closure, and the controller trips.
    let mut y = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &[0.2f32, 0.4, 0.6])
        .unwrap()
        .run(|| y[0] = 5.0)
        .unwrap();
    out.output("y", &mut y).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y[0], 5.0, "host closure served the degraded invocation");
    assert!(!region.surrogate_active(), "controller tripped");

    // Subsequent invocations skip the broken surrogate up front: no new
    // surrogate error, served as ordinary fallbacks.
    let mut y2 = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", &[0.2f32, 0.4, 0.6])
        .unwrap()
        .run(|| y2[0] = 6.0)
        .unwrap();
    out.output("y", &mut y2).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y2[0], 6.0);

    let s = region.stats();
    assert_eq!(s.surrogate_errors, 1, "only the failing pass counts");
    assert_eq!(s.fallback_invocations, 2);
    assert_eq!(s.surrogate_invocations, 0);
}

#[test]
fn permanent_model_failure_degrades_one_shot_to_host() {
    let dir = tmpdir("degrade-oneshot");
    let region = infer_region("degrade1", &dir.join("missing.hml"));
    region.set_retry_policy(RetryPolicy::none());
    region
        .set_validation_policy(ValidationPolicy::new(ErrorMetric::Rmse, 1e9).with_sample_rate(1000))
        .unwrap();
    let binds = Bindings::new().with("N", 1);
    let mut y = [0.0f32; 1];
    let mut out = region
        .invoke(&binds)
        .input("x", &[0.1f32, 0.1, 0.1], &[3])
        .unwrap()
        .run(|| y[0] = 7.0)
        .unwrap();
    out.output("y", &mut y, &[1]).unwrap();
    assert_eq!(out.finish().unwrap(), PathTaken::Accurate);
    assert_eq!(y[0], 7.0);
    assert!(!region.surrogate_active());
    let s = region.stats();
    assert_eq!(s.surrogate_errors, 1);
    assert_eq!(s.fallback_invocations, 1);
}

#[test]
fn tripped_controller_recovers_when_the_model_appears() {
    let dir = tmpdir("recover");
    let model = dir.join("late.hml");
    let region = infer_region("recover", &model);
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::Rmse, 1e9)
                .with_sample_rate(1)
                .with_window(1),
        )
        .unwrap();
    let binds = Bindings::new().with("N", 1);
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    let invoke_host = |yv: f32| {
        let mut y = [0.0f32; 1];
        let mut out = session
            .invoke()
            .input("x", &[0.3f32, 0.6, 0.9])
            .unwrap()
            .run(|| y[0] = yv)
            .unwrap();
        out.output("y", &mut y).unwrap();
        (out.finish().unwrap(), y[0])
    };

    // Trip on the missing model.
    let (path, y) = invoke_host(1.0);
    assert_eq!((path, y), (PathTaken::Accurate, 1.0));
    assert!(!region.surrogate_active());

    // The model shows up (a deploy completes); recovery probes on drawn
    // fallback invocations walk the controller back to enabled.
    save_mlp(&model, 21);
    for i in 0..4 {
        if region.surrogate_active() {
            break;
        }
        let (path, _) = invoke_host(i as f32);
        assert_eq!(path, PathTaken::Accurate);
    }
    assert!(
        region.surrogate_active(),
        "probes re-enable once the model loads"
    );
    let s = region.stats();
    assert!(s.surrogate_reenables >= 1);

    // And the next invocation actually serves the surrogate.
    let (path, _) = invoke_host(f32::NAN);
    assert_eq!(path, PathTaken::Surrogate);
}
