//! Integration tests of reduced-precision serving through the compiled
//! Session path: `set_precision_policy` quantization + db calibration, the
//! validation-driven demotion ladder (int8 -> bf16 -> f32 -> host), and the
//! promotion path back toward the target once the error recovers.

use hpacml_core::{ErrorMetric, PathTaken, Precision, PrecisionPolicy, Region, ValidationPolicy};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_tensor::Tensor;
use std::path::PathBuf;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("hpacml-quant-ladder").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn save_mlp(path: &std::path::Path, seed: u64) {
    let spec = ModelSpec::mlp(3, &[8], 1, Activation::Tanh, 0.0);
    let mut model = spec.build(seed).unwrap();
    hpacml_nn::serialize::save_model(path, &spec, &mut model, None, None).unwrap();
}

/// Per-sample region: 3 features in, 1 value out, infer mode.
fn region_for(model: &std::path::Path, db: Option<&std::path::Path>) -> Region {
    let db_clause = db
        .map(|d| format!(" db(\"{}\")", d.display()))
        .unwrap_or_default();
    Region::from_source(
        "quant",
        &format!(
            r#"
            #pragma approx tensor functor(rows: [i, 0:3] = ([3*i : 3*i+3]))
            #pragma approx tensor functor(single: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: rows(x[0:N]))
            #pragma approx ml(infer) in(x) out(single(y[0:N])) model("{}"){db_clause}
            "#,
            model.display()
        ),
    )
    .unwrap()
}

fn sample(i: usize) -> [f32; 3] {
    [(i as f32 * 0.37).sin(), (i as f32 * 0.11).cos(), 0.5]
}

/// One session invocation whose accurate closure writes `host`; returns
/// (value left in the output buffer, path taken).
fn invoke_with_host(
    session: &hpacml_core::Session<'_>,
    x: &[f32; 3],
    host: f32,
) -> (f32, PathTaken) {
    let mut y = [0.0f32; 1];
    let mut out = session
        .invoke()
        .input("x", x)
        .unwrap()
        .run(|| y[0] = host)
        .unwrap();
    out.output("y", &mut y).unwrap();
    let path = out.finish().unwrap();
    (y[0], path)
}

/// The model's forward value for one sample at each serving precision,
/// computed directly on the `.hml` file the region serves.
fn model_values(model: &std::path::Path, x: &[f32; 3]) -> (f32, f32, f32) {
    let mut m = hpacml_nn::serialize::load_model(model).unwrap();
    m.quantize(Precision::Int8);
    let xt = Tensor::from_vec(x.to_vec(), [1usize, 3]).unwrap();
    let mut ws = hpacml_nn::InferWorkspace::new();
    let f = m
        .infer_with_at(&mut ws, &xt, Precision::F32)
        .unwrap()
        .data()[0];
    let b = m
        .infer_with_at(&mut ws, &xt, Precision::Bf16)
        .unwrap()
        .data()[0];
    let i = m
        .infer_with_at(&mut ws, &xt, Precision::Int8)
        .unwrap()
        .data()[0];
    (f, b, i)
}

#[test]
fn precision_policy_quantizes_and_calibrates_from_db_rows() {
    let dir = tmpdir("calibrate");
    let model = dir.join("m.hml");
    let db = dir.join("d.h5");
    save_mlp(&model, 21);
    let region = region_for(&model, Some(&db));
    let binds = Bindings::new().with("N", 1);

    // Collect input rows the accurate way (use_surrogate(false) records).
    {
        let session = region
            .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
            .unwrap();
        for i in 0..6 {
            let mut y = [0.0f32; 1];
            let mut out = session
                .invoke()
                .use_surrogate(false)
                .input("x", &sample(i))
                .unwrap()
                .run(|| y[0] = 1.0)
                .unwrap();
            out.output("y", &mut y).unwrap();
            out.finish().unwrap();
        }
    }

    assert_eq!(region.serve_precision(), Precision::F32);
    let report = region
        .set_precision_policy(&PrecisionPolicy::int8().with_max_calib_rows(4))
        .unwrap();
    assert_eq!(report.target, Precision::Int8);
    assert_eq!(report.quantized_layers, 2, "both Linear layers quantized");
    assert_eq!(report.calib_rows, 4, "capped at max_calib_rows");
    assert_eq!(report.calib_errors.len(), 2, "int8 and bf16 rungs scored");
    let (p0, e0) = report.calib_errors[0];
    let (p1, e1) = report.calib_errors[1];
    assert_eq!((p0, p1), (Precision::Int8, Precision::Bf16));
    assert!(e0.is_finite() && e1.is_finite());
    assert!(e1 <= e0, "bf16 calibration error is at most the int8 error");
    assert_eq!(region.serve_precision(), Precision::Int8);
    assert_eq!(region.precision_report().unwrap().calib_rows, 4);

    // A session built after the policy serves the quantized model: its
    // output is bit-identical to the direct int8 forward.
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();
    let (_, _, int8) = model_values(&model, &sample(0));
    let (y, path) = invoke_with_host(&session, &sample(0), 0.0);
    assert_eq!(path, PathTaken::Surrogate);
    assert_eq!(y, int8, "session serves the int8 rung bit-for-bit");
}

#[test]
fn precision_policy_without_db_still_quantizes() {
    let dir = tmpdir("no-db");
    let model = dir.join("m.hml");
    save_mlp(&model, 23);
    let region = region_for(&model, None);
    let report = region
        .set_precision_policy(&PrecisionPolicy::bf16())
        .unwrap();
    assert_eq!(report.target, Precision::Bf16);
    assert_eq!(report.quantized_layers, 2);
    assert_eq!(report.calib_rows, 0, "no db: nothing to calibrate on");
    assert!(report.calib_errors.is_empty());
    assert_eq!(region.serve_precision(), Precision::Bf16);

    // An F32 policy reverts to full-precision serving.
    let report = region
        .set_precision_policy(&PrecisionPolicy::f32())
        .unwrap();
    assert_eq!(report.quantized_layers, 0);
    assert_eq!(region.serve_precision(), Precision::F32);
}

#[test]
fn over_budget_int8_demotes_within_window_then_heals() {
    let dir = tmpdir("ladder");
    let model = dir.join("m.hml");
    save_mlp(&model, 25);
    let region = region_for(&model, None);
    let binds = Bindings::new().with("N", 1);

    // Quantization error is signed and can cancel, so pick a sample where
    // the int8 rung demonstrably deviates more than the bf16 rung.
    let (x, f32_val, bf16_val, int8_val) = (0..64)
        .map(|i| {
            let x = sample(i);
            let (f, b, q) = model_values(&model, &x);
            (x, f, b, q)
        })
        .find(|&(_, f, b, q)| {
            let (be, qe) = ((b - f).abs() as f64, (q - f).abs() as f64);
            qe > 1.5 * be && qe > 1e-6
        })
        .expect("some sample separates the int8 and bf16 rungs");
    let bf16_err = (bf16_val - f32_val).abs() as f64;
    let int8_err = (int8_val - f32_val).abs() as f64;
    // A budget between the two rungs' deviations: with the host closure
    // writing the f32 truth, int8 serving is over budget, bf16 is not.
    let budget = (bf16_err + int8_err) / 2.0;

    region
        .set_precision_policy(&PrecisionPolicy::int8())
        .unwrap();
    region
        .set_validation_policy(
            ValidationPolicy::new(ErrorMetric::MaxAbs, budget)
                .with_sample_rate(1)
                .with_window(1),
        )
        .unwrap();
    let session = region
        .session(&binds, &[("x", &[3]), ("y", &[1])], 1)
        .unwrap();

    // 1: int8 serves, error over budget -> demoted to bf16 at finish().
    let (y, path) = invoke_with_host(&session, &x, f32_val);
    assert_eq!(path, PathTaken::Surrogate);
    assert_eq!(y, int8_val, "the over-budget pass itself served int8");
    assert_eq!(region.serve_precision(), Precision::Bf16);
    assert!(region.surrogate_active(), "demotion is not a disable");
    assert_eq!(region.stats().precision_demotes, 1);
    assert_eq!(region.stats().surrogate_disables, 0);

    // 2-3: bf16 serves within budget; a doubled window (2 stable
    // observations) promotes back toward the int8 target.
    let (y, _) = invoke_with_host(&session, &x, f32_val);
    assert_eq!(y, bf16_val, "demoted rung serves bf16 bit-for-bit");
    assert_eq!(region.serve_precision(), Precision::Bf16);
    let (_, _) = invoke_with_host(&session, &x, f32_val);
    assert_eq!(region.serve_precision(), Precision::Int8);
    assert_eq!(region.stats().precision_promotes, 1);

    // 4: int8 is still over budget -> demoted again. The controller never
    // serves an over-budget rung past its window.
    let (_, _) = invoke_with_host(&session, &x, f32_val);
    assert_eq!(region.serve_precision(), Precision::Bf16);
    assert_eq!(region.stats().precision_demotes, 2);

    // 5-6: a hard drift (host far from every rung) walks the remaining
    // ladder: bf16 -> f32, then f32 over budget -> surrogate disabled.
    let (_, _) = invoke_with_host(&session, &x, f32_val + 1000.0);
    assert_eq!(region.serve_precision(), Precision::F32);
    assert_eq!(region.stats().precision_demotes, 3);
    assert!(region.surrogate_active());
    let (_, _) = invoke_with_host(&session, &x, f32_val + 1000.0);
    assert!(!region.surrogate_active(), "f32 over budget disables");
    assert_eq!(region.stats().surrogate_disables, 1);

    // 7: fallback serves the host; the recovery probe (error 0 at f32)
    // clears the window-1 cooldown and re-enables on the finest rung.
    let (y, path) = invoke_with_host(&session, &x, 42.0_f32);
    assert_eq!(path, PathTaken::Accurate);
    assert_eq!(y, 42.0, "fallback leaves the host result untouched");
    // The probe compared the f32 surrogate against host=42: err > budget,
    // so the window stays bad; feed clean probes until it re-enables.
    let mut probes = 0;
    while !region.surrogate_active() {
        let (_, path) = invoke_with_host(&session, &x, f32_val);
        assert_eq!(path, PathTaken::Accurate);
        probes += 1;
        assert!(probes < 10, "clean probes must re-enable the surrogate");
    }
    assert_eq!(region.stats().surrogate_reenables, 1);
    assert_eq!(
        region.serve_precision(),
        Precision::F32,
        "re-enable lands on the finest rung"
    );

    // 8+: healthy f32 service promotes back down the ladder, one rung per
    // doubled window, eventually reaching the int8 target again.
    let mut steps = 0;
    while region.serve_precision() != Precision::Int8 {
        let (_, path) = invoke_with_host(&session, &x, f32_val);
        assert_eq!(path, PathTaken::Surrogate);
        steps += 1;
        assert!(steps < 20, "healthy service must heal back to the target");
    }
    assert!(region.stats().precision_promotes >= 3);
}
