//! Property tests of the validation fallback controller's hysteresis: for
//! random error sequences the surrogate is disabled **iff** the rolling
//! metric exceeded the budget, and a re-enable never oscillates within one
//! window of the disable (the hysteresis span), only firing once the
//! rolling metric — by then composed entirely of post-disable probes — is
//! back within budget.

use hpacml_core::FallbackController;
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full transition-rule conformance against an independently tracked
    /// rolling window, for random budgets, window lengths and error
    /// sequences.
    #[test]
    fn controller_hysteresis_invariants(
        budget in 0.05f64..1.0,
        window in 1usize..6,
        errs in proptest::collection::vec(0.0f64..2.0, 1..200),
    ) {
        let mut c = FallbackController::new(budget, window);
        let mut win: VecDeque<f64> = VecDeque::new();
        // Observations since the most recent disable (None while enabled).
        let mut since_disable: Option<usize> = None;
        let mut disables = 0u64;
        let mut reenables = 0u64;
        for (t, &e) in errs.iter().enumerate() {
            let before = c.enabled();
            let after = c.observe(e);
            if win.len() == window {
                win.pop_front();
            }
            win.push_back(e);
            let rolling = win.iter().sum::<f64>() / win.len() as f64;
            prop_assert!(
                (c.rolling() - rolling).abs() < 1e-9,
                "rolling mismatch at step {t}: {} vs {rolling}",
                c.rolling()
            );
            if before {
                // Disabled exactly when the rolling metric exceeds budget.
                prop_assert_eq!(
                    !after,
                    rolling > budget,
                    "step {}: enabled controller must disable iff rolling {} > budget {}",
                    t, rolling, budget
                );
                if !after {
                    since_disable = Some(0);
                    disables += 1;
                }
            } else {
                let since = since_disable.as_mut().expect("disabled implies a past disable");
                *since += 1;
                if after {
                    // Re-enable never fires within one window of the
                    // disable, and only with the window back under budget.
                    prop_assert!(
                        *since >= window,
                        "step {t}: re-enabled after only {since} probes (window {window})"
                    );
                    prop_assert!(
                        rolling <= budget,
                        "step {t}: re-enabled with rolling {rolling} over budget {budget}"
                    );
                    since_disable = None;
                    reenables += 1;
                } else {
                    // ...and conversely: once the hysteresis has elapsed and
                    // the window has recovered, it must re-enable.
                    prop_assert!(
                        *since < window || rolling > budget,
                        "step {t}: stayed disabled with {since} probes and rolling {rolling} \
                         <= budget {budget}"
                    );
                }
            }
            prop_assert_eq!(c.transitions(), (disables, reenables));
        }
    }

    /// Error streams that never approach the budget never disable the
    /// surrogate — validation must be free when the model is good.
    #[test]
    fn in_budget_streams_never_disable(
        budget in 0.5f64..1.0,
        window in 1usize..8,
        errs in proptest::collection::vec(0.0f64..0.45, 1..150),
    ) {
        let mut c = FallbackController::new(budget, window);
        for &e in &errs {
            prop_assert!(c.observe(e), "disabled by an in-budget error {e}");
        }
        prop_assert_eq!(c.transitions(), (0, 0));
    }

    /// A drift-then-recover stream always ends with the surrogate re-enabled
    /// and exactly one disable/re-enable pair: the controller neither sticks
    /// nor oscillates.
    #[test]
    fn drift_then_recovery_converges(
        budget in 0.1f64..1.0,
        window in 1usize..6,
        drift_len in 1usize..10,
    ) {
        let mut c = FallbackController::new(budget, window);
        for _ in 0..drift_len {
            c.observe(budget * 3.0);
        }
        prop_assert!(!c.enabled(), "sustained drift must disable");
        // A generous recovery run: the hysteresis window plus the window
        // length again to flush the drift out of the rolling metric.
        for _ in 0..2 * window + 1 {
            c.observe(0.0);
        }
        prop_assert!(c.enabled(), "clean probes must re-enable");
        prop_assert_eq!(c.transitions(), (1, 1));
    }
}
