//! Online accuracy validation and adaptive surrogate fallback.
//!
//! HPAC-ML's usefulness rests on the *accuracy–speedup tradeoff*: a surrogate
//! is only deployable if the application can quantify its error **at
//! runtime** and fall back to the original code when the model drifts. This
//! module is that runtime loop:
//!
//! 1. A [`ValidationPolicy`] attached to a region
//!    ([`Region::set_validation_policy`]) selects 1 in `sample_rate` region
//!    invocations for **shadow validation**: the original host code runs *in
//!    addition to* the surrogate, the declared outputs of both are compared
//!    under the policy's [`ErrorMetric`], and for a batched invocation up to
//!    `batch_samples` samples of the flushed batch are validated.
//! 2. Every validated sample's error feeds a per-region
//!    [`FallbackController`] — a rolling window with hysteresis. When the
//!    rolling error exceeds `error_budget` the surrogate is **disabled**:
//!    subsequent invocations run the original host code, bit-identical to an
//!    un-annotated application. While disabled, sampled invocations *probe*
//!    the surrogate in shadow; once a full window of probes is back under
//!    budget, the surrogate re-enables.
//! 3. Each validated sample appends a `(invocation, metric, error)` row to
//!    the region's database (group `<region>/validation`), so drift is
//!    observable offline, and the [`RegionStats`](crate::RegionStats)
//!    counters (`validated_invocations`, `fallback_invocations`,
//!    `surrogate_disables`, `surrogate_reenables`, `validation_shadow_ns`)
//!    make it observable online.
//!
//! Shadow overhead is proportional to the sample rate: invocations not
//! drawn for validation pay one short lock of the policy slot, one atomic
//! sequence increment and one relaxed flag read — measured at 1-3% of a
//! compiled-session invocation (the `validate.*` keys of
//! `BENCH_inference.json`). Fallback-served invocations do **not** record
//! data-collection rows: they run the host code for safety, not to build a
//! training set.
//!
//! ```no_run
//! use hpacml_core::{ErrorMetric, Region, ValidationPolicy};
//!
//! # fn main() -> hpacml_core::Result<()> {
//! # let region = Region::from_source("r", "")?;
//! // Validate 1 in 16 invocations under RMSE; disable the surrogate when
//! // the rolling error over the last 8 validated samples exceeds 0.05.
//! let policy = ValidationPolicy::new(ErrorMetric::Rmse, 0.05)
//!     .with_sample_rate(16)
//!     .with_window(8);
//! region.set_validation_policy(policy)?;
//! // ... invoke sessions as usual; fallback now engages automatically.
//! assert!(region.surrogate_active());
//! # Ok(())
//! # }
//! ```

use crate::region::Region;
use crate::{CoreError, Result};
use hpacml_tensor::Precision;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// How surrogate outputs are scored against the shadow-executed host code.
/// The score of one validated sample aggregates every element of every
/// declared output array of that sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMetric {
    /// Root mean squared error (the paper's metric for Binomial, Bonds,
    /// MiniWeather, ParticleFilter).
    Rmse,
    /// Mean absolute percentage error, in percent; reference elements with
    /// magnitude below `1e-12` are skipped (MiniBUDE's metric).
    Mape,
    /// Largest absolute element-wise deviation.
    MaxAbs,
}

impl ErrorMetric {
    /// Human-readable name (matches `Benchmark::qoi_metric` spellings).
    pub fn name(&self) -> &'static str {
        match self {
            ErrorMetric::Rmse => "RMSE",
            ErrorMetric::Mape => "MAPE",
            ErrorMetric::MaxAbs => "MaxAbs",
        }
    }

    /// Stable numeric code used for the `metric` column of recorded
    /// validation rows.
    pub fn code(&self) -> u32 {
        match self {
            ErrorMetric::Rmse => 0,
            ErrorMetric::Mape => 1,
            ErrorMetric::MaxAbs => 2,
        }
    }
}

/// Per-region validation knobs. See the [module docs](self) for the loop
/// they drive.
///
/// ```
/// use hpacml_core::{ErrorMetric, ValidationPolicy};
///
/// let p = ValidationPolicy::new(ErrorMetric::Mape, 2.5)
///     .with_sample_rate(32)   // shadow-validate 1 in 32 invocations
///     .with_batch_samples(8)  // compare <= 8 samples of a validated batch
///     .with_window(16);       // rolling window / hysteresis span
/// assert_eq!(p.sample_rate, 32);
/// assert_eq!(p.metric.name(), "MAPE");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationPolicy {
    /// Shadow-validate 1 in `sample_rate` region invocations (a batched
    /// `invoke_batch(n)` counts as **one** invocation here — overhead is
    /// proportional to the rate, not the batch size). Must be >= 1;
    /// `1` validates every invocation.
    pub sample_rate: u32,
    /// Error metric for scoring validated samples.
    pub metric: ErrorMetric,
    /// Rolling-error threshold: when the mean error of the last `window`
    /// validated samples exceeds this, the surrogate is disabled. Must be
    /// finite and non-negative.
    pub error_budget: f64,
    /// Rolling-window length, in validated samples. Doubles as the
    /// hysteresis span: after a disable, re-enabling requires at least
    /// `window` fresh probe observations (so the decision is made entirely
    /// from post-disable evidence). Must be >= 1.
    pub window: usize,
    /// Upper bound on how many samples of one validated *batched*
    /// invocation are compared (evenly spaced across the batch). `0` means
    /// all of them.
    pub batch_samples: usize,
}

impl ValidationPolicy {
    /// A policy with the default rate (1/16), window (8) and batch sample
    /// cap (4).
    pub fn new(metric: ErrorMetric, error_budget: f64) -> Self {
        ValidationPolicy {
            sample_rate: 16,
            metric,
            error_budget,
            window: 8,
            batch_samples: 4,
        }
    }

    /// Validate 1 in `rate` invocations.
    pub fn with_sample_rate(mut self, rate: u32) -> Self {
        self.sample_rate = rate;
        self
    }

    /// Rolling window / hysteresis span, in validated samples.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Compare at most `k` samples of a validated batch (`0` = all).
    pub fn with_batch_samples(mut self, k: usize) -> Self {
        self.batch_samples = k;
        self
    }

    /// Check the knobs are in-range (called by
    /// [`Region::set_validation_policy`]).
    pub fn validate(&self) -> Result<()> {
        if self.sample_rate == 0 {
            return Err(CoreError::Region(
                "validation policy: sample_rate must be >= 1".into(),
            ));
        }
        if self.window == 0 {
            return Err(CoreError::Region(
                "validation policy: window must be >= 1".into(),
            ));
        }
        if !self.error_budget.is_finite() || self.error_budget < 0.0 {
            return Err(CoreError::Region(format!(
                "validation policy: error_budget must be finite and >= 0 (got {})",
                self.error_budget
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Controller
// ---------------------------------------------------------------------------

/// Rolling-window fallback controller with hysteresis. Pure state machine —
/// no clocks, no I/O — so its transition rules are property-testable in
/// isolation (see `tests/prop_validate.rs`).
///
/// Rules, per observed error:
///
/// * **Disable** exactly when the surrogate is enabled, the rolling mean
///   of the last `window` observations exceeds `budget`, and there is no
///   finer precision rung left to demote to.
/// * **Re-enable** only when the surrogate is disabled, at least `window`
///   observations have arrived since the disable (the hysteresis span, so
///   the rolling mean consists entirely of post-disable probes), and that
///   rolling mean is back within budget. Re-enabling therefore never
///   oscillates within one window of a disable.
///
/// With a **precision ladder** installed ([`FallbackController::with_ladder`],
/// rungs ordered coarsest first, e.g. `[Int8, Bf16, F32]`), an over-budget
/// window first **demotes** one rung toward full precision — clearing the
/// window so the finer rung is judged on its own evidence — and only an
/// over-budget window on the *last* rung disables the surrogate outright.
/// Symmetrically, `2 * window` consecutive under-budget observations
/// **promote** one rung back toward the coarse target (the same doubled-span
/// hysteresis that keeps disable/re-enable from oscillating). A re-enable
/// after a full disable lands on the last (finest) rung and heals downward
/// from there.
///
/// ```
/// use hpacml_core::FallbackController;
///
/// let mut c = FallbackController::new(1.0, 2);
/// assert!(c.observe(0.5)); // under budget: stays enabled
/// assert!(!c.observe(4.0)); // rolling mean 2.25 > 1.0: disabled
/// c.observe(0.0); // probe 1 of the hysteresis window
/// assert!(!c.enabled()); // still cooling down
/// assert!(c.observe(0.0)); // window of good probes: re-enabled
/// ```
#[derive(Debug, Clone)]
pub struct FallbackController {
    budget: f64,
    window: usize,
    errors: VecDeque<f64>,
    enabled: bool,
    /// Observations remaining before a re-enable may be considered.
    cooldown: usize,
    disables: u64,
    reenables: u64,
    /// Serving-precision rungs, coarsest (cheapest) first. Empty = no
    /// precision management (the pre-ladder disable/re-enable behavior).
    ladder: Vec<Precision>,
    /// Index of the rung currently served.
    rung: usize,
    /// Consecutive under-budget observations at the current rung (promotion
    /// hysteresis counter).
    stable: usize,
    demotes: u64,
    promotes: u64,
}

impl FallbackController {
    pub fn new(budget: f64, window: usize) -> Self {
        FallbackController {
            budget,
            window: window.max(1),
            errors: VecDeque::with_capacity(window.max(1)),
            enabled: true,
            cooldown: 0,
            disables: 0,
            reenables: 0,
            ladder: Vec::new(),
            rung: 0,
            stable: 0,
            demotes: 0,
            promotes: 0,
        }
    }

    /// Install a serving-precision ladder, coarsest rung first. See the
    /// type docs for the demotion/promotion rules.
    pub fn with_ladder(mut self, ladder: Vec<Precision>) -> Self {
        self.set_ladder(ladder);
        self
    }

    /// Replace the ladder and restart at its coarsest rung with a fresh
    /// window.
    pub fn set_ladder(&mut self, ladder: Vec<Precision>) {
        self.ladder = ladder;
        self.rung = 0;
        self.stable = 0;
        self.errors.clear();
    }

    /// The canonical ladder for a quantization target: every rung from the
    /// target up to full precision, or no ladder at all for an `F32` target.
    pub fn ladder_for(target: Precision) -> Vec<Precision> {
        match target {
            Precision::Int8 => vec![Precision::Int8, Precision::Bf16, Precision::F32],
            Precision::Bf16 => vec![Precision::Bf16, Precision::F32],
            Precision::F32 => Vec::new(),
        }
    }

    /// Whether the surrogate is currently allowed.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The precision rung currently served, when a ladder is installed.
    pub fn precision(&self) -> Option<Precision> {
        self.ladder.get(self.rung).copied()
    }

    /// Index of the current rung (0 = coarsest).
    pub fn rung(&self) -> usize {
        self.rung
    }

    /// Lifetime demote / promote transition counts.
    pub fn precision_transitions(&self) -> (u64, u64) {
        (self.demotes, self.promotes)
    }

    /// Mean error over the current window (0 when nothing observed yet).
    pub fn rolling(&self) -> f64 {
        if self.errors.is_empty() {
            return 0.0;
        }
        self.errors.iter().sum::<f64>() / self.errors.len() as f64
    }

    /// Lifetime disable / re-enable transition counts.
    pub fn transitions(&self) -> (u64, u64) {
        (self.disables, self.reenables)
    }

    /// Force an immediate disable — surrogate *infrastructure* failure
    /// (model load or forward pass errored permanently) rather than accuracy
    /// drift. Recovery follows the normal path: a cooldown window, then
    /// under-budget shadow probes re-enable.
    pub fn trip(&mut self) {
        if self.enabled {
            self.enabled = false;
            self.disables += 1;
        }
        self.stable = 0;
        self.cooldown = self.window;
    }

    /// Feed one validated-sample error; returns whether the surrogate is
    /// enabled afterwards. NaN errors are treated as infinitely bad.
    pub fn observe(&mut self, error: f64) -> bool {
        let error = if error.is_nan() { f64::INFINITY } else { error };
        if self.errors.len() == self.window {
            self.errors.pop_front();
        }
        self.errors.push_back(error);
        let rolling = self.rolling();
        if self.enabled {
            if rolling > self.budget {
                self.stable = 0;
                if self.rung + 1 < self.ladder.len() {
                    // Demote one rung toward full precision; the finer rung
                    // is judged on its own evidence, not the coarse rung's
                    // over-budget window.
                    self.rung += 1;
                    self.demotes += 1;
                    self.errors.clear();
                } else {
                    self.enabled = false;
                    self.disables += 1;
                    self.cooldown = self.window;
                }
            } else {
                self.stable += 1;
                if self.rung > 0 && self.stable >= 2 * self.window {
                    // A doubled window of healthy observations: promote one
                    // rung back toward the coarse target.
                    self.rung -= 1;
                    self.promotes += 1;
                    self.stable = 0;
                    self.errors.clear();
                }
            }
        } else {
            self.stable = 0;
            if self.cooldown > 0 {
                self.cooldown -= 1;
            }
            if self.cooldown == 0 && rolling <= self.budget {
                self.enabled = true;
                self.reenables += 1;
            }
        }
        self.enabled
    }
}

// ---------------------------------------------------------------------------
// Per-region shared state
// ---------------------------------------------------------------------------

/// A disable / re-enable / precision transition reported by one observation.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Transition {
    pub disabled: bool,
    pub reenabled: bool,
    /// The controller moved one rung toward full precision.
    pub demoted: bool,
    /// The controller moved one rung back toward the coarse target.
    pub promoted: bool,
}

/// The region-attached validation state: the immutable policy, the sampling
/// sequence, and the controller behind a mutex with its `enabled` bit
/// mirrored into an atomic for lock-free reads on the invoke hot path.
#[derive(Debug)]
pub(crate) struct RegionValidation {
    policy: ValidationPolicy,
    /// Region-invocation sequence number driving deterministic sampling.
    seq: AtomicU64,
    /// Mirror of `controller.enabled()` for lock-free gating.
    enabled: AtomicBool,
    controller: Mutex<FallbackController>,
}

impl RegionValidation {
    pub(crate) fn new(policy: ValidationPolicy) -> Self {
        RegionValidation {
            seq: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            controller: Mutex::new(FallbackController::new(policy.error_budget, policy.window)),
            policy,
        }
    }

    pub(crate) fn policy(&self) -> &ValidationPolicy {
        &self.policy
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn rolling(&self) -> f64 {
        self.controller.lock().rolling()
    }

    /// Current precision rung, when the controller has a ladder.
    pub(crate) fn precision(&self) -> Option<Precision> {
        self.controller.lock().precision()
    }

    /// Install (or replace) the controller's precision ladder; it restarts
    /// at the coarsest rung with a fresh window.
    pub(crate) fn install_ladder(&self, ladder: Vec<Precision>) {
        self.controller.lock().set_ladder(ladder);
    }

    /// Claim the next invocation sequence number and decide whether this
    /// invocation (a flush of `n` logical samples) is shadow-validated. On a
    /// draw, fills `offsets` with the in-batch sample indices to compare
    /// (up to `batch_samples`, evenly spaced) and returns the sequence
    /// number; otherwise leaves `offsets` empty.
    pub(crate) fn draw(&self, n: usize, offsets: &mut Vec<usize>) -> u64 {
        offsets.clear();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        if !seq.is_multiple_of(self.policy.sample_rate as u64) || n == 0 {
            return seq;
        }
        let k = match self.policy.batch_samples {
            0 => n,
            cap => cap.min(n),
        };
        // Evenly spaced across the batch, first sample always included —
        // deterministic for a given (seq, n).
        for i in 0..k {
            offsets.push(i * n / k);
        }
        offsets.dedup();
        seq
    }

    /// Force-disable the surrogate after an infrastructure failure (see
    /// [`FallbackController::trip`]) and refresh the lock-free mirror.
    pub(crate) fn trip(&self) {
        self.controller.lock().trip();
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Feed one validated-sample error into the controller, refresh the
    /// lock-free mirror, and report any transition.
    pub(crate) fn observe(&self, error: f64) -> Transition {
        let mut c = self.controller.lock();
        let before = c.enabled();
        let rung_before = c.rung();
        let after = c.observe(error);
        let rung_after = c.rung();
        self.enabled.store(after, Ordering::Relaxed);
        Transition {
            disabled: before && !after,
            reenabled: !before && after,
            demoted: rung_after > rung_before,
            promoted: rung_after < rung_before,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-sample error accumulation
// ---------------------------------------------------------------------------

/// Accumulates one validated sample's error across every declared output
/// array, under a fixed metric. Shared by the session shadow path and the
/// `BatchServer` shadow/probe paths.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SampleError {
    metric: ErrorMetric,
    acc: f64,
    count: usize,
}

impl SampleError {
    pub(crate) fn new(metric: ErrorMetric) -> Self {
        SampleError {
            metric,
            acc: 0.0,
            count: 0,
        }
    }

    /// Fold in one output array's elements: `reference` is the shadow-run
    /// host result, `approx` the surrogate result.
    pub(crate) fn update(&mut self, reference: &[f32], approx: &[f32]) {
        debug_assert_eq!(reference.len(), approx.len());
        match self.metric {
            ErrorMetric::Rmse => {
                for (r, a) in reference.iter().zip(approx) {
                    let d = (*r - *a) as f64;
                    self.acc += d * d;
                    self.count += 1;
                }
            }
            ErrorMetric::Mape => {
                for (r, a) in reference.iter().zip(approx) {
                    if r.abs() > 1e-12 {
                        self.acc += ((*r - *a) / *r).abs() as f64;
                        self.count += 1;
                    }
                }
            }
            ErrorMetric::MaxAbs => {
                for (r, a) in reference.iter().zip(approx) {
                    self.acc = self.acc.max((*r - *a).abs() as f64);
                }
                self.count += reference.len();
            }
        }
    }

    /// Whether any elements were actually compared. A drawn invocation
    /// whose caller never supplied this output (or whose MAPE references
    /// were all ~0) must not report a fabricated zero error.
    pub(crate) fn compared(&self) -> bool {
        self.count > 0
    }

    /// The sample's scalar error under the metric.
    pub(crate) fn finalize(&self) -> f64 {
        match self.metric {
            ErrorMetric::Rmse => {
                if self.count == 0 {
                    0.0
                } else {
                    (self.acc / self.count as f64).sqrt()
                }
            }
            ErrorMetric::Mape => {
                if self.count == 0 {
                    0.0
                } else {
                    100.0 * self.acc / self.count as f64
                }
            }
            ErrorMetric::MaxAbs => self.acc,
        }
    }
}

// ---------------------------------------------------------------------------
// Region surface
// ---------------------------------------------------------------------------

impl Region {
    /// Attach (or replace) this region's online-validation policy. From now
    /// on 1 in `policy.sample_rate` invocations shadow-executes the original
    /// host code, scores the surrogate against it, and the rolling error
    /// drives adaptive fallback. See the [`validate`](crate::validate)
    /// module docs.
    pub fn set_validation_policy(&self, policy: ValidationPolicy) -> Result<()> {
        policy.validate()?;
        let v = Arc::new(RegionValidation::new(policy));
        // A precision policy attached earlier hands its demotion ladder to
        // the fresh controller, so validation immediately gates the
        // quantized serving precision too.
        if let Some(target) = self.precision_target() {
            let ladder = FallbackController::ladder_for(target);
            if !ladder.is_empty() {
                v.install_ladder(ladder);
            }
        }
        *self.validation_slot().lock() = Some(v);
        Ok(())
    }

    /// Remove the validation policy (shadow sampling and adaptive fallback
    /// stop; a forced fallback is unaffected).
    pub fn clear_validation_policy(&self) {
        *self.validation_slot().lock() = None;
    }

    /// The currently attached policy, if any.
    pub fn validation_policy(&self) -> Option<ValidationPolicy> {
        self.validation_slot().lock().as_ref().map(|v| v.policy)
    }

    /// Rolling validation error (mean over the controller window), if a
    /// policy is attached and at least one sample was validated.
    pub fn validation_rolling_error(&self) -> Option<f64> {
        self.validation_slot().lock().as_ref().map(|v| v.rolling())
    }

    /// Operator override: force every invocation onto the original host
    /// code, regardless of ml mode, `use_surrogate(...)` or the adaptive
    /// controller. The forced path is bit-identical to running the host
    /// code with no region annotations; the model is never resolved.
    pub fn force_fallback(&self, on: bool) {
        self.forced_fallback_flag().store(on, Ordering::Relaxed);
    }

    /// Whether [`Region::force_fallback`] is currently engaged.
    pub fn fallback_forced(&self) -> bool {
        self.forced_fallback_flag().load(Ordering::Relaxed)
    }

    /// Whether the surrogate path is currently allowed: no forced fallback
    /// and the adaptive controller (if a policy is attached) is within
    /// budget.
    pub fn surrogate_active(&self) -> bool {
        !self.fallback_forced()
            && self
                .validation_slot()
                .lock()
                .as_ref()
                .is_none_or(|v| v.enabled())
    }

    pub(crate) fn validation(&self) -> Option<Arc<RegionValidation>> {
        self.validation_slot().lock().clone()
    }

    /// A surrogate pass (model resolution or forward) failed permanently
    /// after retries. Counts it; when a validation policy is attached, trips
    /// the adaptive controller so subsequent invocations serve the host code
    /// until the normal cooldown/probe path recovers, and returns `true` —
    /// the caller then degrades the failed invocation to its accurate
    /// closure. Without a controller there is no fallback machinery to
    /// recover through, so the error surfaces (`false`).
    pub(crate) fn note_surrogate_failure(&self, err: &crate::CoreError) -> bool {
        self.update_stats(|s| s.surrogate_errors += 1);
        match self.validation() {
            Some(v) => {
                v.trip();
                eprintln!(
                    "hpacml-core: region `{}`: surrogate pass failed ({err}); \
                     falling back to host code until the controller recovers",
                    self.name()
                );
                true
            }
            None => false,
        }
    }

    /// Feed a batch of validated-sample errors into the controller, fold
    /// the transitions and shadow time into the region stats, and append
    /// one `(invocation, metric, error)` row per sample to the region's
    /// database (group `<region>/validation`) when one is attached.
    pub(crate) fn observe_validation(
        &self,
        v: &RegionValidation,
        seq: u64,
        errors: &[f64],
        shadow_ns: u64,
    ) -> Result<()> {
        let mut disables = 0u64;
        let mut reenables = 0u64;
        let mut demotes = 0u64;
        let mut promotes = 0u64;
        for &err in errors {
            let t = v.observe(err);
            disables += t.disabled as u64;
            reenables += t.reenabled as u64;
            demotes += t.demoted as u64;
            promotes += t.promoted as u64;
        }
        // Keep the region's lock-free serving-precision mirror in step with
        // the controller's rung, so the next surrogate pass runs at the
        // (possibly demoted or healed) precision.
        if let Some(p) = v.precision() {
            self.set_serve_precision(p);
        }
        self.update_stats(|s| {
            s.validated_invocations += errors.len() as u64;
            s.surrogate_disables += disables;
            s.surrogate_reenables += reenables;
            s.precision_demotes += demotes;
            s.precision_promotes += promotes;
            s.validation_shadow_ns += shadow_ns;
        });
        self.record_validation_rows(seq, v.policy().metric, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_validation_rejects_bad_knobs() {
        let good = ValidationPolicy::new(ErrorMetric::Rmse, 0.1);
        assert!(good.validate().is_ok());
        assert!(good.with_sample_rate(0).validate().is_err());
        assert!(good.with_window(0).validate().is_err());
        assert!(ValidationPolicy::new(ErrorMetric::Rmse, f64::NAN)
            .validate()
            .is_err());
        assert!(ValidationPolicy::new(ErrorMetric::Rmse, -1.0)
            .validate()
            .is_err());
    }

    #[test]
    fn controller_disables_and_recovers_with_hysteresis() {
        let mut c = FallbackController::new(0.5, 3);
        assert!(c.observe(0.1));
        assert!(c.observe(0.2));
        assert!(c.enabled());
        // Rolling mean (0.1 + 0.2 + 3.0) / 3 > 0.5: disable.
        assert!(!c.observe(3.0));
        assert_eq!(c.transitions(), (1, 0));
        // Three good probes: the first two are cooldown, the third both
        // finishes the cooldown and leaves the window under budget.
        assert!(!c.observe(0.0));
        assert!(!c.observe(0.0));
        assert!(c.observe(0.0));
        assert_eq!(c.transitions(), (1, 1));
    }

    #[test]
    fn controller_stays_disabled_while_probes_are_bad() {
        let mut c = FallbackController::new(0.5, 2);
        assert!(!c.observe(10.0));
        for _ in 0..20 {
            assert!(!c.observe(2.0), "bad probes must not re-enable");
        }
        // Recovery still requires the rolling window back under budget:
        // [2.0, 0.0] averages 1.0 > 0.5, [0.0, 0.0] recovers.
        assert!(!c.observe(0.0));
        assert!(c.observe(0.0));
    }

    #[test]
    fn controller_treats_nan_as_failure() {
        let mut c = FallbackController::new(1.0, 1);
        assert!(!c.observe(f64::NAN));
    }

    #[test]
    fn ladder_demotes_before_disabling() {
        let mut c = FallbackController::new(0.5, 2)
            .with_ladder(FallbackController::ladder_for(Precision::Int8));
        assert_eq!(c.precision(), Some(Precision::Int8));
        // Over budget at int8: demote, stay enabled, fresh window.
        assert!(c.observe(2.0));
        assert_eq!(c.precision(), Some(Precision::Bf16));
        assert_eq!(c.precision_transitions(), (1, 0));
        // Over budget at bf16 too: demote to f32, still enabled.
        assert!(c.observe(2.0));
        assert_eq!(c.precision(), Some(Precision::F32));
        // Over budget on the last rung: now disable, exactly as unladdered.
        assert!(!c.observe(2.0));
        assert_eq!(c.transitions(), (1, 0));
        assert_eq!(c.precision(), Some(Precision::F32));
    }

    #[test]
    fn ladder_promotes_after_doubled_stable_window() {
        let mut c = FallbackController::new(0.5, 2)
            .with_ladder(FallbackController::ladder_for(Precision::Int8));
        assert!(c.observe(2.0)); // int8 -> bf16
        assert_eq!(c.precision(), Some(Precision::Bf16));
        // 2 * window = 4 consecutive healthy observations heal one rung.
        for _ in 0..3 {
            assert!(c.observe(0.1));
            assert_eq!(c.precision(), Some(Precision::Bf16));
        }
        assert!(c.observe(0.1));
        assert_eq!(c.precision(), Some(Precision::Int8));
        assert_eq!(c.precision_transitions(), (1, 1));
        // An over-budget window resets the stability count.
        assert!(c.observe(2.0));
        assert_eq!(c.precision(), Some(Precision::Bf16));
        assert!(c.observe(2.0)); // demoted again: f32
        assert_eq!(c.precision(), Some(Precision::F32));
    }

    #[test]
    fn ladder_reenable_lands_on_finest_rung() {
        let mut c = FallbackController::new(0.5, 1)
            .with_ladder(FallbackController::ladder_for(Precision::Bf16));
        assert!(c.observe(2.0)); // bf16 -> f32
        assert!(!c.observe(2.0)); // f32 over budget: disabled
        assert!(c.observe(0.0)); // window-1 cooldown: one good probe re-enables
        assert_eq!(c.precision(), Some(Precision::F32));
        // Healing continues down the ladder after 2 * window stable
        // observations at f32.
        assert!(c.observe(0.0));
        assert_eq!(c.precision(), Some(Precision::F32));
        assert!(c.observe(0.0));
        assert_eq!(c.precision(), Some(Precision::Bf16));
    }

    #[test]
    fn ladder_for_targets() {
        assert_eq!(
            FallbackController::ladder_for(Precision::Int8),
            vec![Precision::Int8, Precision::Bf16, Precision::F32]
        );
        assert_eq!(
            FallbackController::ladder_for(Precision::Bf16),
            vec![Precision::Bf16, Precision::F32]
        );
        assert!(FallbackController::ladder_for(Precision::F32).is_empty());
        // No ladder: plain disable/re-enable, no precision to report.
        let c = FallbackController::new(1.0, 2);
        assert_eq!(c.precision(), None);
    }

    #[test]
    fn sample_error_metrics() {
        let mut e = SampleError::new(ErrorMetric::Rmse);
        e.update(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((e.finalize() - 12.5f64.sqrt()).abs() < 1e-12);

        let mut e = SampleError::new(ErrorMetric::Mape);
        e.update(&[100.0, 0.0, 50.0], &[110.0, 5.0, 45.0]);
        assert!((e.finalize() - 10.0).abs() < 1e-4);

        let mut e = SampleError::new(ErrorMetric::MaxAbs);
        e.update(&[1.0, 2.0], &[1.5, 0.0]);
        assert!((e.finalize() - 2.0).abs() < 1e-12);

        // No comparable elements => zero error, not NaN.
        let e = SampleError::new(ErrorMetric::Rmse);
        assert_eq!(e.finalize(), 0.0);
    }

    #[test]
    fn draw_selects_every_nth_invocation_and_spreads_batch_offsets() {
        let v = RegionValidation::new(
            ValidationPolicy::new(ErrorMetric::Rmse, 1.0)
                .with_sample_rate(4)
                .with_batch_samples(2),
        );
        let mut offs = Vec::new();
        let mut drawn = 0;
        for i in 0..16u64 {
            let seq = v.draw(8, &mut offs);
            assert_eq!(seq, i);
            if i % 4 == 0 {
                assert_eq!(offs, vec![0, 4], "evenly spaced across the batch");
                drawn += 1;
            } else {
                assert!(offs.is_empty());
            }
        }
        assert_eq!(drawn, 4);

        // batch_samples = 0 means every sample of a drawn batch.
        let v = RegionValidation::new(
            ValidationPolicy::new(ErrorMetric::Rmse, 1.0)
                .with_sample_rate(1)
                .with_batch_samples(0),
        );
        v.draw(3, &mut offs);
        assert_eq!(offs, vec![0, 1, 2]);
    }
}
