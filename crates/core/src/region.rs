//! Approx regions: construction, validation, plan caching and persistence.

use crate::registry::{register, RegionRecord};
use crate::session::{Session, SessionCore, SessionKey};
use crate::timing::RegionStats;
use crate::validate::{ErrorMetric, FallbackController, RegionValidation};
use crate::{CoreError, Result};
use hpacml_bridge::{CompiledMap, PlanCache, PlanKey};
use hpacml_directive::ast::{Direction, Directive, MapDirective, MlDirective, MlMode};
use hpacml_directive::parse::parse_directives;
use hpacml_directive::sema::{analyze, Bindings, FunctorInfo};
use hpacml_faults::retry::{RetryOutcome, RetryPolicy};
use hpacml_nn::{InferWorkspace, PrecisionPolicy, SavedModel};
use hpacml_store::H5File;
use hpacml_tensor::{Precision, Tensor};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::Arc;

/// An annotated code region — the unit HPAC-ML can replace with a surrogate.
///
/// Built once from directive strings, then invoked many times. All interior
/// state (plan cache, store handle, statistics) is behind locks so a region
/// can be shared by reference.
#[derive(Debug)]
pub struct Region {
    name: String,
    functors: BTreeMap<String, FunctorInfo>,
    to_maps: BTreeMap<String, MapDirective>,
    from_maps: BTreeMap<String, MapDirective>,
    ml: MlDirective,
    /// Arrays the model consumes, in `in()`/`inout()` declaration order.
    input_order: Vec<String>,
    /// Arrays the model produces, in `out()`/`inout()` declaration order.
    output_order: Vec<String>,
    model_path: Mutex<Option<PathBuf>>,
    db_path: Mutex<Option<PathBuf>>,
    db: Mutex<Option<H5File>>,
    stats: Mutex<RegionStats>,
    /// Compiled bridge plans, keyed by (array, direction, dims, binds).
    plans: PlanCache,
    /// The model handle resolved once per path — invoke-time inference never
    /// hashes a path into the engine cache.
    model: Mutex<Option<(PathBuf, Arc<SavedModel>)>>,
    /// Compiled invocation cores, keyed by (bindings, input shapes). Both the
    /// public [`Session`] API and the one-shot `invoke` path share these.
    sessions: Mutex<HashMap<SessionKey, Arc<SessionCore>>>,
    /// Online-validation state (policy + sampling sequence + fallback
    /// controller), when a policy is attached.
    validation: Mutex<Option<Arc<RegionValidation>>>,
    /// Operator override: route every invocation onto the host code.
    forced_fallback: AtomicBool,
    /// Precision tag ([`Precision::tag`]) the next surrogate pass serves
    /// at — lock-free mirror of the controller's current ladder rung.
    serve_precision: AtomicU8,
    /// Report of the last [`Region::set_precision_policy`] call.
    precision: Mutex<Option<PrecisionReport>>,
    /// Transient-failure budget for db open/flush and model resolution
    /// (deterministic tick backoff; see `hpacml_faults::retry`).
    retry: Mutex<RetryPolicy>,
}

/// What [`Region::set_precision_policy`] did: the quantization target, how
/// many layers grew reduced-precision packs, and the calibration evidence
/// from the region's collected input rows.
#[derive(Debug, Clone)]
pub struct PrecisionReport {
    /// The coarsest rung of the installed demotion ladder.
    pub target: Precision,
    /// Layers that built reduced-precision weight packs.
    pub quantized_layers: usize,
    /// Collected input rows read from the region db for calibration
    /// (0 when the region has no db or no collected inputs yet).
    pub calib_rows: usize,
    /// Per-rung RMSE of the quantized forward against the f32 forward over
    /// the calibration rows, coarsest rung first. Empty when no rows were
    /// available.
    pub calib_errors: Vec<(Precision, f64)>,
}

impl Region {
    /// Start building a region.
    pub fn builder(name: impl Into<String>) -> RegionBuilder {
        RegionBuilder {
            name: name.into(),
            sources: Vec::new(),
            model: None,
            database: None,
        }
    }

    /// Build a region straight from a block of directive text (the shape of
    /// the paper's Fig. 2 program).
    pub fn from_source(name: impl Into<String>, source: &str) -> Result<Region> {
        Region::builder(name).directive(source).build()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn ml_mode(&self) -> MlMode {
        self.ml.mode
    }

    pub(crate) fn ml(&self) -> &MlDirective {
        &self.ml
    }

    pub(crate) fn input_order(&self) -> &[String] {
        &self.input_order
    }

    pub(crate) fn output_order(&self) -> &[String] {
        &self.output_order
    }

    /// Default surrogate decision for `predicated` mode, parsed from the
    /// directive's condition text when it is a literal.
    pub(crate) fn default_predicate(&self) -> Option<bool> {
        match self.ml.cond.as_deref().map(str::trim) {
            Some("true") | Some("1") => Some(true),
            Some("false") | Some("0") => Some(false),
            _ => None,
        }
    }

    /// Path of the surrogate model (from the `model` clause unless overridden).
    pub fn model_path(&self) -> Option<PathBuf> {
        self.model_path.lock().clone()
    }

    /// Point the region at a (new) model file, e.g. after a training round.
    ///
    /// Invalidates the resolved model handle and every compiled session core
    /// so subsequent invocations pick up the new weights. [`Session`]s built
    /// *before* the swap keep the model they compiled against — rebuild them
    /// to follow the new path.
    pub fn set_model_path(&self, path: impl Into<PathBuf>) {
        let path = path.into();
        hpacml_nn::InferenceEngine::global().evict(&path);
        *self.model_path.lock() = Some(path);
        *self.model.lock() = None;
        self.sessions.lock().clear();
    }

    /// Drop every invoke-time cache this region holds: compiled bridge
    /// plans, the resolved model handle, and compiled session cores. Useful
    /// between measurement runs (and used by the overhead benchmark to model
    /// a cold, uncached invocation).
    pub fn clear_caches(&self) {
        self.plans.clear();
        *self.model.lock() = None;
        self.sessions.lock().clear();
    }

    /// Attach a reduced-precision serving policy: reload the region's model,
    /// quantize it for `policy.target` (per-layer bf16/int8 weight packs with
    /// f32 accumulation — see `hpacml_nn::fuse`), **calibrate** the quantized
    /// rungs against the f32 forward on up to `policy.max_calib_rows`
    /// collected input rows from the region db, and install the matching
    /// demotion ladder (`int8 → bf16 → f32 → host`) into the validation
    /// controller when a [`crate::ValidationPolicy`] is attached.
    ///
    /// Subsequent surrogate passes serve at [`Region::serve_precision`],
    /// which the controller demotes/promotes as the rolling validation error
    /// crosses the budget (see [`crate::validate`]). An `F32` target reverts
    /// to full-precision serving and removes the ladder. Sessions built
    /// *before* this call keep the model they compiled against — rebuild
    /// them to pick up the quantized packs.
    pub fn set_precision_policy(&self, policy: &PrecisionPolicy) -> Result<PrecisionReport> {
        let path = self.model_path().ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: set_precision_policy requires a model(...) clause or set_model_path",
                self.name
            ))
        })?;
        // Fresh load so re-targeting never stacks packs built for an earlier
        // policy; `load_model` compiles the network for inference.
        let mut model = hpacml_nn::serialize::load_model(&path)?;
        let quantized_layers = model.quantize(policy.target);
        let (calib_rows, batch) = self.calibration_batch(&model, policy.max_calib_rows)?;
        let mut calib_errors = Vec::new();
        if let Some(x) = &batch {
            let mut ws = InferWorkspace::new();
            let reference = model.infer_with_at(&mut ws, x, Precision::F32)?.clone();
            for prec in FallbackController::ladder_for(policy.target) {
                if prec == Precision::F32 {
                    break;
                }
                let y = model.infer_with_at(&mut ws, x, prec)?;
                let mut acc = 0.0f64;
                for (r, a) in reference.data().iter().zip(y.data()) {
                    let d = (*r - *a) as f64;
                    acc += d * d;
                }
                let rmse = (acc / reference.numel().max(1) as f64).sqrt();
                calib_errors.push((prec, rmse));
            }
        }
        // Serve the quantized model: swap the resolved handle in place and
        // drop compiled session cores that captured the old one.
        *self.model.lock() = Some((path, Arc::new(model)));
        self.sessions.lock().clear();
        self.set_serve_precision(policy.target);
        if let Some(v) = self.validation() {
            v.install_ladder(FallbackController::ladder_for(policy.target));
        }
        let report = PrecisionReport {
            target: policy.target,
            quantized_layers,
            calib_rows,
            calib_errors,
        };
        *self.precision.lock() = Some(report.clone());
        Ok(report)
    }

    /// The precision the next surrogate pass serves at: the policy target,
    /// as demoted/promoted by the validation controller. `F32` when no
    /// precision policy is attached.
    pub fn serve_precision(&self) -> Precision {
        Precision::from_tag(self.serve_precision.load(Ordering::Relaxed)).unwrap_or(Precision::F32)
    }

    pub(crate) fn set_serve_precision(&self, p: Precision) {
        self.serve_precision.store(p.tag(), Ordering::Relaxed);
    }

    /// The report of the last [`Region::set_precision_policy`] call.
    pub fn precision_report(&self) -> Option<PrecisionReport> {
        self.precision.lock().clone()
    }

    /// The quantization target of the attached precision policy, if any.
    pub(crate) fn precision_target(&self) -> Option<Precision> {
        self.precision.lock().as_ref().map(|r| r.target)
    }

    /// Assemble up to `max_rows` collected input rows from the region db
    /// into one forward batch shaped for `model`: row `r` concatenates every
    /// declared input's dataset row `r` (declaration order), mirroring the
    /// session assembly layout. Returns `(rows_read, batch)` — `(0, None)`
    /// when the region has no db, no collected inputs, or the rows do not
    /// tile the model's input shape.
    fn calibration_batch(
        &self,
        model: &SavedModel,
        max_rows: usize,
    ) -> Result<(usize, Option<Tensor>)> {
        if max_rows == 0 || self.db_path().is_none() {
            return Ok((0, None));
        }
        let input_order = &self.input_order;
        let mut rows = 0usize;
        let mut feat_total = 0usize;
        let mut data: Vec<f32> = Vec::new();
        self.with_db(|name, file| {
            let Ok(group) = file.root().group(name).and_then(|g| g.group("inputs")) else {
                return Ok(());
            };
            let mut avail = usize::MAX;
            for input in input_order {
                let Ok(ds) = group.dataset(input) else {
                    return Ok(());
                };
                avail = avail.min(ds.rows());
                feat_total += ds.entry_numel();
            }
            rows = avail.min(max_rows);
            data.reserve(rows * feat_total);
            for r in 0..rows {
                for input in input_order {
                    let ds = group.dataset(input)?;
                    data.extend_from_slice(&ds.read_row_f32(r)?);
                }
            }
            Ok(())
        })?;
        let per_sample: usize = model.spec.input_shape.iter().product::<usize>().max(1);
        let total = rows * feat_total;
        if total == 0 || !total.is_multiple_of(per_sample) {
            return Ok((0, None));
        }
        let mut dims = Vec::with_capacity(1 + model.spec.input_shape.len());
        dims.push(total / per_sample);
        dims.extend_from_slice(&model.spec.input_shape);
        Ok((rows, Some(Tensor::from_vec(data, dims)?)))
    }

    /// Path of the data-collection database.
    pub fn db_path(&self) -> Option<PathBuf> {
        self.db_path.lock().clone()
    }

    /// Redirect data collection to a different file.
    pub fn set_db_path(&self, path: impl Into<PathBuf>) {
        *self.db_path.lock() = Some(path.into());
        *self.db.lock() = None;
    }

    /// Snapshot of accumulated phase timings.
    pub fn stats(&self) -> RegionStats {
        *self.stats.lock()
    }

    /// Zero the timing counters (e.g. between measurement runs).
    pub fn reset_stats(&self) {
        *self.stats.lock() = RegionStats::default();
    }

    pub(crate) fn update_stats(&self, f: impl FnOnce(&mut RegionStats)) {
        f(&mut self.stats.lock());
    }

    /// The region's transient-failure retry budget (db open/flush and
    /// model resolution share it).
    pub fn retry_policy(&self) -> RetryPolicy {
        *self.retry.lock()
    }

    /// Replace the retry budget — e.g. [`RetryPolicy::none`] to fail fast
    /// in tests, or a wider budget for flaky network filesystems.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.lock() = policy;
    }

    /// Fold one retry outcome into the region's counters.
    fn note_retries<T, E>(&self, out: &RetryOutcome<T, E>) {
        if out.retries() > 0 || out.gave_up() {
            self.update_stats(|s| {
                s.retry_attempts += u64::from(out.retries());
                if out.gave_up() {
                    s.retry_giveups += 1;
                }
            });
        }
    }

    /// Fetch (or compile and cache) the bridge plan for `array` in the given
    /// direction, for a concrete shape and bindings.
    pub(crate) fn plan_for(
        &self,
        array: &str,
        direction: Direction,
        dims: &[usize],
        binds: &Bindings,
    ) -> Result<Arc<CompiledMap>> {
        let map = match direction {
            Direction::To => self.to_maps.get(array),
            Direction::From => self.from_maps.get(array),
        }
        .ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: no {} tensor map for array `{array}`",
                self.name,
                match direction {
                    Direction::To => "`to`",
                    Direction::From => "`from`",
                }
            ))
        })?;
        let info = self.functors.get(&map.functor).ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: map references undeclared functor `{}`",
                self.name, map.functor
            ))
        })?;
        let key = PlanKey::new(array, direction, dims, binds);
        let (plan, hit) = self.plans.get_or_compile(key, info, map)?;
        self.update_stats(|s| {
            if hit {
                s.plan_cache_hits += 1;
            } else {
                s.plan_cache_misses += 1;
            }
        });
        Ok(plan)
    }

    /// Resolve the surrogate model once per path. The first call loads (or
    /// fetches from the engine's per-path cache); later calls clone the held
    /// handle without hashing anything.
    pub(crate) fn resolve_model(&self) -> Result<Arc<SavedModel>> {
        let path = self.model_path().ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: surrogate path requires a model(...) clause or set_model_path",
                self.name
            ))
        })?;
        let mut guard = self.model.lock();
        if let Some((held_path, model)) = guard.as_ref() {
            if *held_path == path {
                let model = Arc::clone(model);
                drop(guard);
                self.update_stats(|s| s.model_cache_hits += 1);
                return Ok(model);
            }
        }
        // The engine already retries quick I/O flakes internally; this layer
        // treats a full engine give-up as one failed attempt, so an outage
        // longer than the engine's budget still resolves once the file is
        // readable again.
        let out = self
            .retry_policy()
            .run(|_| hpacml_nn::InferenceEngine::global().load(&path));
        let retries = out.retries();
        let gave_up = out.gave_up();
        let loaded = out.result;
        if let Ok(model) = &loaded {
            *guard = Some((path, Arc::clone(model)));
        }
        drop(guard);
        self.update_stats(|s| {
            s.retry_attempts += u64::from(retries);
            if gave_up {
                s.retry_giveups += 1;
            } else {
                s.model_cache_misses += 1;
            }
        });
        Ok(loaded?)
    }

    /// Fetch (or build and cache) the compiled invocation core for this
    /// bindings + input-shape combination.
    pub(crate) fn session_core(
        &self,
        binds: &Bindings,
        inputs: &[(String, Vec<usize>)],
    ) -> Result<Arc<SessionCore>> {
        let key = SessionKey::new(binds, inputs);
        if let Some(core) = self.sessions.lock().get(&key) {
            return Ok(Arc::clone(core));
        }
        let core = Arc::new(SessionCore::build(self, binds, inputs)?);
        Ok(Arc::clone(self.sessions.lock().entry(key).or_insert(core)))
    }

    /// Compile this region into a reusable [`Session`] for concrete integer
    /// bindings and **per-sample** array shapes — the compile-once /
    /// invoke-many fast path, with a first-class runtime batch dimension.
    ///
    /// `shapes` must name every array declared in `in(...)`, `out(...)` and
    /// `inout(...)` together with the concrete dims of **one sample** (one
    /// logical invocation). `max_batch` fixes the largest runtime batch one
    /// invocation may carry: [`Session::invoke_batch`]`(n)` serves any
    /// `1 <= n <= max_batch` through the same compiled plans — one forward
    /// pass for `n` invocations, no per-batch-size recompilation and no tail
    /// session. All bridge plans are resolved (and cached) up front;
    /// repeated invocations do no plan lookups, no model-path hashing and —
    /// in steady state — no heap allocation in the gather/inference/scatter
    /// path, for any batch up to `max_batch` (buffers are sized to
    /// `max_batch` once per thread).
    pub fn session<'r>(
        &'r self,
        binds: &Bindings,
        shapes: &[(&str, &[usize])],
        max_batch: usize,
    ) -> Result<Session<'r>> {
        Session::build(self, binds, shapes, max_batch)
    }

    /// Append one collected sample to the region's database group. Thin
    /// adapter over [`Region::record_collection_batch`] with a batch of 1.
    pub(crate) fn record_collection(
        &self,
        inputs: &[(&str, &hpacml_tensor::Tensor)],
        outputs: &[(&str, &hpacml_tensor::Tensor)],
        region_time_ns: u64,
    ) -> Result<()> {
        fn as_rows<'a>(
            pairs: &'a [(&'a str, &'a hpacml_tensor::Tensor)],
        ) -> Vec<(&'a str, &'a [usize], &'a [f32])> {
            pairs
                .iter()
                .map(|&(name, t)| (name, t.dims(), t.data()))
                .collect()
        }
        self.record_collection_batch(1, &as_rows(inputs), &as_rows(outputs), region_time_ns)
    }

    /// Append `n` collected samples from batched tensors — the collection
    /// path of [`Session::invoke_batch`]. Each entry is
    /// `(array name, per-sample dims, batched data)` where the data holds the
    /// `n` per-sample tensors back to back; row `i` of every dataset gets
    /// sample `i`'s slice, so the database is laid out exactly as `n`
    /// sequential one-shot invocations would have left it. Each dataset is
    /// resolved once and fed its `n` rows in a burst.
    pub(crate) fn record_collection_batch(
        &self,
        n: usize,
        inputs: &[(&str, &[usize], &[f32])],
        outputs: &[(&str, &[usize], &[f32])],
        region_time_ns: u64,
    ) -> Result<()> {
        self.with_db(|name, file| {
            let group = file.root_mut().group_mut(name);
            for (kind, tensors) in [("inputs", inputs), ("outputs", outputs)] {
                let sub = group.group_mut(kind);
                for &(name, dims, data) in tensors {
                    let per: usize = dims.iter().product();
                    let ds = sub.dataset_mut(name, hpacml_store::DType::F32, dims)?;
                    for i in 0..n {
                        ds.append_f32(&data[i * per..(i + 1) * per])?;
                    }
                }
            }
            let ds = group.dataset_mut("region_time_ns", hpacml_store::DType::F64, &[])?;
            for _ in 0..n {
                ds.append_f64(&[region_time_ns as f64])?;
            }
            Ok(())
        })
    }

    /// Run `body` against the region's database handle, lazily creating or
    /// opening the file at `db_path()` (including its parent directory) on
    /// first use. A region with no `db(...)` clause is a no-op `Ok(())`.
    /// Shared by data collection and validation-row recording.
    pub(crate) fn with_db(&self, body: impl FnOnce(&str, &mut H5File) -> Result<()>) -> Result<()> {
        let path = match self.db_path() {
            Some(p) => p,
            None => return Ok(()),
        };
        let mut guard = self.db.lock();
        if guard.is_none() {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).map_err(hpacml_store::StoreError::Io)?;
                }
            }
            let opened = if path.exists() {
                // Reopening an existing file is real I/O and can flake
                // (chaos seam `store.open`); retry under the region budget
                // before surfacing. A create is in-memory and cannot fail.
                let out = self.retry_policy().run(|_| H5File::open(&path));
                self.note_retries(&out);
                match out.result {
                    Ok(file) => file,
                    Err(e) => {
                        drop(guard);
                        self.update_stats(|s| s.db_errors += 1);
                        return Err(e.into());
                    }
                }
            } else {
                H5File::create(&path)
            };
            *guard = Some(opened);
        }
        let res = body(&self.name, guard.as_mut().expect("db initialized above"));
        drop(guard);
        if res.is_err() {
            self.update_stats(|s| s.db_errors += 1);
        }
        res
    }

    pub(crate) fn validation_slot(&self) -> &Mutex<Option<Arc<RegionValidation>>> {
        &self.validation
    }

    pub(crate) fn forced_fallback_flag(&self) -> &AtomicBool {
        &self.forced_fallback
    }

    /// Append one `(invocation, metric, error)` row per validated sample to
    /// the region's database, under `<region>/validation`. A region without
    /// a `db(...)` clause skips recording (the controller still runs).
    pub(crate) fn record_validation_rows(
        &self,
        seq: u64,
        metric: ErrorMetric,
        errors: &[f64],
    ) -> Result<()> {
        if errors.is_empty() {
            return Ok(());
        }
        self.with_db(|name, file| {
            let group = file.root_mut().group_mut(name).group_mut("validation");
            for (col, value) in [("invocation", seq as f64), ("metric", metric.code() as f64)] {
                let ds = group.dataset_mut(col, hpacml_store::DType::F64, &[])?;
                for _ in errors {
                    ds.append_f64(&[value])?;
                }
            }
            let ds = group.dataset_mut("error", hpacml_store::DType::F64, &[])?;
            for &e in errors {
                ds.append_f64(&[e])?;
            }
            Ok(())
        })
    }

    /// Persist collected data to disk. Transient failures retry under the
    /// region's [`RetryPolicy`]; an exhausted budget counts into the
    /// `db_errors`/`retry_giveups` stats and surfaces the final error.
    pub fn flush_db(&self) -> Result<()> {
        let out = {
            let mut guard = self.db.lock();
            match guard.as_mut() {
                None => return Ok(()),
                Some(db) => self.retry_policy().run(|_| db.flush()),
            }
        };
        self.note_retries(&out);
        if out.result.is_err() {
            self.update_stats(|s| s.db_errors += 1);
        }
        out.result.map_err(CoreError::from)
    }

    /// Bytes of collected data currently held (Table III's data-size column).
    pub fn db_size_bytes(&self) -> usize {
        self.db.lock().as_ref().map(|d| d.size_bytes()).unwrap_or(0)
    }
}

/// Builder accumulating directive strings for a region.
pub struct RegionBuilder {
    name: String,
    sources: Vec<String>,
    model: Option<PathBuf>,
    database: Option<PathBuf>,
}

impl RegionBuilder {
    /// Add one or more directives (a string may contain several
    /// `#pragma approx ...` lines, with `\` continuations).
    pub fn directive(mut self, src: impl Into<String>) -> Self {
        self.sources.push(src.into());
        self
    }

    /// Override the model path (otherwise taken from the `model` clause).
    pub fn model(mut self, path: impl Into<PathBuf>) -> Self {
        self.model = Some(path.into());
        self
    }

    /// Override the database path (otherwise taken from the `db` clause).
    pub fn database(mut self, path: impl Into<PathBuf>) -> Self {
        self.database = Some(path.into());
        self
    }

    /// Parse, analyze and validate everything; register the annotation.
    pub fn build(self) -> Result<Region> {
        let mut functors = BTreeMap::new();
        let mut to_maps = BTreeMap::new();
        let mut from_maps = BTreeMap::new();
        let mut ml: Option<MlDirective> = None;

        for src in &self.sources {
            for d in parse_directives(src)? {
                match d {
                    Directive::Functor(f) => {
                        let info = analyze(&f)?;
                        if functors.insert(f.name.clone(), info).is_some() {
                            return Err(CoreError::Region(format!(
                                "functor `{}` declared twice",
                                f.name
                            )));
                        }
                    }
                    Directive::Map(m) => {
                        let slot = match m.direction {
                            Direction::To => &mut to_maps,
                            Direction::From => &mut from_maps,
                        };
                        if slot.insert(m.target.array.clone(), m.clone()).is_some() {
                            return Err(CoreError::Region(format!(
                                "array `{}` mapped twice in the same direction",
                                m.target.array
                            )));
                        }
                    }
                    Directive::Ml(m) => {
                        if ml.replace(m).is_some() {
                            return Err(CoreError::Region(
                                "region has more than one ml directive".into(),
                            ));
                        }
                    }
                }
            }
        }

        let ml = ml.ok_or_else(|| {
            CoreError::Region(format!("region `{}` has no `ml` directive", self.name))
        })?;

        // Functor applications embedded in in/out/inout clauses (the
        // grammar's `fa-expr` form of mapped-memory) synthesize tensor maps.
        for m in &ml.embedded_maps {
            let slot = match m.direction {
                Direction::To => &mut to_maps,
                Direction::From => &mut from_maps,
            };
            slot.entry(m.target.array.clone())
                .or_insert_with(|| m.clone());
        }

        // inout arrays reuse the `to` map for the `from` direction when no
        // explicit `from` map exists (this is what lets MiniWeather get away
        // with 3 directives in the paper's Table II).
        for name in &ml.inouts {
            if !from_maps.contains_key(name) {
                if let Some(to) = to_maps.get(name) {
                    let mut derived = to.clone();
                    derived.direction = Direction::From;
                    from_maps.insert(name.clone(), derived);
                }
            }
            if !to_maps.contains_key(name) {
                if let Some(from) = from_maps.get(name) {
                    let mut derived = from.clone();
                    derived.direction = Direction::To;
                    to_maps.insert(name.clone(), derived);
                }
            }
        }

        // Validate the data flow: every in/out name must have a map, and
        // every map must reference a declared functor.
        let mut input_order = ml.inputs.clone();
        input_order.extend(ml.inouts.iter().cloned());
        let mut output_order = ml.outputs.clone();
        output_order.extend(ml.inouts.iter().cloned());
        if input_order.is_empty() && output_order.is_empty() {
            return Err(CoreError::Region(format!(
                "region `{}`: ml directive declares no in/out/inout arrays",
                self.name
            )));
        }
        for name in &input_order {
            if !to_maps.contains_key(name) {
                return Err(CoreError::Region(format!(
                    "region `{}`: `in({name})` has no `map(to: ...)` directive",
                    self.name
                )));
            }
        }
        for name in &output_order {
            if !from_maps.contains_key(name) {
                return Err(CoreError::Region(format!(
                    "region `{}`: `out({name})` has no `map(from: ...)` directive",
                    self.name
                )));
            }
        }
        for m in to_maps.values().chain(from_maps.values()) {
            if !functors.contains_key(&m.functor) {
                return Err(CoreError::Region(format!(
                    "region `{}`: map references undeclared functor `{}`",
                    self.name, m.functor
                )));
            }
        }

        let model_path = self.model.or_else(|| ml.model.clone().map(PathBuf::from));
        let db_path = self
            .database
            .or_else(|| ml.database.clone().map(PathBuf::from));

        register(RegionRecord {
            region: self.name.clone(),
            directives: self.sources.clone(),
        });

        Ok(Region {
            name: self.name,
            functors,
            to_maps,
            from_maps,
            ml,
            input_order,
            output_order,
            model_path: Mutex::new(model_path),
            db_path: Mutex::new(db_path),
            db: Mutex::new(None),
            stats: Mutex::new(RegionStats::default()),
            plans: PlanCache::new(),
            model: Mutex::new(None),
            sessions: Mutex::new(HashMap::new()),
            validation: Mutex::new(None),
            forced_fallback: AtomicBool::new(false),
            serve_precision: AtomicU8::new(Precision::F32.tag()),
            precision: Mutex::new(None),
            retry: Mutex::new(RetryPolicy::default()),
        })
    }
}

impl Drop for Region {
    fn drop(&mut self) {
        // `flush_db` has already retried and counted the failure into
        // `db_errors`; the stats die with the region, so the message is the
        // only remaining signal that collected rows were lost.
        if let Err(e) = self.flush_db() {
            eprintln!(
                "hpacml-core: region `{}`: final db flush failed: {e} \
                 (rows collected since the last successful flush are lost)",
                self.name
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STENCIL: &str = r#"
        #pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
        #pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
        #pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
        #pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
        #pragma approx ml(predicated:true) in(t) out(tnew) db("/tmp/hpacml-region-test/d.h5") model("/tmp/hpacml-region-test/m.hml")
    "#;

    #[test]
    fn builds_fig2_region() {
        let r = Region::from_source("stencil", STENCIL).unwrap();
        assert_eq!(r.name(), "stencil");
        assert_eq!(r.ml_mode(), MlMode::Predicated);
        assert_eq!(r.default_predicate(), Some(true));
        assert_eq!(r.input_order(), &["t".to_string()]);
        assert_eq!(r.output_order(), &["tnew".to_string()]);
        assert!(r.model_path().unwrap().ends_with("m.hml"));
        assert!(r.db_path().unwrap().ends_with("d.h5"));
    }

    #[test]
    fn plan_cache_reuses_compilations() {
        let r = Region::from_source("stencil2", STENCIL).unwrap();
        let binds = Bindings::new().with("N", 8).with("M", 8);
        let p1 = r.plan_for("t", Direction::To, &[8, 8], &binds).unwrap();
        let p2 = r.plan_for("t", Direction::To, &[8, 8], &binds).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        // Different shape -> different plan.
        let binds2 = Bindings::new().with("N", 10).with("M", 8);
        let p3 = r.plan_for("t", Direction::To, &[10, 8], &binds2).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn missing_ml_directive_rejected() {
        let err = Region::from_source(
            "no-ml",
            "#pragma approx tensor functor(f: [i, 0:1] = ([i]))",
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Region(s) if s.contains("no `ml` directive")));
    }

    #[test]
    fn unmapped_in_array_rejected() {
        let err = Region::from_source(
            "bad-in",
            r#"
            #pragma approx tensor functor(f: [i, 0:1] = ([i]))
            #pragma approx ml(infer) in(x) out(y) model("m.hml")
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Region(s) if s.contains("in(x)")));
    }

    #[test]
    fn inout_derives_reverse_map() {
        let r = Region::from_source(
            "inout",
            r#"
            #pragma approx tensor functor(st: [c, i, 0:1] = ([c, i]))
            #pragma approx tensor map(to: st(state[0:4, 0:W]))
            #pragma approx ml(collect) inout(state) db("/tmp/hpacml-region-test/io.h5")
            "#,
        )
        .unwrap();
        let binds = Bindings::new().with("W", 5);
        assert!(r.plan_for("state", Direction::To, &[4, 5], &binds).is_ok());
        assert!(r
            .plan_for("state", Direction::From, &[4, 5], &binds)
            .is_ok());
    }

    #[test]
    fn duplicate_functor_rejected() {
        let err = Region::from_source(
            "dup",
            r#"
            #pragma approx tensor functor(f: [i, 0:1] = ([i]))
            #pragma approx tensor functor(f: [i, 0:1] = ([i]))
            #pragma approx ml(collect) in(x) out(y)
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Region(s) if s.contains("declared twice")));
    }

    #[test]
    fn map_with_unknown_functor_rejected() {
        let err = Region::from_source(
            "ghost",
            r#"
            #pragma approx tensor functor(f: [i, 0:1] = ([i]))
            #pragma approx tensor map(to: ghost(x[0:4]))
            #pragma approx tensor map(from: f(y[0:4]))
            #pragma approx ml(infer) in(x) out(y) model("m.hml")
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Region(s) if s.contains("ghost")));
    }

    #[test]
    fn builder_overrides_paths() {
        let r = Region::builder("override")
            .directive(
                r#"
                #pragma approx tensor functor(f: [i, 0:1] = ([i]))
                #pragma approx tensor map(to: f(x[0:4]))
                #pragma approx tensor map(from: f(y[0:4]))
                #pragma approx ml(infer) in(x) out(y) model("original.hml")
                "#,
            )
            .model("/elsewhere/better.hml")
            .database("/elsewhere/data.h5")
            .build()
            .unwrap();
        assert_eq!(
            r.model_path().unwrap(),
            PathBuf::from("/elsewhere/better.hml")
        );
        assert_eq!(r.db_path().unwrap(), PathBuf::from("/elsewhere/data.h5"));
    }
}
