//! Compiled invocations: the compile-once / invoke-many fast path, with a
//! first-class **runtime batch dimension**.
//!
//! A [`Session`] is a region *compiled* against concrete integer bindings and
//! **per-sample** array shapes, the same separation an ML runtime draws
//! between a model and its optimized executable plan. Building a session
//! resolves, once:
//!
//! * the gather plan for every `in(...)`/`inout(...)` array and the scatter
//!   plan for every `out(...)`/`inout(...)` array (shared with the region's
//!   plan cache, so the one-shot API benefits too);
//! * the model handle (`Arc<SavedModel>`) — invoke-time inference never
//!   hashes a path into the engine cache again;
//! * the input-assembly layout: flatten/concat/reshape become precomputed
//!   row/column offsets, so building the model input is a straight strided
//!   copy into a staging buffer.
//!
//! The batch dimension is a **runtime parameter**: a session built with
//! `max_batch = B` serves [`Session::invoke_batch`]`(n)` for *any*
//! `1 <= n <= B` through the same compiled plans — `n` input sets gather
//! into `[n, D]` tensors, one forward pass runs, and `n` outputs scatter
//! back. No per-batch-size recompilation, and no separate "tail" session for
//! a sweep remainder.
//!
//! Per-invocation scratch (gathered tensors, the staging buffer, the NN
//! inference workspace) lives in a per-thread scratch slot that each run
//! borrows and returns. All buffers are sized **once for `max_batch`** on a
//! thread's first invocation, so a thread in steady state performs **no heap
//! allocation** between `invoke_batch(n)` and `finish()` on the surrogate
//! path, for any `n` up to `max_batch`. A `Session` is `Sync`: many threads
//! may invoke the same compiled session concurrently, each on its own
//! scratch — or hand their samples to a [`crate::serve::BatchServer`], which
//! coalesces concurrent submissions into shared forward passes.
//!
//! ```no_run
//! # fn main() -> hpacml_core::Result<()> {
//! # let region = hpacml_core::Region::from_source("r", "")?;
//! # let binds = hpacml_directive::sema::Bindings::new();
//! # let feat = 5usize;
//! # let samples = vec![0.0f32; 1000 * feat];
//! # let mut results = vec![0.0f32; 1000];
//! // Compile once, for per-sample shapes and a maximum runtime batch.
//! let session = region.session(&binds, &[("x", &[feat]), ("y", &[1])], 64)?;
//! // One forward pass for up to 64 invocations; the tail reuses the same
//! // compiled plans.
//! for (xs, ys) in samples.chunks(64 * feat).zip(results.chunks_mut(64)) {
//!     let n = ys.len();
//!     let mut out = session
//!         .invoke_batch(n)?
//!         .input("x", xs)?
//!         .run(|| { /* accurate path for all n samples */ })?;
//!     out.output("y", ys)?;
//!     out.finish()?;
//! }
//! # Ok(())
//! # }
//! ```

use crate::exec::PathTaken;
use crate::region::Region;
use crate::timing::timed;
use crate::validate::{RegionValidation, SampleError};
use crate::{CoreError, Result};
use hpacml_bridge::CompiledMap;
use hpacml_directive::ast::{Direction, MlMode};
use hpacml_directive::sema::Bindings;
use hpacml_nn::{InferWorkspace, SavedModel};
use hpacml_tensor::Tensor;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Per-thread scratch
// ---------------------------------------------------------------------------

/// Reusable per-invocation buffers. Taken from a thread-local slot at
/// `invoke()` and returned when the invocation's [`ScratchGuard`] drops, so
/// nested invocations (a region invoked from inside another region's
/// accurate closure) each get their own scratch instead of fighting over a
/// `RefCell`.
#[derive(Default)]
pub(crate) struct Scratch {
    /// One gathered tensor per declared input (assembly order).
    pub(crate) gathered: Vec<Tensor>,
    /// Staged model-input batch (assembled from `gathered`).
    pub(crate) staged: Tensor,
    /// NN inference workspace (normalization staging + activation arenas).
    pub(crate) ws: InferWorkspace,
    /// Model output of the current run (swapped out of the arena).
    pub(crate) out: Tensor,
    /// Reusable dims scratch for batched reshapes (no per-run allocation).
    pub(crate) dims_buf: Vec<usize>,
    /// `(session-core address, max_batch)` the gather/staging buffers were
    /// last sized for. See [`Scratch::warm_buffers`].
    buf_warm: (usize, usize),
    /// `(session-core address, max_batch)` the inference workspace was last
    /// reserved for (set on the first surrogate run, when the model exists).
    ws_warm: (usize, usize),
}

impl Scratch {
    pub(crate) fn ensure_inputs(&mut self, n: usize) {
        if self.gathered.len() < n {
            self.gathered.resize_with(n, Tensor::default);
        }
    }

    /// Size every gather/staging buffer for `max_batch` samples of `core`'s
    /// per-sample plans, once per (thread, core, max_batch). After this,
    /// gathers and assembly at any `n <= max_batch` reuse capacity — the
    /// zero-allocation steady state holds from the first invocation
    /// regardless of the order batch sizes arrive in.
    fn warm_buffers(&mut self, core: &Arc<SessionCore>, max_batch: usize) {
        let count = core.input_count();
        // The arity check runs unconditionally: the warm token keys on the
        // core's address, and a dropped core's allocation can be reused by a
        // new one (ABA) — capacity warming is only a perf hint then, but
        // `gathered` must always have one slot per declared input.
        self.ensure_inputs(count);
        let token = (Arc::as_ptr(core) as usize, max_batch);
        if self.buf_warm == token {
            return;
        }
        let mut total = 0usize;
        for i in 0..count {
            let pn = core.input_plan(i).numel();
            total += pn;
            if self.gathered[i].capacity() < max_batch * pn {
                self.gathered[i].resize(&[max_batch * pn]);
            }
        }
        // The staging buffer ping-pongs with `gathered[0]` on single-input
        // regions and holds the interleaved batch on multi-input ones; size
        // it for the full batch either way.
        if self.staged.capacity() < max_batch * total {
            self.staged.resize(&[max_batch * total]);
        }
        self.buf_warm = token;
    }
}

thread_local! {
    static SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

/// Owns this thread's warmed [`Scratch`] for the duration of one invocation
/// and returns it to the thread-local slot when dropped — on `finish()`,
/// early return, *or* an error path — so the zero-allocation steady state
/// survives recoverable failures.
pub(crate) struct ScratchGuard(Option<Scratch>);

impl ScratchGuard {
    pub(crate) fn take() -> Self {
        ScratchGuard(Some(
            SCRATCH
                .with(|slot| slot.borrow_mut().take())
                .unwrap_or_default(),
        ))
    }
}

impl std::ops::Deref for ScratchGuard {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.0.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.0.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        if let Some(scratch) = self.0.take() {
            SCRATCH.with(|slot| {
                let mut slot = slot.borrow_mut();
                if slot.is_none() {
                    *slot = Some(scratch);
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Session core: the cached, shareable compiled state
// ---------------------------------------------------------------------------

/// Cache key for compiled invocation cores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SessionKey {
    binds: Vec<(String, i64)>,
    inputs: Vec<(String, Vec<usize>)>,
}

impl SessionKey {
    pub(crate) fn new(binds: &Bindings, inputs: &[(String, Vec<usize>)]) -> Self {
        SessionKey {
            binds: binds.iter().map(|(n, v)| (n.to_string(), v)).collect(),
            inputs: inputs.to_vec(),
        }
    }
}

/// Precomputed input-assembly layout: how the gathered input tensors tile the
/// model's `[batch, sample...]` input, derived once from the plans' LHS
/// shapes and the model spec. All quantities are **per sample**; a runtime
/// batch of `n` scales the leading dimension by `n`.
struct Assembly {
    /// Common per-sample sweep-row count across inputs.
    rows: usize,
    /// Feature columns contributed by each input (its LHS trailing dim).
    cols: Vec<usize>,
    /// Column offset of each input inside one assembled row.
    col_offsets: Vec<usize>,
    /// Total features per row (`cols` summed).
    feat_total: usize,
    /// Per-sample model-input dims: `[batch, sample_shape...]`.
    in_dims: Vec<usize>,
}

/// Model handle plus assembly layout, resolved lazily on the first surrogate
/// run (so collect-phase sessions whose model file does not exist yet build
/// fine).
pub(crate) struct SurrogateState {
    model: Arc<SavedModel>,
    assembly: Assembly,
}

/// The compiled, shareable part of a session: input gather plans in assembly
/// order plus the lazily resolved surrogate state. Cached on the region per
/// (bindings, input shapes) so the one-shot `invoke` path compiles once too.
pub(crate) struct SessionCore {
    /// (array name, gather plan) in assembly order.
    inputs: Vec<(String, Arc<CompiledMap>)>,
    surrogate: Mutex<Option<Arc<SurrogateState>>>,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field(
                "inputs",
                &self.inputs.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("surrogate_resolved", &self.surrogate.lock().is_some())
            .finish()
    }
}

impl SessionCore {
    pub(crate) fn build(
        region: &Region,
        binds: &Bindings,
        inputs: &[(String, Vec<usize>)],
    ) -> Result<SessionCore> {
        // The per-run supplied-input bookkeeping is a u64 bitmask; enforce
        // the arity bound here so that invariant holds everywhere downstream.
        if inputs.len() > 64 {
            return Err(CoreError::Region(format!(
                "region `{}`: {} input arrays exceed the supported maximum of 64",
                region.name(),
                inputs.len()
            )));
        }
        let mut plans = Vec::with_capacity(inputs.len());
        for (name, dims) in inputs {
            let plan = region.plan_for(name, Direction::To, dims, binds)?;
            plans.push((name.clone(), plan));
        }
        Ok(SessionCore {
            inputs: plans,
            surrogate: Mutex::new(None),
        })
    }

    pub(crate) fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|(n, _)| n == name)
    }

    pub(crate) fn input_plan(&self, index: usize) -> &Arc<CompiledMap> {
        &self.inputs[index].1
    }

    pub(crate) fn input_count(&self) -> usize {
        self.inputs.len()
    }

    pub(crate) fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().map(|(n, _)| n.as_str())
    }

    /// Resolve (or reuse) the model handle + assembly layout.
    fn surrogate_state(&self, region: &Region) -> Result<Arc<SurrogateState>> {
        if let Some(state) = self.surrogate.lock().as_ref() {
            region.update_stats(|s| s.model_cache_hits += 1);
            return Ok(Arc::clone(state));
        }
        let model = region.resolve_model()?;
        let assembly = self.assembly_for(region, &model)?;
        let state = Arc::new(SurrogateState { model, assembly });
        let mut guard = self.surrogate.lock();
        Ok(Arc::clone(guard.get_or_insert(state)))
    }

    /// The already-resolved surrogate state, if any. Build-time workspace
    /// warming peeks instead of resolving, so model resolution stays as
    /// lazy (and as counted) as it always was.
    fn cached_surrogate_state(&self) -> Option<Arc<SurrogateState>> {
        self.surrogate.lock().as_ref().map(Arc::clone)
    }

    /// Reserve this thread's inference workspace — activation arenas,
    /// normalization staging, the model-output swap buffer and the
    /// per-layer GEMM scratch (weight packing, im2col columns; the scratch
    /// reserve is broadcast across every pool participant, so workers
    /// drafted into a parallel forward are warm too) — for the
    /// largest batch this session can see, once per
    /// `(thread, core, max_batch)`. Shared by [`Session::build`] (the
    /// building thread starts its first invocation already in the
    /// zero-alloc steady state) and [`SessionCore::run_surrogate`] (every
    /// other thread warms on its first run). Skipped for `max_batch == 1`
    /// (the one-shot exec path and single-sample sessions): the forward
    /// pass sizes the arenas naturally there, and skipping keeps a thread
    /// that alternates one-shot and batched invocations of the same core
    /// from re-reserving on every flip of the single-slot warm token.
    pub(crate) fn warm_thread_workspace(
        &self,
        state: &SurrogateState,
        scratch: &mut Scratch,
        max_batch: usize,
    ) -> Result<()> {
        let token = (self as *const SessionCore as usize, max_batch);
        if max_batch <= 1 || scratch.ws_warm == token {
            return Ok(());
        }
        let asm = &state.assembly;
        scratch.dims_buf.clear();
        scratch.dims_buf.push(max_batch * asm.in_dims[0]);
        scratch.dims_buf.extend_from_slice(&asm.in_dims[1..]);
        let widest = state
            .model
            .reserve_workspace(&mut scratch.ws, &scratch.dims_buf)?;
        // `out` swaps with the final activation arena every run; size it
        // to match so the swapped-in buffer never has to regrow.
        if scratch.out.capacity() < widest {
            scratch.out.resize(&[widest]);
        }
        scratch.ws_warm = token;
        Ok(())
    }

    /// Derive the assembly layout from the input plans' LHS shapes and the
    /// model's declared per-sample input shape. Mirrors the semantics of the
    /// historical flatten→concat→reshape chain, as straight offsets.
    fn assembly_for(&self, region: &Region, model: &SavedModel) -> Result<Assembly> {
        if self.inputs.is_empty() {
            return Err(CoreError::Region(format!(
                "region `{}`: surrogate path needs gathered inputs",
                region.name()
            )));
        }
        let mut rows = 0usize;
        let mut cols = Vec::with_capacity(self.inputs.len());
        let mut col_offsets = Vec::with_capacity(self.inputs.len());
        let mut feat_total = 0usize;
        for (i, (name, plan)) in self.inputs.iter().enumerate() {
            let numel = plan.numel();
            let c = plan.lhs_shape.last().copied().unwrap_or(1).max(1);
            let r = numel / c;
            if i == 0 {
                rows = r;
            } else if r != rows && self.inputs.len() > 1 {
                return Err(CoreError::Region(format!(
                    "region `{}`: inputs disagree on sweep size ({r} vs {rows}) at `{name}`",
                    region.name()
                )));
            }
            col_offsets.push(feat_total);
            cols.push(c);
            feat_total += c;
        }
        let total = rows * feat_total;
        let sample_shape = &model.spec.input_shape;
        let per_sample: usize = sample_shape.iter().product::<usize>().max(1);
        if !total.is_multiple_of(per_sample) {
            return Err(CoreError::Region(format!(
                "region `{}`: gathered {total} elements do not tile the model input shape {sample_shape:?}",
                region.name()
            )));
        }
        let batch = total / per_sample;
        let mut in_dims = Vec::with_capacity(1 + sample_shape.len());
        in_dims.push(batch);
        in_dims.extend_from_slice(sample_shape);
        Ok(Assembly {
            rows,
            cols,
            col_offsets,
            feat_total,
            in_dims,
        })
    }

    /// Execute the surrogate for a runtime batch of `n` samples: assemble the
    /// staged `[n * rows, features]` batch from the gathered inputs, run one
    /// forward pass into the scratch workspace, and leave the model output in
    /// `scratch.out`. Returns the inference time in nanoseconds.
    /// Steady-state allocation-free for any `n <= max_batch` — the workspace
    /// is reserved for `max_batch` on this thread's first surrogate run.
    ///
    /// `preserve_inputs` keeps the gathered input tensors intact (a copy
    /// instead of the single-input swap) — required when the caller still
    /// needs them after the pass, e.g. a validation probe on the accurate
    /// path whose data-collection step reads the gathered inputs.
    pub(crate) fn run_surrogate(
        &self,
        region: &Region,
        scratch: &mut Scratch,
        n: usize,
        max_batch: usize,
        preserve_inputs: bool,
    ) -> Result<u64> {
        let state = self.surrogate_state(region)?;
        self.warm_thread_workspace(&state, scratch, max_batch)?;
        let asm = &state.assembly;

        if self.inputs.len() == 1 {
            if preserve_inputs {
                let Scratch {
                    staged, gathered, ..
                } = scratch;
                staged.resize(gathered[0].dims());
                staged.data_mut().copy_from_slice(gathered[0].data());
            } else {
                // Single input: the gathered batch *is* the staged batch.
                std::mem::swap(&mut scratch.staged, &mut scratch.gathered[0]);
            }
        } else {
            let rows = n * asm.rows;
            scratch.staged.resize(&[rows, asm.feat_total]);
            let sd = scratch.staged.data_mut();
            for (i, t) in scratch.gathered[..self.inputs.len()].iter().enumerate() {
                let (c, off) = (asm.cols[i], asm.col_offsets[i]);
                for (r, row) in t.data().chunks_exact(c).enumerate() {
                    sd[r * asm.feat_total + off..r * asm.feat_total + off + c].copy_from_slice(row);
                }
            }
        }
        scratch.dims_buf.clear();
        scratch.dims_buf.push(n * asm.in_dims[0]);
        scratch.dims_buf.extend_from_slice(&asm.in_dims[1..]);
        let Scratch {
            ws,
            staged,
            out,
            dims_buf,
            ..
        } = scratch;
        staged.reshape_in_place(dims_buf)?;
        // Serve at the region's current precision rung: the quantization
        // target, as demoted/promoted by the validation controller. Layers
        // without a pack for the rung fall through to the next finer one.
        let prec = region.serve_precision();
        let (y, inference_ns) = timed(|| state.model.infer_with_at(ws, staged, prec));
        std::mem::swap(out, y?);
        Ok(inference_ns)
    }
}

// ---------------------------------------------------------------------------
// The public Session API
// ---------------------------------------------------------------------------

/// A region compiled against concrete bindings and **per-sample** array
/// shapes — build once with [`Region::session`], invoke many times, batching
/// up to `max_batch` invocations into one forward pass with
/// [`Session::invoke_batch`]. See the [module docs] for the idiom.
///
/// [module docs]: self
pub struct Session<'r> {
    region: &'r Region,
    binds: Bindings,
    core: Arc<SessionCore>,
    max_batch: usize,
    /// (array name, scatter plan, per-sample model-output element offset) in
    /// `out()` declaration order.
    outputs: Vec<(String, Arc<CompiledMap>, usize)>,
}

impl<'r> Session<'r> {
    pub(crate) fn build(
        region: &'r Region,
        binds: &Bindings,
        shapes: &[(&str, &[usize])],
        max_batch: usize,
    ) -> Result<Session<'r>> {
        if max_batch == 0 {
            return Err(CoreError::Region(format!(
                "region `{}`: session max_batch must be at least 1",
                region.name()
            )));
        }
        let dims_of = |name: &str| -> Result<Vec<usize>> {
            shapes
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| d.to_vec())
                .ok_or_else(|| {
                    CoreError::Region(format!(
                        "region `{}`: session is missing a shape for array `{name}`",
                        region.name()
                    ))
                })
        };
        let mut inputs = Vec::new();
        for name in region.input_order() {
            inputs.push((name.clone(), dims_of(name)?));
        }
        let core = region.session_core(binds, &inputs)?;
        let mut outputs = Vec::new();
        let mut offset = 0usize;
        for name in region.output_order() {
            let dims = dims_of(name)?;
            let plan = region.plan_for(name, Direction::From, &dims, binds)?;
            let numel = plan.numel();
            outputs.push((name.clone(), plan, offset));
            offset += numel;
        }
        // If this core's model is already resolved (a second session built
        // on a cached core), warm the building thread's inference workspace
        // now — compiled models carry pre-packed weights, so after this the
        // builder's first invocation runs the steady-state kernels with
        // zero allocation. A first-time core keeps its lazy (and
        // stats-counted) resolution on first run, exactly as before.
        if let Some(state) = core.cached_surrogate_state() {
            let mut scratch = ScratchGuard::take();
            core.warm_thread_workspace(&state, &mut scratch, max_batch)?;
        }
        Ok(Session {
            region,
            binds: binds.clone(),
            core,
            max_batch,
            outputs,
        })
    }

    /// The region this session was compiled from.
    pub fn region(&self) -> &'r Region {
        self.region
    }

    /// The integer bindings this session was compiled against.
    pub fn bindings(&self) -> &Bindings {
        &self.binds
    }

    /// The largest runtime batch one invocation may carry.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Declared input arrays with their **per-sample** element counts, in
    /// assembly (declaration) order. A batched invocation's `input` data for
    /// array `i` holds `n *` this many elements, samples back to back.
    pub fn input_arrays(&self) -> impl Iterator<Item = (&str, usize)> {
        self.core
            .inputs
            .iter()
            .map(|(n, p)| (n.as_str(), p.array_numel()))
    }

    /// Declared output arrays with their **per-sample** element counts, in
    /// `out()` declaration order.
    pub fn output_arrays(&self) -> impl Iterator<Item = (&str, usize)> {
        self.outputs
            .iter()
            .map(|(n, p, _)| (n.as_str(), p.array_numel()))
    }

    /// Begin one invocation (a batch of 1). Cheap: borrows this thread's
    /// scratch buffers.
    pub fn invoke(&self) -> SessionRun<'_, 'r> {
        self.begin(1)
    }

    /// Begin one invocation carrying a runtime batch of `n` samples,
    /// `1 <= n <= max_batch`: every `input` supplies `n` per-sample arrays
    /// back to back, one forward pass serves all of them, and every `output`
    /// receives `n` per-sample results. Bit-identical to `n` sequential
    /// [`Session::invoke`] calls.
    pub fn invoke_batch(&self, n: usize) -> Result<SessionRun<'_, 'r>> {
        if n == 0 || n > self.max_batch {
            return Err(CoreError::Region(format!(
                "region `{}`: invoke_batch({n}) is outside 1..={} (the session's max_batch)",
                self.region.name(),
                self.max_batch
            )));
        }
        Ok(self.begin(n))
    }

    fn begin(&self, n: usize) -> SessionRun<'_, 'r> {
        let mut scratch = ScratchGuard::take();
        scratch.warm_buffers(&self.core, self.max_batch);
        SessionRun {
            session: self,
            scratch,
            n,
            surrogate_override: None,
            validation_exempt: false,
            supplied: 0,
            to_ns: 0,
        }
    }
}

/// In-flight shadow-validation bookkeeping for one drawn invocation: which
/// batch samples are compared, their per-sample error accumulators, and the
/// time attributable to validation (shadow host execution, reference
/// gathers, comparisons, probe passes).
pub(crate) struct ShadowState {
    v: Arc<RegionValidation>,
    /// This invocation's sequence number (the `invocation` column of the
    /// recorded validation rows).
    seq: u64,
    /// In-batch sample offsets being compared.
    offsets: Vec<usize>,
    /// One error accumulator per compared offset.
    accs: Vec<SampleError>,
    shadow_ns: u64,
}

impl ShadowState {
    /// Fold one output array's comparison into the per-sample accumulators.
    /// `reference` holds the gathered host results (`n * need` elements);
    /// the surrogate's values for sample `s` live at
    /// `model_out[s * stride + offset ..][..need]`.
    fn compare(
        &mut self,
        reference: &[f32],
        model_out: &[f32],
        stride: usize,
        offset: usize,
        need: usize,
    ) {
        for (acc, &s) in self.accs.iter_mut().zip(&self.offsets) {
            let host = &reference[s * need..(s + 1) * need];
            let model = &model_out[s * stride + offset..s * stride + offset + need];
            acc.update(host, model);
        }
    }
}

/// The input-gathering phase of one compiled invocation (batch of `n`).
pub struct SessionRun<'s, 'r> {
    session: &'s Session<'r>,
    scratch: ScratchGuard,
    /// Runtime batch carried by this invocation.
    n: usize,
    surrogate_override: Option<bool>,
    /// Skip the fallback gate and shadow-validation draw. Used by runtime
    /// internals ([`crate::serve::BatchServer`]) that implement their own
    /// validation loop over staged batches.
    validation_exempt: bool,
    /// Bitmask of supplied inputs; `SessionCore::build` rejects regions with
    /// more than 64 input arrays, so every index fits.
    supplied: u64,
    to_ns: u64,
}

impl<'s, 'r> SessionRun<'s, 'r> {
    /// Host-side value for the `predicated`/`if` decision, as on
    /// [`crate::Invocation::use_surrogate`].
    pub fn use_surrogate(mut self, value: bool) -> Self {
        self.surrogate_override = Some(value);
        self
    }

    /// Bypass the adaptive/forced fallback gate and the shadow-validation
    /// draw for this invocation. Crate-internal: the `BatchServer` gates and
    /// validates whole staged batches itself, and its recovery probes must
    /// reach the surrogate while the controller has it disabled.
    pub(crate) fn validation_exempt(mut self) -> Self {
        self.validation_exempt = true;
        self
    }

    /// Gather one input array through its precompiled plan (steps 1–2 of
    /// Fig. 1). For a batch of `n`, `data` holds the `n` per-sample arrays
    /// back to back (`n * per_sample_len` elements) and is gathered in one
    /// strided pass over the leading dimension. Steady-state allocation-free.
    pub fn input(mut self, name: &str, data: &[f32]) -> Result<Self> {
        let core = &self.session.core;
        let index = core.input_index(name).ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: `{name}` is not declared in(...)/inout(...)",
                self.session.region.name()
            ))
        })?;
        // index < 64 is guaranteed: SessionCore::build rejects wider arity.
        if self.supplied & (1 << index) != 0 {
            return Err(CoreError::Region(format!(
                "region `{}`: input `{name}` supplied twice",
                self.session.region.name()
            )));
        }
        let plan = core.input_plan(index);
        let n = self.n;
        let (res, ns) =
            timed(|| plan.gather_batch_into(data, n, &mut self.scratch.gathered[index]));
        res?;
        self.to_ns += ns;
        self.supplied |= 1 << index;
        Ok(self)
    }

    fn decide_surrogate(&self) -> Result<bool> {
        let region = self.session.region;
        Ok(match region.ml_mode() {
            MlMode::Infer => self.surrogate_override.unwrap_or(true),
            MlMode::Collect => false,
            MlMode::Predicated => match self
                .surrogate_override
                .or_else(|| region.default_predicate())
            {
                Some(v) => v,
                None => {
                    return Err(CoreError::Region(format!(
                        "region `{}`: predicated mode needs use_surrogate(...) \
                         (the directive condition `{}` is not a literal)",
                        region.name(),
                        region.ml().cond.as_deref().unwrap_or("")
                    )))
                }
            },
        })
    }

    /// `true` when every declared input has been supplied.
    fn inputs_complete(&self) -> bool {
        let count = self.session.core.input_count(); // <= 64 by SessionCore::build
        let all = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        count == 0 || self.supplied == all
    }

    fn missing_inputs_error(&self) -> CoreError {
        let missing: Vec<&str> = self
            .session
            .core
            .input_names()
            .enumerate()
            .filter(|(i, _)| self.supplied & (1 << i) == 0)
            .map(|(_, n)| n)
            .collect();
        CoreError::Region(format!(
            "region `{}`: surrogate run is missing input(s) {missing:?}",
            self.session.region.name()
        ))
    }

    /// Run the region (steps 3–4 of Fig. 1): one surrogate forward pass for
    /// the whole batch through the compiled pipeline, or the accurate closure
    /// (which is responsible for all `n` samples).
    ///
    /// With a [`crate::ValidationPolicy`] attached to the region, this is
    /// also where online validation happens: a drawn invocation
    /// shadow-executes `accurate` *in addition to* the surrogate pass (the
    /// comparison runs in [`SessionOutcome::output`], before the surrogate
    /// results overwrite the host buffers), and while the controller has the
    /// surrogate disabled — or [`Region::force_fallback`] is engaged — the
    /// accurate closure serves the invocation, bit-identical to an
    /// un-annotated application. Drawn invocations during adaptive fallback
    /// additionally *probe* the surrogate in shadow so the controller can
    /// observe recovery.
    pub fn run(mut self, accurate: impl FnOnce()) -> Result<SessionOutcome<'s, 'r>> {
        let region = self.session.region;
        let want = self.decide_surrogate()?;
        let mut surrogate = want;
        let mut fallback = false;
        let mut shadow: Option<ShadowState> = None;
        if want && !self.validation_exempt {
            if region.fallback_forced() {
                // Operator override: host code, model untouched, no probes.
                surrogate = false;
                fallback = true;
            } else if let Some(v) = region.validation() {
                if !v.enabled() {
                    surrogate = false;
                    fallback = true;
                }
                let mut offsets = Vec::new();
                let seq = v.draw(self.n, &mut offsets);
                if !offsets.is_empty() {
                    let metric = v.policy().metric;
                    shadow = Some(ShadowState {
                        accs: vec![SampleError::new(metric); offsets.len()],
                        v,
                        seq,
                        offsets,
                        shadow_ns: 0,
                    });
                }
            }
        }
        let mut accurate = Some(accurate);
        let mut inference_ns = 0u64;
        let mut accurate_ns = 0u64;
        if surrogate {
            if !self.inputs_complete() {
                return Err(self.missing_inputs_error());
            }
            // Shadow validation: run the original host code first, so the
            // caller's output buffers hold the reference values when
            // `output` compares them (the surrogate scatter then overwrites
            // them — the surrogate remains the primary path).
            if let Some(sh) = &mut shadow {
                let ((), ns) = timed(accurate.take().expect("accurate unconsumed"));
                sh.shadow_ns += ns;
            }
            match core_run(self.session, &mut self.scratch, self.n, false) {
                Ok(ns) => inference_ns = ns,
                Err(e) => {
                    // Permanent surrogate failure (model load / forward
                    // errored after retries): with a validation policy
                    // attached, degrade this invocation to the host closure
                    // and trip the controller so later ones skip the broken
                    // surrogate up front. Host buffers are untouched by a
                    // failed pass (scatter happens in `output`), so the
                    // accurate path stays bit-identical. Without a
                    // controller the error surfaces unchanged. An exempt
                    // invocation (a BatchServer pass) also surfaces: the
                    // server degrades whole batches itself.
                    if self.validation_exempt || !region.note_surrogate_failure(&e) {
                        return Err(e);
                    }
                    surrogate = false;
                    fallback = true;
                    if let Some(sh) = shadow.take() {
                        // The shadow already ran the host code; there is
                        // nothing to validate against a pass that produced
                        // no outputs.
                        accurate_ns = sh.shadow_ns;
                    }
                }
            }
        }
        if !surrogate {
            if let Some(acc) = accurate.take() {
                let ((), ns) = timed(acc);
                accurate_ns = ns;
            }
            // Recovery probe: while adaptively fallen back, a drawn
            // invocation also runs the surrogate in shadow; `output`
            // compares without scattering. Needs the full input set — a
            // caller that skipped inputs on the accurate path simply isn't
            // probed. A probe that itself fails is dropped (the invocation
            // is already served by the host code).
            if let Some(sh) = &mut shadow {
                if self.inputs_complete() {
                    let (res, pns) =
                        timed(|| core_run(self.session, &mut self.scratch, self.n, true));
                    match res {
                        Ok(_) => sh.shadow_ns += pns,
                        Err(e) => {
                            // The invocation is already served by the host
                            // code; a failed probe is dropped, never raised.
                            let _degraded = region.note_surrogate_failure(&e);
                            shadow = None;
                        }
                    }
                } else {
                    shadow = None;
                }
            }
        }
        Ok(SessionOutcome {
            session: self.session,
            scratch: self.scratch,
            n: self.n,
            supplied: self.supplied,
            path: if surrogate {
                PathTaken::Surrogate
            } else {
                PathTaken::Accurate
            },
            fallback,
            shadow,
            gathered_outputs: Vec::new(),
            to_ns: self.to_ns,
            inference_ns,
            accurate_ns,
            from_ns: 0,
            collection_ns: 0,
        })
    }
}

/// One compiled surrogate pass through the session's core (helper shared by
/// the primary path and the fallback recovery probe).
fn core_run(
    session: &Session<'_>,
    scratch: &mut Scratch,
    n: usize,
    preserve_inputs: bool,
) -> Result<u64> {
    session.core.run_surrogate(
        session.region,
        scratch,
        n,
        session.max_batch,
        preserve_inputs,
    )
}

/// The output phase of a compiled invocation.
pub struct SessionOutcome<'s, 'r> {
    session: &'s Session<'r>,
    scratch: ScratchGuard,
    n: usize,
    supplied: u64,
    path: PathTaken,
    /// This invocation wanted the surrogate but was served by the host code
    /// (adaptive or forced fallback).
    fallback: bool,
    /// Shadow-validation bookkeeping for a drawn invocation.
    shadow: Option<ShadowState>,
    /// Accurate-path outputs gathered for data collection: (index into the
    /// session's output declarations, batched gathered tensor).
    gathered_outputs: Vec<(usize, Tensor)>,
    to_ns: u64,
    inference_ns: u64,
    accurate_ns: u64,
    from_ns: u64,
    collection_ns: u64,
}

impl SessionOutcome<'_, '_> {
    pub fn path(&self) -> PathTaken {
        self.path
    }

    /// Handle one output array (steps 5–6 of Fig. 1): scatter each sample's
    /// chunk of the model output through the precompiled plan in one strided
    /// pass, or gather the accurate results for collection. For a batch of
    /// `n`, `data` receives the `n` per-sample arrays back to back. The chunk
    /// offsets were fixed at session build, so outputs may be supplied in any
    /// order. Steady-state allocation-free on the surrogate path.
    pub fn output(&mut self, name: &str, data: &mut [f32]) -> Result<&mut Self> {
        let (decl_index, (_, plan, offset)) = self
            .session
            .outputs
            .iter()
            .enumerate()
            .find(|(_, (n, _, _))| n == name)
            .ok_or_else(|| {
                CoreError::Region(format!(
                    "region `{}`: `{name}` is not declared out(...)/inout(...)",
                    self.session.region.name()
                ))
            })?;
        match self.path {
            PathTaken::Surrogate => {
                let (need, stride) = self.model_output_layout(name, plan, *offset)?;
                // Shadow validation: `data` still holds the host code's
                // results; gather them through the same plan and score the
                // model's values for the drawn samples — *before* the
                // scatter overwrites the buffer with the surrogate results.
                if let Some(sh) = &mut self.shadow {
                    let n = self.n;
                    let out = &self.scratch.out;
                    let (res, ns) = timed(|| -> Result<()> {
                        let mut reference = Tensor::default();
                        plan.gather_batch_into(data, n, &mut reference)?;
                        sh.compare(reference.data(), out.data(), stride, *offset, need);
                        Ok(())
                    });
                    sh.shadow_ns += ns;
                    res?;
                }
                let n = self.n;
                let src = self.scratch.out.data();
                let (res, ns) = timed(|| plan.scatter_batch(src, stride, *offset, n, data));
                self.from_ns += ns;
                res?;
            }
            PathTaken::Accurate => {
                // Fallback-served invocations *wanted* the surrogate; they
                // run the host code for safety, not to collect training
                // data — recording them would silently grow the db for
                // every invocation of a sustained fallback period.
                let collecting = !self.fallback && self.session.region.db_path().is_some();
                if collecting || self.shadow.is_some() {
                    // One gather serves both data collection and the
                    // fallback recovery probe's reference values.
                    let mut gathered = Tensor::default();
                    let n = self.n;
                    let (res, ns) = timed(|| plan.gather_batch_into(data, n, &mut gathered));
                    if collecting {
                        self.collection_ns += ns;
                    }
                    res?;
                    let layout = self
                        .shadow
                        .is_some()
                        .then(|| self.model_output_layout(name, plan, *offset))
                        .transpose()?;
                    if let (Some(sh), Some((need, stride))) = (self.shadow.as_mut(), layout) {
                        let out = &self.scratch.out;
                        let ((), cns) = timed(|| {
                            sh.compare(gathered.data(), out.data(), stride, *offset, need)
                        });
                        sh.shadow_ns += cns;
                    }
                    if collecting {
                        self.gathered_outputs.push((decl_index, gathered));
                    }
                }
            }
        }
        Ok(self)
    }

    /// Per-sample layout of `scratch.out` for one declared output: its
    /// element count and the per-sample stride through the model output.
    /// Errors when the model's production does not tile the batch.
    fn model_output_layout(
        &self,
        name: &str,
        plan: &CompiledMap,
        offset: usize,
    ) -> Result<(usize, usize)> {
        let need = plan.numel();
        let produced = self.scratch.out.numel();
        // Per-sample stride through the model output: the forward pass
        // stacks `n` per-sample outputs along the leading dim.
        let stride = produced / self.n.max(1);
        if !produced.is_multiple_of(self.n.max(1)) || stride < offset + need {
            return Err(CoreError::Region(format!(
                "region `{}`: model produced {produced} elements for a batch of {} \
                 but output `{name}` needs {need} at per-sample offset {offset}",
                self.session.region.name(),
                self.n
            )));
        }
        Ok((need, stride))
    }

    /// Finalize: persist collected data, feed any shadow-validation errors
    /// into the fallback controller (recording their rows), and fold
    /// timings into the region stats. A batch of `n` records `n` collection
    /// rows — exactly what `n` sequential one-shot invocations would have
    /// recorded. The scratch buffers return to this thread for the next
    /// invocation when `self` drops — including on error or early-drop
    /// paths.
    pub fn finish(mut self) -> Result<PathTaken> {
        let path = self.path;
        let region = self.session.region;
        let n = self.n;
        let mut collection_ns = self.collection_ns;
        if let Some(sh) = self.shadow.take() {
            // Only samples whose outputs were actually compared feed the
            // controller: a caller that never read an output on this
            // invocation must not inject fabricated zero errors.
            let errors: Vec<f64> = sh
                .accs
                .iter()
                .filter(|a| a.compared())
                .map(SampleError::finalize)
                .collect();
            if !errors.is_empty() {
                region.observe_validation(&sh.v, sh.seq, &errors, sh.shadow_ns)?;
            }
        }
        if path == PathTaken::Accurate && !self.fallback && region.db_path().is_some() {
            let core = &self.session.core;
            let inputs: Vec<(&str, &[usize], &[f32])> = (0..core.input_count())
                .filter(|i| self.supplied & (1 << i) != 0)
                .map(|i| {
                    let plan = core.input_plan(i);
                    (
                        core.inputs[i].0.as_str(),
                        plan.lhs_shape.as_slice(),
                        self.scratch.gathered[i].data(),
                    )
                })
                .collect();
            let outputs: Vec<(&str, &[usize], &[f32])> = self
                .gathered_outputs
                .iter()
                .map(|(decl, t)| {
                    let (name, plan, _) = &self.session.outputs[*decl];
                    (name.as_str(), plan.lhs_shape.as_slice(), t.data())
                })
                .collect();
            let (res, ns) = timed(|| {
                region.record_collection_batch(n, &inputs, &outputs, self.accurate_ns / n as u64)
            });
            res?;
            collection_ns += ns;
        }
        region.update_stats(|s| {
            s.invocations += n as u64;
            if self.fallback {
                s.fallback_invocations += n as u64;
            }
            if path == PathTaken::Surrogate {
                s.surrogate_invocations += n as u64;
                s.batch_submitted += n as u64;
                s.batches_flushed += 1;
            }
            s.to_tensor_ns += self.to_ns;
            s.inference_ns += self.inference_ns;
            s.from_tensor_ns += self.from_ns;
            s.accurate_ns += self.accurate_ns;
            s.collection_ns += collection_ns;
        });
        Ok(path)
    }
}
