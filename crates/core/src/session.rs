//! Compiled invocations: the compile-once / invoke-many fast path.
//!
//! A [`Session`] is a region *compiled* against concrete integer bindings and
//! array shapes, the same separation an ML runtime draws between a model and
//! its optimized executable plan. Building a session resolves, once:
//!
//! * the gather plan for every `in(...)`/`inout(...)` array and the scatter
//!   plan for every `out(...)`/`inout(...)` array (shared with the region's
//!   plan cache, so the one-shot API benefits too);
//! * the model handle (`Arc<SavedModel>`) — invoke-time inference never
//!   hashes a path into the engine cache again;
//! * the input-assembly layout: flatten/concat/reshape become precomputed
//!   row/column offsets, so building the model input is a straight strided
//!   copy into a staging buffer.
//!
//! Per-invocation scratch (gathered tensors, the staging buffer, the NN
//! inference workspace) lives in a per-thread scratch slot that each run
//! borrows and returns, so a thread in steady state performs **no heap
//! allocation** between `invoke()` and `finish()` on the surrogate path. A
//! `Session` is `Sync`: many threads may invoke the same compiled session
//! concurrently, each on its own scratch.
//!
//! ```no_run
//! # fn main() -> hpacml_core::Result<()> {
//! # let region = hpacml_core::Region::from_source("r", "")?;
//! # let binds = hpacml_directive::sema::Bindings::new();
//! # let (n, m) = (8usize, 8usize);
//! # let t = vec![0.0f32; n * m]; let mut tnew = vec![0.0f32; n * m];
//! // Compile once...
//! let session = region.session(&binds, &[("t", &[n, m]), ("tnew", &[n, m])])?;
//! // ...invoke many times.
//! for _ in 0..1_000_000 {
//!     let mut out = session.invoke().input("t", &t)?.run(|| { /* accurate */ })?;
//!     out.output("tnew", &mut tnew)?;
//!     out.finish()?;
//! }
//! # Ok(())
//! # }
//! ```

use crate::exec::PathTaken;
use crate::region::Region;
use crate::timing::timed;
use crate::{CoreError, Result};
use hpacml_bridge::CompiledMap;
use hpacml_directive::ast::{Direction, MlMode};
use hpacml_directive::sema::Bindings;
use hpacml_nn::{InferWorkspace, SavedModel};
use hpacml_tensor::Tensor;
use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Per-thread scratch
// ---------------------------------------------------------------------------

/// Reusable per-invocation buffers. Taken from a thread-local slot at
/// `invoke()` and returned when the invocation's [`ScratchGuard`] drops, so
/// nested invocations (a region invoked from inside another region's
/// accurate closure) each get their own scratch instead of fighting over a
/// `RefCell`.
#[derive(Default)]
pub(crate) struct Scratch {
    /// One gathered tensor per declared input (assembly order).
    pub(crate) gathered: Vec<Tensor>,
    /// Staged model-input batch (assembled from `gathered`).
    pub(crate) staged: Tensor,
    /// NN inference workspace (normalization staging + activation arenas).
    pub(crate) ws: InferWorkspace,
    /// Model output of the current run (swapped out of the arena).
    pub(crate) out: Tensor,
}

impl Scratch {
    pub(crate) fn ensure_inputs(&mut self, n: usize) {
        if self.gathered.len() < n {
            self.gathered.resize_with(n, Tensor::default);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<Option<Scratch>> = const { RefCell::new(None) };
}

/// Owns this thread's warmed [`Scratch`] for the duration of one invocation
/// and returns it to the thread-local slot when dropped — on `finish()`,
/// early return, *or* an error path — so the zero-allocation steady state
/// survives recoverable failures.
pub(crate) struct ScratchGuard(Option<Scratch>);

impl ScratchGuard {
    pub(crate) fn take() -> Self {
        ScratchGuard(Some(
            SCRATCH
                .with(|slot| slot.borrow_mut().take())
                .unwrap_or_default(),
        ))
    }
}

impl std::ops::Deref for ScratchGuard {
    type Target = Scratch;
    fn deref(&self) -> &Scratch {
        self.0.as_ref().expect("scratch present until drop")
    }
}

impl std::ops::DerefMut for ScratchGuard {
    fn deref_mut(&mut self) -> &mut Scratch {
        self.0.as_mut().expect("scratch present until drop")
    }
}

impl Drop for ScratchGuard {
    fn drop(&mut self) {
        if let Some(scratch) = self.0.take() {
            SCRATCH.with(|slot| {
                let mut slot = slot.borrow_mut();
                if slot.is_none() {
                    *slot = Some(scratch);
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Session core: the cached, shareable compiled state
// ---------------------------------------------------------------------------

/// Cache key for compiled invocation cores.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SessionKey {
    binds: Vec<(String, i64)>,
    inputs: Vec<(String, Vec<usize>)>,
}

impl SessionKey {
    pub(crate) fn new(binds: &Bindings, inputs: &[(String, Vec<usize>)]) -> Self {
        SessionKey {
            binds: binds.iter().map(|(n, v)| (n.to_string(), v)).collect(),
            inputs: inputs.to_vec(),
        }
    }
}

/// Precomputed input-assembly layout: how the gathered input tensors tile the
/// model's `[batch, sample...]` input, derived once from the plans' LHS
/// shapes and the model spec.
struct Assembly {
    /// Common sweep-row count across inputs.
    rows: usize,
    /// Feature columns contributed by each input (its LHS trailing dim).
    cols: Vec<usize>,
    /// Column offset of each input inside one assembled row.
    col_offsets: Vec<usize>,
    /// Total features per row (`cols` summed).
    feat_total: usize,
    /// Final model-input dims: `[batch, sample_shape...]`.
    in_dims: Vec<usize>,
}

/// Model handle plus assembly layout, resolved lazily on the first surrogate
/// run (so collect-phase sessions whose model file does not exist yet build
/// fine).
struct SurrogateState {
    model: Arc<SavedModel>,
    assembly: Assembly,
}

/// The compiled, shareable part of a session: input gather plans in assembly
/// order plus the lazily resolved surrogate state. Cached on the region per
/// (bindings, input shapes) so the one-shot `invoke` path compiles once too.
pub(crate) struct SessionCore {
    /// (array name, gather plan) in assembly order.
    inputs: Vec<(String, Arc<CompiledMap>)>,
    surrogate: Mutex<Option<Arc<SurrogateState>>>,
}

impl std::fmt::Debug for SessionCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCore")
            .field(
                "inputs",
                &self.inputs.iter().map(|(n, _)| n).collect::<Vec<_>>(),
            )
            .field("surrogate_resolved", &self.surrogate.lock().is_some())
            .finish()
    }
}

impl SessionCore {
    pub(crate) fn build(
        region: &Region,
        binds: &Bindings,
        inputs: &[(String, Vec<usize>)],
    ) -> Result<SessionCore> {
        // The per-run supplied-input bookkeeping is a u64 bitmask; enforce
        // the arity bound here so that invariant holds everywhere downstream.
        if inputs.len() > 64 {
            return Err(CoreError::Region(format!(
                "region `{}`: {} input arrays exceed the supported maximum of 64",
                region.name(),
                inputs.len()
            )));
        }
        let mut plans = Vec::with_capacity(inputs.len());
        for (name, dims) in inputs {
            let plan = region.plan_for(name, Direction::To, dims, binds)?;
            plans.push((name.clone(), plan));
        }
        Ok(SessionCore {
            inputs: plans,
            surrogate: Mutex::new(None),
        })
    }

    pub(crate) fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|(n, _)| n == name)
    }

    pub(crate) fn input_plan(&self, index: usize) -> &Arc<CompiledMap> {
        &self.inputs[index].1
    }

    pub(crate) fn input_count(&self) -> usize {
        self.inputs.len()
    }

    pub(crate) fn input_names(&self) -> impl Iterator<Item = &str> {
        self.inputs.iter().map(|(n, _)| n.as_str())
    }

    /// Resolve (or reuse) the model handle + assembly layout.
    fn surrogate_state(&self, region: &Region) -> Result<Arc<SurrogateState>> {
        if let Some(state) = self.surrogate.lock().as_ref() {
            region.update_stats(|s| s.model_cache_hits += 1);
            return Ok(Arc::clone(state));
        }
        let model = region.resolve_model()?;
        let assembly = self.assembly_for(region, &model)?;
        let state = Arc::new(SurrogateState { model, assembly });
        let mut guard = self.surrogate.lock();
        Ok(Arc::clone(guard.get_or_insert(state)))
    }

    /// Derive the assembly layout from the input plans' LHS shapes and the
    /// model's declared per-sample input shape. Mirrors the semantics of the
    /// historical flatten→concat→reshape chain, as straight offsets.
    fn assembly_for(&self, region: &Region, model: &SavedModel) -> Result<Assembly> {
        if self.inputs.is_empty() {
            return Err(CoreError::Region(format!(
                "region `{}`: surrogate path needs gathered inputs",
                region.name()
            )));
        }
        let mut rows = 0usize;
        let mut cols = Vec::with_capacity(self.inputs.len());
        let mut col_offsets = Vec::with_capacity(self.inputs.len());
        let mut feat_total = 0usize;
        for (i, (name, plan)) in self.inputs.iter().enumerate() {
            let numel = plan.numel();
            let c = plan.lhs_shape.last().copied().unwrap_or(1).max(1);
            let r = numel / c;
            if i == 0 {
                rows = r;
            } else if r != rows && self.inputs.len() > 1 {
                return Err(CoreError::Region(format!(
                    "region `{}`: inputs disagree on sweep size ({r} vs {rows}) at `{name}`",
                    region.name()
                )));
            }
            col_offsets.push(feat_total);
            cols.push(c);
            feat_total += c;
        }
        let total = rows * feat_total;
        let sample_shape = &model.spec.input_shape;
        let per_sample: usize = sample_shape.iter().product::<usize>().max(1);
        if !total.is_multiple_of(per_sample) {
            return Err(CoreError::Region(format!(
                "region `{}`: gathered {total} elements do not tile the model input shape {sample_shape:?}",
                region.name()
            )));
        }
        let batch = total / per_sample;
        let mut in_dims = Vec::with_capacity(1 + sample_shape.len());
        in_dims.push(batch);
        in_dims.extend_from_slice(sample_shape);
        Ok(Assembly {
            rows,
            cols,
            col_offsets,
            feat_total,
            in_dims,
        })
    }

    /// Execute the surrogate: assemble the staged batch from the gathered
    /// inputs, run inference into the scratch workspace, and leave the model
    /// output in `scratch.out`. Returns the inference time in nanoseconds.
    /// Steady-state allocation-free.
    pub(crate) fn run_surrogate(&self, region: &Region, scratch: &mut Scratch) -> Result<u64> {
        let state = self.surrogate_state(region)?;
        let asm = &state.assembly;
        if self.inputs.len() == 1 {
            // Single input: the gathered tensor *is* the staged batch.
            std::mem::swap(&mut scratch.staged, &mut scratch.gathered[0]);
        } else {
            scratch.staged.resize(&[asm.rows, asm.feat_total]);
            let sd = scratch.staged.data_mut();
            for (i, t) in scratch.gathered[..self.inputs.len()].iter().enumerate() {
                let (c, off) = (asm.cols[i], asm.col_offsets[i]);
                for (r, row) in t.data().chunks_exact(c).enumerate() {
                    sd[r * asm.feat_total + off..r * asm.feat_total + off + c].copy_from_slice(row);
                }
            }
        }
        scratch.staged.reshape_in_place(&asm.in_dims)?;
        let Scratch {
            ws, staged, out, ..
        } = scratch;
        let (y, inference_ns) = timed(|| state.model.infer_with(ws, staged));
        std::mem::swap(out, y?);
        Ok(inference_ns)
    }
}

// ---------------------------------------------------------------------------
// The public Session API
// ---------------------------------------------------------------------------

/// A region compiled against concrete bindings and array shapes — build once
/// with [`Region::session`], invoke many times. See the [module docs] for
/// the idiom.
///
/// [module docs]: self
pub struct Session<'r> {
    region: &'r Region,
    binds: Bindings,
    core: Arc<SessionCore>,
    /// (array name, scatter plan, model-output element offset) in `out()`
    /// declaration order.
    outputs: Vec<(String, Arc<CompiledMap>, usize)>,
}

impl<'r> Session<'r> {
    pub(crate) fn build(
        region: &'r Region,
        binds: &Bindings,
        shapes: &[(&str, &[usize])],
    ) -> Result<Session<'r>> {
        let dims_of = |name: &str| -> Result<Vec<usize>> {
            shapes
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, d)| d.to_vec())
                .ok_or_else(|| {
                    CoreError::Region(format!(
                        "region `{}`: session is missing a shape for array `{name}`",
                        region.name()
                    ))
                })
        };
        let mut inputs = Vec::new();
        for name in region.input_order() {
            inputs.push((name.clone(), dims_of(name)?));
        }
        let core = region.session_core(binds, &inputs)?;
        let mut outputs = Vec::new();
        let mut offset = 0usize;
        for name in region.output_order() {
            let dims = dims_of(name)?;
            let plan = region.plan_for(name, Direction::From, &dims, binds)?;
            let numel = plan.numel();
            outputs.push((name.clone(), plan, offset));
            offset += numel;
        }
        Ok(Session {
            region,
            binds: binds.clone(),
            core,
            outputs,
        })
    }

    /// The region this session was compiled from.
    pub fn region(&self) -> &'r Region {
        self.region
    }

    /// The integer bindings this session was compiled against.
    pub fn bindings(&self) -> &Bindings {
        &self.binds
    }

    /// Begin one invocation. Cheap: borrows this thread's scratch buffers.
    pub fn invoke(&self) -> SessionRun<'_, 'r> {
        SessionRun {
            session: self,
            scratch: ScratchGuard::take(),
            surrogate_override: None,
            supplied: 0,
            to_ns: 0,
        }
    }
}

/// The input-gathering phase of one compiled invocation.
pub struct SessionRun<'s, 'r> {
    session: &'s Session<'r>,
    scratch: ScratchGuard,
    surrogate_override: Option<bool>,
    /// Bitmask of supplied inputs; `SessionCore::build` rejects regions with
    /// more than 64 input arrays, so every index fits.
    supplied: u64,
    to_ns: u64,
}

impl<'s, 'r> SessionRun<'s, 'r> {
    /// Host-side value for the `predicated`/`if` decision, as on
    /// [`crate::Invocation::use_surrogate`].
    pub fn use_surrogate(mut self, value: bool) -> Self {
        self.surrogate_override = Some(value);
        self
    }

    /// Gather one input array through its precompiled plan (steps 1–2 of
    /// Fig. 1). Steady-state allocation-free.
    pub fn input(mut self, name: &str, data: &[f32]) -> Result<Self> {
        let core = &self.session.core;
        let index = core.input_index(name).ok_or_else(|| {
            CoreError::Region(format!(
                "region `{}`: `{name}` is not declared in(...)/inout(...)",
                self.session.region.name()
            ))
        })?;
        // index < 64 is guaranteed: SessionCore::build rejects wider arity.
        if self.supplied & (1 << index) != 0 {
            return Err(CoreError::Region(format!(
                "region `{}`: input `{name}` supplied twice",
                self.session.region.name()
            )));
        }
        self.scratch.ensure_inputs(core.input_count());
        let plan = core.input_plan(index);
        let (res, ns) = timed(|| plan.gather_into(data, &mut self.scratch.gathered[index]));
        res?;
        self.to_ns += ns;
        self.supplied |= 1 << index;
        Ok(self)
    }

    fn decide_surrogate(&self) -> Result<bool> {
        let region = self.session.region;
        Ok(match region.ml_mode() {
            MlMode::Infer => self.surrogate_override.unwrap_or(true),
            MlMode::Collect => false,
            MlMode::Predicated => match self
                .surrogate_override
                .or_else(|| region.default_predicate())
            {
                Some(v) => v,
                None => {
                    return Err(CoreError::Region(format!(
                        "region `{}`: predicated mode needs use_surrogate(...) \
                         (the directive condition `{}` is not a literal)",
                        region.name(),
                        region.ml().cond.as_deref().unwrap_or("")
                    )))
                }
            },
        })
    }

    /// Run the region (steps 3–4 of Fig. 1): surrogate inference through the
    /// compiled pipeline, or the accurate closure.
    pub fn run(mut self, accurate: impl FnOnce()) -> Result<SessionOutcome<'s, 'r>> {
        let surrogate = self.decide_surrogate()?;
        let (inference_ns, accurate_ns) = if surrogate {
            let core = &self.session.core;
            let count = core.input_count(); // <= 64 by SessionCore::build
            let all = if count == 64 {
                u64::MAX
            } else {
                (1u64 << count) - 1
            };
            if count > 0 && self.supplied != all {
                let missing: Vec<&str> = core
                    .input_names()
                    .enumerate()
                    .filter(|(i, _)| self.supplied & (1 << i) == 0)
                    .map(|(_, n)| n)
                    .collect();
                return Err(CoreError::Region(format!(
                    "region `{}`: surrogate run is missing input(s) {missing:?}",
                    self.session.region.name()
                )));
            }
            let ns = core.run_surrogate(self.session.region, &mut self.scratch)?;
            (ns, 0)
        } else {
            let ((), ns) = timed(accurate);
            (0, ns)
        };
        Ok(SessionOutcome {
            session: self.session,
            scratch: self.scratch,
            supplied: self.supplied,
            path: if surrogate {
                PathTaken::Surrogate
            } else {
                PathTaken::Accurate
            },
            gathered_outputs: Vec::new(),
            to_ns: self.to_ns,
            inference_ns,
            accurate_ns,
            from_ns: 0,
            collection_ns: 0,
        })
    }
}

/// The output phase of a compiled invocation.
pub struct SessionOutcome<'s, 'r> {
    session: &'s Session<'r>,
    scratch: ScratchGuard,
    supplied: u64,
    path: PathTaken,
    /// Accurate-path outputs gathered for data collection.
    gathered_outputs: Vec<(String, Tensor)>,
    to_ns: u64,
    inference_ns: u64,
    accurate_ns: u64,
    from_ns: u64,
    collection_ns: u64,
}

impl SessionOutcome<'_, '_> {
    pub fn path(&self) -> PathTaken {
        self.path
    }

    /// Handle one output array (steps 5–6 of Fig. 1): scatter the model
    /// output chunk through the precompiled plan, or gather the accurate
    /// result for collection. The chunk offsets were fixed at session build,
    /// so outputs may be supplied in any order. Steady-state allocation-free
    /// on the surrogate path.
    pub fn output(&mut self, name: &str, data: &mut [f32]) -> Result<&mut Self> {
        let (_, plan, offset) = self
            .session
            .outputs
            .iter()
            .find(|(n, _, _)| n == name)
            .ok_or_else(|| {
                CoreError::Region(format!(
                    "region `{}`: `{name}` is not declared out(...)/inout(...)",
                    self.session.region.name()
                ))
            })?;
        match self.path {
            PathTaken::Surrogate => {
                let need = plan.numel();
                let produced = self.scratch.out.numel();
                if produced < offset + need {
                    return Err(CoreError::Region(format!(
                        "region `{}`: model produced {produced} elements but output `{name}` \
                         needs {need} at offset {offset}",
                        self.session.region.name()
                    )));
                }
                let chunk = &self.scratch.out.data()[*offset..offset + need];
                let (res, ns) = timed(|| plan.scatter_slice(chunk, data));
                self.from_ns += ns;
                res?;
            }
            PathTaken::Accurate => {
                if self.session.region.db_path().is_some() {
                    let (tensor, ns) = timed(|| plan.gather(data));
                    self.collection_ns += ns;
                    self.gathered_outputs.push((name.to_string(), tensor?));
                }
            }
        }
        Ok(self)
    }

    /// Finalize: persist collected data and fold timings into the region
    /// stats. The scratch buffers return to this thread for the next
    /// invocation when `self` drops — including on error or early-drop paths.
    pub fn finish(self) -> Result<PathTaken> {
        let path = self.path;
        let region = self.session.region;
        let mut collection_ns = self.collection_ns;
        if path == PathTaken::Accurate && region.db_path().is_some() {
            let inputs: Vec<(&str, &Tensor)> = self
                .session
                .core
                .input_names()
                .zip(&self.scratch.gathered)
                .enumerate()
                .filter(|(i, _)| self.supplied & (1 << i) != 0)
                .map(|(_, pair)| pair)
                .collect();
            let outputs: Vec<(&str, &Tensor)> = self
                .gathered_outputs
                .iter()
                .map(|(n, t)| (n.as_str(), t))
                .collect();
            let (res, ns) = timed(|| region.record_collection(&inputs, &outputs, self.accurate_ns));
            res?;
            collection_ns += ns;
        }
        region.update_stats(|s| {
            s.invocations += 1;
            if path == PathTaken::Surrogate {
                s.surrogate_invocations += 1;
            }
            s.to_tensor_ns += self.to_ns;
            s.inference_ns += self.inference_ns;
            s.from_tensor_ns += self.from_ns;
            s.accurate_ns += self.accurate_ns;
            s.collection_ns += collection_ns;
        });
        Ok(path)
    }
}
