//! HPAC-ML execution control and the public programming model.
//!
//! This crate is the runtime the paper's §IV-B describes. An application
//! annotates a code region with directive strings (the pragmas of Fig. 2);
//! the [`region::Region`] built from them owns the compiled data-bridge
//! plans, the ml-mode decision logic, the persistent-store handle and the
//! per-phase timers.
//!
//! An invocation is phase-structured to satisfy Rust's aliasing rules (and,
//! incidentally, to mirror the numbered steps of the paper's Fig. 1):
//!
//! ```no_run
//! use hpacml_core::Region;
//! use hpacml_directive::sema::Bindings;
//!
//! # fn do_timestep(t: &[f32], tnew: &mut [f32]) {}
//! # fn main() -> hpacml_core::Result<()> {
//! let source = r#"
//!     #pragma approx tensor functor(ifnctr: [i, j, 0:5] = (([i-1, j], [i+1, j], [i, j-1:j+2])))
//!     #pragma approx tensor functor(ofnctr: [i, j, 0:1] = ([i, j]))
//!     #pragma approx tensor map(to: ifnctr(t[1:N-1, 1:M-1]))
//!     #pragma approx tensor map(from: ofnctr(tnew[1:N-1, 1:M-1]))
//!     #pragma approx ml(predicated:false) in(t) out(tnew) db("d.h5") model("m.hml")
//! "#;
//! let (n, m) = (10usize, 12usize);
//! let region = Region::from_source("stencil", source)?;
//! let bindings = Bindings::new().with("N", n as i64).with("M", m as i64);
//! let t = vec![0.0f32; n * m];
//! let mut tnew = vec![0.0f32; n * m];
//!
//! let inv = region.invoke(&bindings)              // one region invocation
//!     .input("t", &t, &[n, m])?;                  // steps 1–2: gather inputs
//! let mut out = inv.run(|| do_timestep(&t, &mut tnew))?;
//!                                                 // steps 3–4: accurate path
//!                                                 //   or model inference
//! out.output("tnew", &mut tnew, &[n, m])?;        // steps 5–6: scatter or
//!                                                 //   gather outputs
//! out.finish()?;                                  // step 7: persist, time
//! # Ok(())
//! # }
//! ```
//!
//! In `collect` mode the accurate closure runs and the gathered input/output
//! tensors plus the region's execution time are appended to an h5lite file
//! (one group per region, datasets `inputs`, `outputs`, `region_time_ns` —
//! the layout §IV-B specifies). In `infer` mode the closure is skipped and
//! the surrogate loaded from the `model` clause produces the outputs.
//! `predicated` chooses per invocation from a host boolean.
//!
//! Invocation is a *two-phase compiled pipeline*: the first invocation with a
//! given (bindings, shapes) combination compiles the bridge plans, resolves
//! the model handle and derives the input-assembly layout; every later
//! invocation reuses them from the region's caches. Hot loops should compile
//! the region into a [`Session`] once ([`Region::session`]) and invoke that —
//! it skips even the per-call cache lookups and runs allocation-free in
//! steady state. See the [`session`] module docs for the idiom.
//!
//! The batch dimension is a **runtime parameter**: a session is compiled for
//! *per-sample* shapes plus a `max_batch`, and [`Session::invoke_batch`]
//! folds any `1..=max_batch` logical invocations into one forward pass —
//! bit-identical to the same invocations run one by one. For concurrent
//! callers, [`serve::BatchServer`] coalesces submissions from many threads
//! into shared batched passes. See the [`session`] and [`serve`] module docs.
//!
//! Online **validation** closes the accuracy loop: a [`ValidationPolicy`]
//! attached to a region shadow-executes the original host code on a sampled
//! fraction of invocations, scores the surrogate against it, and adaptively
//! falls back to the (bit-identical) host code when the rolling error
//! exceeds the budget — re-enabling once a window of probes recovers. See
//! the [`validate`] module docs.
//!
//! **Reduced-precision serving** rides the same loop: a [`PrecisionPolicy`]
//! attached with [`Region::set_precision_policy`] quantizes the region's
//! model (bf16 or int8 weights, f32 accumulation), calibrates the quantized
//! rungs on collected input rows from the region db, and installs an
//! `int8 → bf16 → f32 → host` demotion ladder into the validation
//! controller — over-budget windows demote one rung at a time before the
//! surrogate is disabled outright, and sustained healthy windows promote
//! back toward the target.

pub mod error;
pub mod exec;
pub mod region;
pub mod registry;
pub mod serve;
pub mod session;
pub mod timing;
pub mod validate;

pub use error::{CoreError, ServeError};
pub use exec::{Invocation, Outcome, PathTaken};
pub use hpacml_faults::retry::RetryPolicy;
pub use hpacml_nn::PrecisionPolicy;
pub use hpacml_tensor::Precision;
pub use region::{PrecisionReport, Region, RegionBuilder};
pub use registry::{registered_regions, RegionRecord};
pub use serve::BatchServer;
pub use session::{Session, SessionOutcome, SessionRun};
pub use timing::RegionStats;
pub use validate::{ErrorMetric, FallbackController, ValidationPolicy};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
