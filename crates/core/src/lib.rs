//! HPAC-ML execution control and the public programming model.
//!
//! This crate is the runtime the paper's §IV-B describes. An application
//! annotates a code region with directive strings (the pragmas of Fig. 2);
//! the [`region::Region`] built from them owns the compiled data-bridge
//! plans, the ml-mode decision logic, the persistent-store handle and the
//! per-phase timers.
//!
//! An invocation is phase-structured to satisfy Rust's aliasing rules (and,
//! incidentally, to mirror the numbered steps of the paper's Fig. 1):
//!
//! ```text
//! let mut inv = region.invoke(&bindings);         //
//! inv.input("t", &t, &[n, m])?;                   // steps 1–2: gather inputs
//! let mut out = inv.run(|| do_timestep(...))?;    // steps 3–4: accurate path
//!                                                 //   or model inference
//! out.output("tnew", &mut tnew, &[n, m])?;        // steps 5–6: scatter or
//!                                                 //   gather outputs
//! out.finish()?;                                  // step 7: persist, time
//! ```
//!
//! In `collect` mode the accurate closure runs and the gathered input/output
//! tensors plus the region's execution time are appended to an h5lite file
//! (one group per region, datasets `inputs`, `outputs`, `region_time_ns` —
//! the layout §IV-B specifies). In `infer` mode the closure is skipped and
//! the surrogate loaded from the `model` clause produces the outputs.
//! `predicated` chooses per invocation from a host boolean.

pub mod error;
pub mod exec;
pub mod region;
pub mod registry;
pub mod timing;

pub use error::CoreError;
pub use exec::{Invocation, Outcome, PathTaken};
pub use region::{Region, RegionBuilder};
pub use registry::{registered_regions, RegionRecord};
pub use timing::RegionStats;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, CoreError>;
