//! Per-phase wall-clock accounting.
//!
//! The paper's Fig. 6 breaks inference-mode runtime into "To Tensor",
//! "Inference Engine" and "From Tensor"; Table III measures the overhead of
//! data collection. [`RegionStats`] accumulates all of those per region.

use std::time::Instant;

/// Accumulated phase timings (nanoseconds) and invocation counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegionStats {
    pub invocations: u64,
    pub surrogate_invocations: u64,
    /// Application memory → tensor space (gather + compose).
    pub to_tensor_ns: u64,
    /// Model forward pass inside the inference engine.
    pub inference_ns: u64,
    /// Tensor space → application memory (decompose + scatter).
    pub from_tensor_ns: u64,
    /// Accurate-path execution.
    pub accurate_ns: u64,
    /// Data-collection bookkeeping (output gathering + store appends).
    pub collection_ns: u64,
    /// Bridge-plan lookups served from the compiled-plan cache.
    ///
    /// Compiled [`Session`](crate::Session)s resolve their plans once at
    /// build time, so steady-state session invocations add *nothing* here —
    /// a flat counter under load is the caching claim made observable.
    pub plan_cache_hits: u64,
    /// Bridge-plan lookups that had to compile a new plan.
    pub plan_cache_misses: u64,
    /// Surrogate invocations that reused an already-resolved model handle
    /// (no per-call path hashing in the inference engine).
    pub model_cache_hits: u64,
    /// Surrogate invocations that had to resolve the model by path.
    pub model_cache_misses: u64,
    /// Logical invocations (samples) that went through a surrogate forward
    /// pass — batch-occupancy numerator. A one-shot invocation submits 1; an
    /// `invoke_batch(n)` submits `n`; the concurrent auto-batching submitter
    /// adds whatever it coalesced.
    pub batch_submitted: u64,
    /// Surrogate forward passes executed — batch-occupancy denominator.
    pub batches_flushed: u64,
    /// Logical invocations (samples) whose surrogate output was scored
    /// against a shadow execution of the original host code.
    pub validated_invocations: u64,
    /// Time spent in shadow validation: the shadow host execution (or the
    /// surrogate probe while fallen back), output gathering, and error
    /// computation. Proportional to the policy's sample rate; **not**
    /// included in `accurate_ns`/`inference_ns`.
    pub validation_shadow_ns: u64,
    /// Logical invocations that wanted the surrogate but were served by the
    /// original host code instead (adaptive or forced fallback).
    pub fallback_invocations: u64,
    /// Times the fallback controller disabled the surrogate (rolling error
    /// exceeded the policy's budget).
    pub surrogate_disables: u64,
    /// Times the controller re-enabled the surrogate after a recovered
    /// window of probes.
    pub surrogate_reenables: u64,
    /// Times the controller demoted the serving precision one rung toward
    /// full f32 (an over-budget window at a reduced-precision rung).
    pub precision_demotes: u64,
    /// Times the controller promoted the serving precision one rung back
    /// toward the quantization target (a doubled window of healthy
    /// observations).
    pub precision_promotes: u64,
    /// Submissions rejected by the BatchServer's admission control: the
    /// server was already at its `max_pending` staging cap (backpressure).
    pub serve_rejected_overload: u64,
    /// Submissions rejected up front because the forming batch's flush time
    /// could not meet the request's deadline budget.
    pub serve_rejected_deadline: u64,
    /// Db flush/append/open failures — including the final flush on Region
    /// drop, which previously vanished silently.
    pub db_errors: u64,
    /// Transient-failure retries performed (attempts beyond the first) for
    /// model loads and db I/O under the region's retry policy.
    pub retry_attempts: u64,
    /// Operations that exhausted their retry budget and gave up.
    pub retry_giveups: u64,
    /// Surrogate passes that failed outright (model unloadable, inference
    /// error) and were degraded to the host closure instead of erroring the
    /// invocation.
    pub surrogate_errors: u64,
}

impl RegionStats {
    /// Total time spent inside the runtime for surrogate invocations.
    pub fn surrogate_total_ns(&self) -> u64 {
        self.to_tensor_ns + self.inference_ns + self.from_tensor_ns
    }

    /// Fractions (to-tensor, inference, from-tensor) of surrogate runtime —
    /// the three bars of the paper's Fig. 6.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let total = self.surrogate_total_ns().max(1) as f64;
        (
            self.to_tensor_ns as f64 / total,
            self.inference_ns as f64 / total,
            self.from_tensor_ns as f64 / total,
        )
    }

    /// Bridge overhead relative to inference-engine latency (paper: "the
    /// overhead of HPAC-ML is between 0.01% and 8%, compared to the latency
    /// of the inference engine").
    pub fn bridge_overhead_ratio(&self) -> f64 {
        (self.to_tensor_ns + self.from_tensor_ns) as f64 / self.inference_ns.max(1) as f64
    }

    /// Fraction of all logical invocations served by fallback host code
    /// (the fig10 x-axis companion: 0.0 = surrogate throughout, 1.0 = the
    /// controller pinned the region to the accurate path).
    pub fn fallback_fraction(&self) -> f64 {
        if self.invocations == 0 {
            return 0.0;
        }
        self.fallback_invocations as f64 / self.invocations as f64
    }

    /// Mean samples per surrogate forward pass (batch occupancy). 1.0 means
    /// every invocation paid a full forward pass of its own; higher means
    /// invocations were coalesced (`invoke_batch` or the auto-batching
    /// submitter amortized the per-pass overhead).
    pub fn mean_batch_fill(&self) -> f64 {
        if self.batches_flushed == 0 {
            return 0.0;
        }
        self.batch_submitted as f64 / self.batches_flushed as f64
    }
}

/// Measure one closure, returning its result and elapsed nanoseconds.
#[inline]
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_nanos() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, ns) = timed(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert!(v > 0);
        assert!(ns > 0);
    }

    #[test]
    fn breakdown_sums_to_one() {
        let s = RegionStats {
            to_tensor_ns: 10,
            inference_ns: 80,
            from_tensor_ns: 10,
            ..Default::default()
        };
        let (a, b, c) = s.breakdown();
        assert!((a + b + c - 1.0).abs() < 1e-12);
        assert!((b - 0.8).abs() < 1e-12);
        assert!((s.bridge_overhead_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_do_not_divide_by_zero() {
        let s = RegionStats::default();
        let (a, b, c) = s.breakdown();
        assert_eq!((a, b, c), (0.0, 0.0, 0.0));
        assert_eq!(s.bridge_overhead_ratio(), 0.0);
    }
}
