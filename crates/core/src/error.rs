//! Error type unifying the runtime's failure modes.

use hpacml_bridge::BridgeError;
use hpacml_directive::DirectiveError;
use hpacml_nn::NnError;
use hpacml_store::StoreError;
use hpacml_tensor::TensorError;

/// Errors raised by the HPAC-ML runtime.
#[derive(Debug)]
pub enum CoreError {
    /// Directive parsing or semantic analysis failed.
    Directive(DirectiveError),
    /// Data-bridge compilation or execution failed.
    Bridge(BridgeError),
    /// Tensor manipulation failed.
    Tensor(TensorError),
    /// Model load/inference failed.
    Nn(NnError),
    /// Data-collection store failure.
    Store(StoreError),
    /// Region construction or invocation misuse.
    Region(String),
    /// Admission control or batched serving failure (typed, so chaos tests
    /// and callers can distinguish overload from deadline from batch
    /// execution failures).
    Serve(ServeError),
}

/// Typed failures of the [`BatchServer`](crate::serve::BatchServer) serving
/// path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the submit: the server already has
    /// `max_pending` samples staged or executing. Back off and resubmit.
    Overloaded {
        region: String,
        pending: usize,
        max_pending: usize,
    },
    /// The submit's deadline budget cannot be met: the forming batch
    /// flushes `flush_in_ns` from now, later than the caller's
    /// `budget_ns`. Rejected up front instead of stranding the sample.
    Deadline {
        region: String,
        budget_ns: u64,
        flush_in_ns: u64,
    },
    /// The server was shut down; no further submissions are accepted.
    ShutDown { region: String },
    /// The batched pass this sample was coalesced into failed. Carries the
    /// member's slot and the batch fill at failure time so fan-out
    /// diagnostics are actionable.
    Batch {
        region: String,
        member: usize,
        fill: usize,
        msg: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded {
                region,
                pending,
                max_pending,
            } => write!(
                f,
                "region `{region}`: overloaded ({pending} samples pending, cap {max_pending})"
            ),
            ServeError::Deadline {
                region,
                budget_ns,
                flush_in_ns,
            } => write!(
                f,
                "region `{region}`: deadline unmeetable (budget {budget_ns}ns, \
                 forming batch flushes in {flush_in_ns}ns)"
            ),
            ServeError::ShutDown { region } => {
                write!(
                    f,
                    "region `{region}`: BatchServer is shut down; submission rejected"
                )
            }
            ServeError::Batch {
                region,
                member,
                fill,
                msg,
            } => write!(
                f,
                "region `{region}`: batched forward pass failed for member {member} \
                 of {fill}: {msg}"
            ),
        }
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Directive(e) => write!(f, "{e}"),
            CoreError::Bridge(e) => write!(f, "{e}"),
            CoreError::Tensor(e) => write!(f, "{e}"),
            CoreError::Nn(e) => write!(f, "{e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::Region(s) => write!(f, "region error: {s}"),
            CoreError::Serve(e) => write!(f, "serve error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DirectiveError> for CoreError {
    fn from(e: DirectiveError) -> Self {
        CoreError::Directive(e)
    }
}

impl From<BridgeError> for CoreError {
    fn from(e: BridgeError) -> Self {
        CoreError::Bridge(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

impl From<ServeError> for CoreError {
    fn from(e: ServeError) -> Self {
        CoreError::Serve(e)
    }
}

impl From<hpacml_faults::InjectedFault> for CoreError {
    fn from(f: hpacml_faults::InjectedFault) -> Self {
        CoreError::Store(StoreError::Io(f.into()))
    }
}
