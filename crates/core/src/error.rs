//! Error type unifying the runtime's failure modes.

use hpacml_bridge::BridgeError;
use hpacml_directive::DirectiveError;
use hpacml_nn::NnError;
use hpacml_store::StoreError;
use hpacml_tensor::TensorError;

/// Errors raised by the HPAC-ML runtime.
#[derive(Debug)]
pub enum CoreError {
    /// Directive parsing or semantic analysis failed.
    Directive(DirectiveError),
    /// Data-bridge compilation or execution failed.
    Bridge(BridgeError),
    /// Tensor manipulation failed.
    Tensor(TensorError),
    /// Model load/inference failed.
    Nn(NnError),
    /// Data-collection store failure.
    Store(StoreError),
    /// Region construction or invocation misuse.
    Region(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Directive(e) => write!(f, "{e}"),
            CoreError::Bridge(e) => write!(f, "{e}"),
            CoreError::Tensor(e) => write!(f, "{e}"),
            CoreError::Nn(e) => write!(f, "{e}"),
            CoreError::Store(e) => write!(f, "{e}"),
            CoreError::Region(s) => write!(f, "region error: {s}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<DirectiveError> for CoreError {
    fn from(e: DirectiveError) -> Self {
        CoreError::Directive(e)
    }
}

impl From<BridgeError> for CoreError {
    fn from(e: BridgeError) -> Self {
        CoreError::Bridge(e)
    }
}

impl From<TensorError> for CoreError {
    fn from(e: TensorError) -> Self {
        CoreError::Tensor(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}
