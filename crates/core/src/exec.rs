//! Invocation-time execution control: the accurate path, the surrogate path,
//! data collection and the per-phase timers.
//!
//! This is the *one-shot* API: dims travel with every call and the compiled
//! state (bridge plans, model handle, input-assembly layout) is fetched from
//! the region's caches on each invocation. It is a thin wrapper over the
//! same [`SessionCore`](crate::session) machinery that backs
//! [`Region::session`](crate::Region::session); hot loops should compile a
//! [`Session`](crate::Session) once and skip the per-call lookups entirely.
//!
//! Model-input assembly concatenates the gathered inputs in `in()`/`inout()`
//! **declaration order**, regardless of the order `input(...)` calls arrive
//! in — the same canonical layout the compiled [`Session`](crate::Session)
//! path uses, so the two APIs feed byte-identical batches to the model.

use crate::region::Region;
use crate::session::ScratchGuard;
use crate::timing::timed;
use crate::{CoreError, Result};
use hpacml_directive::ast::{Direction, MlMode};
use hpacml_directive::sema::Bindings;
use hpacml_tensor::Tensor;

/// Which execution path an invocation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTaken {
    /// The surrogate model produced the outputs.
    Surrogate,
    /// The original code ran (with data collection if enabled).
    Accurate,
}

impl Region {
    /// Begin a one-shot invocation of this region with concrete integer
    /// bindings. Repeat invocations with the same bindings and shapes reuse
    /// the compiled plans, model handle and assembly layout through the
    /// region's caches; see [`Region::session`] for the zero-lookup variant.
    pub fn invoke(&self, binds: &Bindings) -> Invocation<'_> {
        Invocation {
            region: self,
            binds: binds.clone(),
            surrogate_override: None,
            scratch: ScratchGuard::take(),
            supplied: vec![None; self.input_order().len()],
            to_ns: 0,
        }
    }
}

/// The input-gathering phase of one region invocation.
pub struct Invocation<'r> {
    region: &'r Region,
    binds: Bindings,
    surrogate_override: Option<bool>,
    scratch: ScratchGuard,
    /// Per *declared* input: the supplied dims, or `None` while missing.
    /// Gathered tensors live at the same declared index in the scratch.
    supplied: Vec<Option<Vec<usize>>>,
    to_ns: u64,
}

impl<'r> Invocation<'r> {
    /// Host-side value for the `predicated`/`if` decision: `true` runs the
    /// surrogate, `false` runs the accurate path (collecting data). This is
    /// how the Fig. 9 interleaving experiments toggle per timestep.
    pub fn use_surrogate(mut self, value: bool) -> Self {
        self.surrogate_override = Some(value);
        self
    }

    /// Gather one input array into tensor space (steps 1–2 of Fig. 1).
    pub fn input(mut self, name: &str, data: &[f32], dims: &[usize]) -> Result<Self> {
        let index = self
            .region
            .input_order()
            .iter()
            .position(|n| n == name)
            .ok_or_else(|| {
                CoreError::Region(format!(
                    "region `{}`: `{name}` is not declared in(...)/inout(...)",
                    self.region.name()
                ))
            })?;
        if self.supplied[index].is_some() {
            return Err(CoreError::Region(format!(
                "region `{}`: input `{name}` supplied twice",
                self.region.name()
            )));
        }
        let plan = self
            .region
            .plan_for(name, Direction::To, dims, &self.binds)?;
        self.scratch.ensure_inputs(self.supplied.len());
        let (res, ns) = timed(|| plan.gather_into(data, &mut self.scratch.gathered[index]));
        res?;
        self.to_ns += ns;
        self.supplied[index] = Some(dims.to_vec());
        Ok(self)
    }

    fn decide_surrogate(&self) -> Result<bool> {
        Ok(match self.region.ml_mode() {
            MlMode::Infer => self.surrogate_override.unwrap_or(true),
            MlMode::Collect => false,
            MlMode::Predicated => match self
                .surrogate_override
                .or_else(|| self.region.default_predicate())
            {
                Some(v) => v,
                None => {
                    return Err(CoreError::Region(format!(
                        "region `{}`: predicated mode needs use_surrogate(...) \
                         (the directive condition `{}` is not a literal)",
                        self.region.name(),
                        self.region.ml().cond.as_deref().unwrap_or("")
                    )))
                }
            },
        })
    }

    /// Run the region (steps 3–4 of Fig. 1): either invoke the surrogate
    /// through the cached session core or execute the accurate closure.
    ///
    /// The adaptive/forced fallback gate applies here exactly as on the
    /// compiled [`Session`](crate::Session) path: while
    /// [`Region::surrogate_active`] is false, the accurate closure serves
    /// the invocation, bit-identical to an un-annotated application. Shadow
    /// validation sampling, however, is session-only — one-shot invocations
    /// are counted as fallbacks but never drawn.
    pub fn run(mut self, accurate: impl FnOnce()) -> Result<Outcome<'r>> {
        let want = self.decide_surrogate()?;
        let surrogate = want && self.region.surrogate_active();
        let fallback = want && !surrogate;
        // Compact the gathered tensors to the supplied subset, preserving
        // declared order, and derive the canonical (name, dims) pairs.
        let mut pairs: Vec<(String, Vec<usize>)> = Vec::with_capacity(self.supplied.len());
        let mut names: Vec<String> = Vec::with_capacity(self.supplied.len());
        let mut next = 0usize;
        for (index, slot) in self.supplied.iter().enumerate() {
            if let Some(dims) = slot {
                if index != next {
                    self.scratch.gathered.swap(next, index);
                }
                let name = self.region.input_order()[index].clone();
                pairs.push((name.clone(), dims.clone()));
                names.push(name);
                next += 1;
            }
        }
        let mut surrogate = surrogate;
        let mut fallback = fallback;
        let (inference_ns, accurate_ns) = if surrogate {
            // Surrogate infrastructure failure (model load / forward errored
            // after retries) degrades to the host closure — same contract as
            // the compiled Session path. Host buffers are untouched by a
            // failed pass, so the accurate run stays bit-identical.
            let run = self
                .region
                .session_core(&self.binds, &pairs)
                .and_then(|core| core.run_surrogate(self.region, &mut self.scratch, 1, 1, false));
            match run {
                Ok(ns) => (ns, 0),
                Err(e) => {
                    if !self.region.note_surrogate_failure(&e) {
                        return Err(e);
                    }
                    surrogate = false;
                    fallback = true;
                    let ((), ns) = timed(accurate);
                    (0, ns)
                }
            }
        } else {
            let ((), ns) = timed(accurate);
            (0, ns)
        };
        Ok(Outcome {
            region: self.region,
            binds: self.binds,
            path: if surrogate {
                PathTaken::Surrogate
            } else {
                PathTaken::Accurate
            },
            fallback,
            scratch: self.scratch,
            names,
            out_cursor: 0,
            gathered_outputs: Vec::new(),
            accurate_ns,
            inference_ns,
            to_ns: self.to_ns,
            from_ns: 0,
            collection_ns: 0,
        })
    }
}

/// The output phase of an invocation: scatter surrogate results or gather
/// accurate outputs for collection, then finalize.
pub struct Outcome<'r> {
    region: &'r Region,
    binds: Bindings,
    path: PathTaken,
    /// The invocation wanted the surrogate but the fallback gate sent it to
    /// the host code.
    fallback: bool,
    /// Per-invocation scratch; `scratch.out` holds the flat surrogate
    /// output, consumed in `out()` declaration order via `out_cursor`.
    /// Returned to the thread when dropped (error paths included).
    scratch: ScratchGuard,
    /// Names of the supplied inputs (for data collection).
    names: Vec<String>,
    out_cursor: usize,
    gathered_outputs: Vec<(String, Tensor)>,
    accurate_ns: u64,
    inference_ns: u64,
    to_ns: u64,
    from_ns: u64,
    collection_ns: u64,
}

impl Outcome<'_> {
    pub fn path(&self) -> PathTaken {
        self.path
    }

    /// Handle one output array (steps 5–6 of Fig. 1).
    ///
    /// Surrogate path: the next `plan.numel()` elements of the model output
    /// are scattered into `data` straight from the output buffer (no copy).
    /// Outputs must be supplied in `out()` declaration order. Accurate path:
    /// the produced values are gathered for data collection.
    pub fn output(&mut self, name: &str, data: &mut [f32], dims: &[usize]) -> Result<&mut Self> {
        if !self.region.output_order().iter().any(|n| n == name) {
            return Err(CoreError::Region(format!(
                "region `{}`: `{name}` is not declared out(...)/inout(...)",
                self.region.name()
            )));
        }
        let plan = self
            .region
            .plan_for(name, Direction::From, dims, &self.binds)?;
        match self.path {
            PathTaken::Surrogate => {
                let model_out = &self.scratch.out;
                let need = plan.numel();
                let available = model_out.numel() - self.out_cursor;
                if available < need {
                    return Err(CoreError::Region(format!(
                        "region `{}`: model produced {} elements but output `{name}` needs {need} \
                         (already consumed {})",
                        self.region.name(),
                        model_out.numel(),
                        self.out_cursor
                    )));
                }
                let chunk = &model_out.data()[self.out_cursor..self.out_cursor + need];
                let (res, ns) = timed(|| plan.scatter_slice(chunk, data));
                self.from_ns += ns;
                res?;
                self.out_cursor += need;
                Ok(self)
            }
            PathTaken::Accurate => {
                // Fallback-served invocations run the host code for safety,
                // not to collect training data (matches the Session path).
                let should_collect = !self.fallback && self.region.db_path().is_some();
                if should_collect {
                    let (tensor, ns) = timed(|| plan.gather(data));
                    self.collection_ns += ns;
                    self.gathered_outputs.push((name.to_string(), tensor?));
                }
                Ok(self)
            }
        }
    }

    /// Finalize: persist collected data, fold timings into the region stats.
    pub fn finish(self) -> Result<PathTaken> {
        let path = self.path;
        let mut collection_ns = self.collection_ns;
        if path == PathTaken::Accurate && !self.fallback && self.region.db_path().is_some() {
            let inputs: Vec<(&str, &Tensor)> = self
                .names
                .iter()
                .map(String::as_str)
                .zip(&self.scratch.gathered)
                .collect();
            let outputs: Vec<(&str, &Tensor)> = self
                .gathered_outputs
                .iter()
                .map(|(n, t)| (n.as_str(), t))
                .collect();
            let ((), ns) = {
                let (res, ns) = timed(|| {
                    self.region
                        .record_collection(&inputs, &outputs, self.accurate_ns)
                });
                (res?, ns)
            };
            collection_ns += ns;
        }
        self.region.update_stats(|s| {
            s.invocations += 1;
            if self.fallback {
                s.fallback_invocations += 1;
            }
            if path == PathTaken::Surrogate {
                s.surrogate_invocations += 1;
                // A one-shot surrogate invocation is a forward pass of its
                // own — a batch of one, for the occupancy counters.
                s.batch_submitted += 1;
                s.batches_flushed += 1;
            }
            s.to_tensor_ns += self.to_ns;
            s.inference_ns += self.inference_ns;
            s.from_tensor_ns += self.from_ns;
            s.accurate_ns += self.accurate_ns;
            s.collection_ns += collection_ns;
        });
        Ok(path)
    }
}
