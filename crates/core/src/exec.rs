//! Invocation-time execution control: the accurate path, the surrogate path,
//! data collection and the per-phase timers.

use crate::region::Region;
use crate::timing::timed;
use crate::{CoreError, Result};
use hpacml_directive::ast::{Direction, MlMode};
use hpacml_directive::sema::Bindings;
use hpacml_nn::InferenceEngine;
use hpacml_tensor::Tensor;

/// Which execution path an invocation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathTaken {
    /// The surrogate model produced the outputs.
    Surrogate,
    /// The original code ran (with data collection if enabled).
    Accurate,
}

impl Region {
    /// Begin an invocation of this region with concrete integer bindings.
    pub fn invoke(&self, binds: &Bindings) -> Invocation<'_> {
        Invocation {
            region: self,
            binds: binds.clone(),
            surrogate_override: None,
            inputs: Vec::new(),
            to_ns: 0,
        }
    }
}

/// The input-gathering phase of one region invocation.
pub struct Invocation<'r> {
    region: &'r Region,
    binds: Bindings,
    surrogate_override: Option<bool>,
    inputs: Vec<(String, Tensor)>,
    to_ns: u64,
}

impl<'r> Invocation<'r> {
    /// Host-side value for the `predicated`/`if` decision: `true` runs the
    /// surrogate, `false` runs the accurate path (collecting data). This is
    /// how the Fig. 9 interleaving experiments toggle per timestep.
    pub fn use_surrogate(mut self, value: bool) -> Self {
        self.surrogate_override = Some(value);
        self
    }

    /// Gather one input array into tensor space (steps 1–2 of Fig. 1).
    pub fn input(mut self, name: &str, data: &[f32], dims: &[usize]) -> Result<Self> {
        if !self.region.input_order().iter().any(|n| n == name) {
            return Err(CoreError::Region(format!(
                "region `{}`: `{name}` is not declared in(...)/inout(...)",
                self.region.name()
            )));
        }
        if self.inputs.iter().any(|(n, _)| n == name) {
            return Err(CoreError::Region(format!(
                "region `{}`: input `{name}` supplied twice",
                self.region.name()
            )));
        }
        let plan = self
            .region
            .plan_for(name, Direction::To, dims, &self.binds)?;
        let (tensor, ns) = timed(|| plan.gather(data));
        self.to_ns += ns;
        self.inputs.push((name.to_string(), tensor?));
        Ok(self)
    }

    fn decide_surrogate(&self) -> Result<bool> {
        Ok(match self.region.ml_mode() {
            MlMode::Infer => self.surrogate_override.unwrap_or(true),
            MlMode::Collect => false,
            MlMode::Predicated => match self
                .surrogate_override
                .or_else(|| self.region.default_predicate())
            {
                Some(v) => v,
                None => {
                    return Err(CoreError::Region(format!(
                        "region `{}`: predicated mode needs use_surrogate(...) \
                         (the directive condition `{}` is not a literal)",
                        self.region.name(),
                        self.region.ml().cond.as_deref().unwrap_or("")
                    )))
                }
            },
        })
    }

    /// Assemble the model input batch from the gathered tensors: each input
    /// is flattened to `[sweep, features]`, inputs are concatenated along the
    /// feature axis, and the batch is reshaped to the model's declared
    /// per-sample input shape.
    fn model_input(&self, sample_shape: &[usize]) -> Result<Tensor> {
        if self.inputs.is_empty() {
            return Err(CoreError::Region(format!(
                "region `{}`: surrogate path needs gathered inputs",
                self.region.name()
            )));
        }
        let flat: Vec<Tensor> = self
            .inputs
            .iter()
            .map(|(_, t)| t.clone().flatten_to_2d(1))
            .collect::<std::result::Result<_, _>>()?;
        let joined = if flat.len() == 1 {
            flat.into_iter().next().expect("one element")
        } else {
            let rows = flat[0].dims()[0];
            for t in &flat {
                if t.dims()[0] != rows {
                    return Err(CoreError::Region(format!(
                        "region `{}`: inputs disagree on sweep size ({} vs {rows})",
                        self.region.name(),
                        t.dims()[0]
                    )));
                }
            }
            let refs: Vec<&Tensor> = flat.iter().collect();
            Tensor::concat(&refs, 1)?
        };
        let per_sample: usize = sample_shape.iter().product::<usize>().max(1);
        if joined.numel() % per_sample != 0 {
            return Err(CoreError::Region(format!(
                "region `{}`: gathered {} elements do not tile the model input shape {sample_shape:?}",
                self.region.name(),
                joined.numel()
            )));
        }
        let batch = joined.numel() / per_sample;
        let mut dims = vec![batch];
        dims.extend_from_slice(sample_shape);
        Ok(joined.reshape(dims)?)
    }

    /// Run the region (steps 3–4 of Fig. 1): either invoke the surrogate or
    /// execute the accurate closure.
    pub fn run(self, accurate: impl FnOnce()) -> Result<Outcome<'r>> {
        let surrogate = self.decide_surrogate()?;
        let (model_out, inference_ns, accurate_ns) = if surrogate {
            let model_path = self.region.model_path().ok_or_else(|| {
                CoreError::Region(format!(
                    "region `{}`: surrogate path requires a model(...) clause or set_model_path",
                    self.region.name()
                ))
            })?;
            let saved = InferenceEngine::global().load(&model_path)?;
            let x = self.model_input(&saved.spec.input_shape)?;
            let (y, inference_ns) = timed(|| saved.infer(&x));
            (Some(y?), inference_ns, 0)
        } else {
            let ((), accurate_ns) = timed(accurate);
            (None, 0, accurate_ns)
        };
        Ok(Outcome {
            region: self.region,
            binds: self.binds,
            path: if surrogate {
                PathTaken::Surrogate
            } else {
                PathTaken::Accurate
            },
            model_out,
            out_cursor: 0,
            inputs: self.inputs,
            gathered_outputs: Vec::new(),
            accurate_ns,
            inference_ns,
            to_ns: self.to_ns,
            from_ns: 0,
            collection_ns: 0,
        })
    }
}

/// The output phase of an invocation: scatter surrogate results or gather
/// accurate outputs for collection, then finalize.
pub struct Outcome<'r> {
    region: &'r Region,
    binds: Bindings,
    path: PathTaken,
    /// Flat surrogate output, consumed in `out()` declaration order.
    model_out: Option<Tensor>,
    out_cursor: usize,
    inputs: Vec<(String, Tensor)>,
    gathered_outputs: Vec<(String, Tensor)>,
    accurate_ns: u64,
    inference_ns: u64,
    to_ns: u64,
    from_ns: u64,
    collection_ns: u64,
}

impl Outcome<'_> {
    pub fn path(&self) -> PathTaken {
        self.path
    }

    /// Handle one output array (steps 5–6 of Fig. 1).
    ///
    /// Surrogate path: the next `plan.numel()` elements of the model output
    /// are scattered into `data` through the `from` map. Outputs must be
    /// supplied in `out()` declaration order. Accurate path: the produced
    /// values are gathered for data collection.
    pub fn output(&mut self, name: &str, data: &mut [f32], dims: &[usize]) -> Result<&mut Self> {
        if !self.region.output_order().iter().any(|n| n == name) {
            return Err(CoreError::Region(format!(
                "region `{}`: `{name}` is not declared out(...)/inout(...)",
                self.region.name()
            )));
        }
        let plan = self
            .region
            .plan_for(name, Direction::From, dims, &self.binds)?;
        match self.path {
            PathTaken::Surrogate => {
                let model_out = self.model_out.as_ref().expect("surrogate path has output");
                let need = plan.numel();
                let available = model_out.numel() - self.out_cursor;
                if available < need {
                    return Err(CoreError::Region(format!(
                        "region `{}`: model produced {} elements but output `{name}` needs {need} \
                         (already consumed {})",
                        self.region.name(),
                        model_out.numel(),
                        self.out_cursor
                    )));
                }
                let chunk = model_out.data()[self.out_cursor..self.out_cursor + need].to_vec();
                self.out_cursor += need;
                let lhs = Tensor::from_vec(chunk, plan.lhs_shape.clone())?;
                let (res, ns) = timed(|| plan.scatter(&lhs, data));
                self.from_ns += ns;
                res?;
                Ok(self)
            }
            PathTaken::Accurate => {
                let should_collect = self.region.db_path().is_some();
                if should_collect {
                    let (tensor, ns) = timed(|| plan.gather(data));
                    self.collection_ns += ns;
                    self.gathered_outputs.push((name.to_string(), tensor?));
                }
                Ok(self)
            }
        }
    }

    /// Finalize: persist collected data, fold timings into the region stats.
    pub fn finish(self) -> Result<PathTaken> {
        let path = self.path;
        let mut collection_ns = self.collection_ns;
        if path == PathTaken::Accurate && self.region.db_path().is_some() {
            let ((), ns) = {
                let (res, ns) = timed(|| {
                    self.region.record_collection(
                        &self.inputs,
                        &self.gathered_outputs,
                        self.accurate_ns,
                    )
                });
                (res?, ns)
            };
            collection_ns += ns;
        }
        self.region.update_stats(|s| {
            s.invocations += 1;
            if path == PathTaken::Surrogate {
                s.surrogate_invocations += 1;
            }
            s.to_tensor_ns += self.to_ns;
            s.inference_ns += self.inference_ns;
            s.from_tensor_ns += self.from_ns;
            s.accurate_ns += self.accurate_ns;
            s.collection_ns += collection_ns;
        });
        Ok(path)
    }
}
