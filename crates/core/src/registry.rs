//! Process-wide registry of constructed regions.
//!
//! The paper's Table II reports, per benchmark, the lines of code and number
//! of directives HPAC-ML annotations add. Regions register their directive
//! source here when built, so the Table II harness can reproduce those counts
//! from the *actual annotations in this repository* rather than hardcoding.

use parking_lot::Mutex;
use std::sync::OnceLock;

/// What one region contributed in annotation terms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionRecord {
    pub region: String,
    /// The raw directive strings as written at the annotation site.
    pub directives: Vec<String>,
}

impl RegionRecord {
    /// Number of directives.
    pub fn directive_count(&self) -> usize {
        self.directives.len()
    }

    /// Annotation lines of code: directive lines after trimming blanks
    /// (multi-line directives with `\` continuations count each line, as
    /// `clang-format` would leave them).
    pub fn loc(&self) -> usize {
        self.directives
            .iter()
            .flat_map(|d| d.lines())
            .filter(|l| !l.trim().is_empty())
            .count()
    }
}

fn registry() -> &'static Mutex<Vec<RegionRecord>> {
    static REG: OnceLock<Mutex<Vec<RegionRecord>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a region's annotation (called by `RegionBuilder::build`).
pub fn register(record: RegionRecord) {
    registry().lock().push(record);
}

/// Snapshot of every region constructed so far in this process.
pub fn registered_regions() -> Vec<RegionRecord> {
    registry().lock().clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loc_counts_nonblank_lines() {
        let r = RegionRecord {
            region: "r".into(),
            directives: vec![
                "#pragma approx tensor functor(f: \\\n  [i, 0:1] = ([i]))".into(),
                "#pragma approx ml(infer) in(x) out(y)".into(),
            ],
        };
        assert_eq!(r.directive_count(), 2);
        assert_eq!(r.loc(), 3);
    }

    #[test]
    fn register_and_snapshot() {
        let before = registered_regions().len();
        register(RegionRecord {
            region: "test-reg".into(),
            directives: vec!["ml(collect)".into()],
        });
        let after = registered_regions();
        assert_eq!(after.len(), before + 1);
        assert!(after.iter().any(|r| r.region == "test-reg"));
    }
}
