//! Concurrent auto-batching: many submitters, one forward pass.
//!
//! A [`BatchServer`] wraps a compiled [`Session`] and coalesces invocations
//! submitted from any number of threads into shared batched forward passes —
//! the serving pattern of AI-coupled HPC workflows, where concurrent workers
//! (MPI ranks, ensemble members, request handlers) each need one sample
//! inferred and nobody wants to pay a full per-invocation forward pass.
//!
//! The coalescer is leader/follower, with no background thread of its own:
//!
//! 1. A submitter stages its per-sample inputs into the forming batch under
//!    the server lock. The **first** member becomes the batch's *leader* and
//!    waits up to `max_wait` for company; later members just wait for
//!    results.
//! 2. Whoever **closes** the batch executes it: the member that fills it to
//!    the session's `max_batch` flushes immediately, otherwise the leader
//!    flushes at the deadline. Execution is one
//!    [`Session::invoke_batch`]`(n)` — a single forward pass on the
//!    `hpacml-par` pool for everything pending.
//! 3. Every member wakes and copies its own slice of the batched output.
//!
//! Occupancy is observable: the region's
//! [`RegionStats::batch_submitted`](crate::RegionStats) /
//! [`RegionStats::batches_flushed`](crate::RegionStats) counters (and
//! [`mean_batch_fill`](crate::RegionStats::mean_batch_fill)) report how well
//! submissions coalesced.
//!
//! The server participates in the region's online-validation loop (see the
//! [`validate`](crate::validate) module): install a whole-batch host-code
//! handler with [`BatchServer::with_fallback`] and drawn flushes are
//! shadow-validated against it, fallback-disabled periods are served by it
//! (with sampled surrogate probes driving recovery), and a forced fallback
//! routes every flush through it. [`BatchServer::shutdown`] flushes the
//! forming batch and rejects later submissions;
//! [`BatchServer::drain`] flushes without closing the server.
//!
//! # Admission control
//!
//! The server is backpressured, not unbounded:
//!
//! * [`BatchServer::with_max_pending`] caps the samples staged or executing
//!   at any moment; a submit over the cap is rejected with a typed
//!   [`ServeError::Overloaded`] instead of growing the queue (counted in
//!   [`RegionStats::serve_rejected_overload`](crate::RegionStats)).
//! * [`BatchServer::submit_with_deadline`] attaches a wait budget: a submit
//!   that would join a forming batch flushing *later* than its budget is
//!   rejected up front with [`ServeError::Deadline`] — never stranded — and
//!   a leading submit shortens its batch's flush to fit the budget.
//! * `max_wait` adapts to load: the leader's wait is the configured bound
//!   scaled by an EWMA of recent batch fill, so it shrinks toward zero under
//!   light load (no company worth waiting for) and grows back toward the
//!   configured bound under sustained occupancy. See
//!   [`BatchServer::current_max_wait`].
//!
//! ```no_run
//! # fn main() -> hpacml_core::Result<()> {
//! use hpacml_core::serve::BatchServer;
//! use std::time::Duration;
//!
//! # let region = hpacml_core::Region::from_source("r", "")?;
//! # let binds = hpacml_directive::sema::Bindings::new();
//! // Per-sample session, up to 64 invocations per forward pass.
//! let session = region.session(&binds, &[("x", &[5]), ("y", &[1])], 64)?;
//! let server = BatchServer::new(&session, Duration::from_micros(200))?;
//!
//! std::thread::scope(|scope| {
//!     for w in 0..8 {
//!         let server = &server;
//!         scope.spawn(move || {
//!             let sample = [w as f32; 5];
//!             let mut result = [0.0f32; 1];
//!             // Blocks until a coalesced forward pass produced this
//!             // sample's output; concurrent submitters share one pass.
//!             server.submit(&[&sample], &mut [&mut result]).unwrap();
//!         });
//!     }
//! });
//! # Ok(())
//! # }
//! ```

use crate::error::ServeError;
use crate::session::Session;
use crate::timing::timed;
use crate::validate::SampleError;
use crate::{CoreError, Result};
use hpacml_directive::ast::MlMode;
use hpacml_faults::{fault_point, fault_point_infallible};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// EWMA weight of the newest batch-fill observation in the adaptive
/// `max_wait` (higher reacts faster, lower smooths bursts).
const OCCUPANCY_ALPHA: f64 = 0.25;

/// `Duration` → nanoseconds as `u64`, saturating. `Duration` holds up to
/// ~2^64 seconds, so `as_nanos() as u64` would *truncate* an absurd-but-legal
/// budget or flush horizon to a small number — and a rejection that reports
/// a tiny `flush_in_ns` masks the real cause. Saturated values pin the
/// diagnostic at "effectively unbounded" instead.
fn saturating_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A whole-batch host-code fallback: `(n, staged_inputs, outputs)`, where
/// `staged_inputs[i]` holds the `n` per-sample arrays of declared input `i`
/// back to back and `outputs[j]` must be filled with the `n` per-sample
/// results of declared output `j`.
type FallbackFn<'s> = Box<dyn Fn(usize, &[Vec<f32>], &mut [Vec<f32>]) + Send + Sync + 's>;

/// How a flushed batch failed: the message plus the batch fill at failure
/// time, fanned out to every member (each member adds its own slot index on
/// the way out, so diagnostics name the exact sample).
#[derive(Debug, Clone)]
struct BatchFailure {
    msg: String,
    fill: usize,
}

/// One flushed batch's published outcome: a buffer per declared output
/// array, or a structured failure fanned out to every member.
type BatchOutcome = std::result::Result<Arc<Vec<Vec<f32>>>, BatchFailure>;

/// Per-batch result cell: members park on `cv` until the executor publishes
/// one output buffer per declared output array (or an error, fanned out to
/// every member).
struct Cell {
    done: Mutex<Option<BatchOutcome>>,
    cv: Condvar,
}

impl Cell {
    fn new() -> Self {
        Cell {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// The batch currently accepting members.
struct Forming {
    cell: Arc<Cell>,
    /// One staging buffer per input array; member `i`'s sample occupies
    /// `[i * per_sample .. (i + 1) * per_sample]`.
    staging: Vec<Vec<f32>>,
    n: usize,
    deadline: Instant,
}

struct ServerState {
    forming: Option<Forming>,
    /// Recycled staging sets, so steady-state batches reuse grown buffers.
    spare: Vec<Vec<Vec<f32>>>,
    /// Set by [`BatchServer::shutdown`]; later submissions are rejected.
    shutdown: bool,
    /// Samples staged or in a flushed-but-unpublished batch — the quantity
    /// [`BatchServer::with_max_pending`] caps.
    in_flight: usize,
    /// EWMA of batch fill (`n / max_batch`) at flush time, in `[0, 1]`.
    /// Scales the leader's wait: light load shrinks it toward zero,
    /// sustained occupancy grows it back toward the configured `max_wait`.
    occupancy_ewma: f64,
    /// Whether any flush has been observed yet. The first observation
    /// *seeds* the EWMA (replaces the optimistic 1.0 prior outright) so a
    /// cold server stops imposing the full `max_wait` on light-load
    /// submitters after one flush instead of after `~1/alpha` of them.
    occupancy_seeded: bool,
}

/// What a submitter must do after staging its sample.
enum Role {
    /// First member: wait for the batch to fill, flush at the deadline.
    Lead(Instant),
    /// Filled the batch to `max_batch`: execute it now.
    Execute(Forming),
    /// Joined a forming batch: just wait for the result.
    Wait,
}

/// A concurrent auto-batching submitter over a shared compiled [`Session`].
/// See the [module docs](self) for the coalescing protocol.
pub struct BatchServer<'s, 'r> {
    session: &'s Session<'r>,
    max_wait: Duration,
    /// Admission-control cap on staged + executing samples
    /// (`usize::MAX` = uncapped).
    max_pending: usize,
    state: Mutex<ServerState>,
    /// Leaders park here; whoever fills a batch signals so the leader stops
    /// waiting for a batch that is already on its way.
    leader_cv: Condvar,
    /// (name, per-sample element count) per declared input, assembly order.
    in_arrays: Vec<(String, usize)>,
    /// (name, per-sample element count) per declared output.
    out_arrays: Vec<(String, usize)>,
    /// Whole-batch host-code fallback, serving flushes while the region's
    /// validation controller (or a forced fallback) has the surrogate
    /// disabled — and doubling as the shadow-validation reference.
    fallback: Option<FallbackFn<'s>>,
}

impl<'s, 'r> BatchServer<'s, 'r> {
    /// Wrap a compiled session. `max_wait` bounds how long the first sample
    /// of a batch waits for company before flushing a partial batch —
    /// latency the deployment trades for occupancy. The session's region
    /// must be able to take the surrogate path (`infer` or `predicated`
    /// mode); a collect-mode region has no model to serve.
    pub fn new(session: &'s Session<'r>, max_wait: Duration) -> Result<Self> {
        if session.region().ml_mode() == MlMode::Collect {
            return Err(CoreError::Region(format!(
                "region `{}`: a collect-mode region cannot serve batched inference",
                session.region().name()
            )));
        }
        let in_arrays: Vec<(String, usize)> = session
            .input_arrays()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        let out_arrays: Vec<(String, usize)> = session
            .output_arrays()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        Ok(BatchServer {
            session,
            max_wait,
            max_pending: usize::MAX,
            state: Mutex::new(ServerState {
                forming: None,
                spare: Vec::new(),
                shutdown: false,
                in_flight: 0,
                // Start at the configured bound (the pre-adaptive
                // behavior) so the very first batch still waits for
                // company; the first observed flush *seeds* the EWMA with
                // its actual fill, so a cold server adapts after one batch.
                occupancy_ewma: 1.0,
                occupancy_seeded: false,
            }),
            leader_cv: Condvar::new(),
            in_arrays,
            out_arrays,
            fallback: None,
        })
    }

    /// Install a whole-batch host-code fallback:
    /// `handler(n, staged_inputs, outputs)` computes the `n` staged samples
    /// with the original code (`staged_inputs[i]` holds input `i`'s samples
    /// back to back; `outputs[j]` is pre-sized to `n` per-sample results).
    ///
    /// With a handler installed the server participates fully in the
    /// region's validation loop: while the surrogate is active, drawn
    /// flushes run the handler in shadow and score the surrogate against
    /// it; while the controller has the surrogate disabled, the handler
    /// serves flushes and drawn ones probe the surrogate for recovery.
    /// Without a handler, flushes during fallback fail (fanned out to every
    /// member) rather than silently serving an over-budget surrogate.
    pub fn with_fallback<F>(mut self, handler: F) -> Self
    where
        F: Fn(usize, &[Vec<f32>], &mut [Vec<f32>]) + Send + Sync + 's,
    {
        self.fallback = Some(Box::new(handler));
        self
    }

    /// Bound the samples staged or executing at any moment. A submit over
    /// the cap is rejected with [`ServeError::Overloaded`] (counted in
    /// [`RegionStats::serve_rejected_overload`](crate::RegionStats))
    /// instead of queueing without bound — load-shedding backpressure for
    /// closed-loop clients.
    pub fn with_max_pending(mut self, max_pending: usize) -> Self {
        self.max_pending = max_pending.max(1);
        self
    }

    /// The wrapped session.
    pub fn session(&self) -> &'s Session<'r> {
        self.session
    }

    /// Samples currently staged in the forming batch (observability and
    /// test hooks; racy by nature).
    pub fn pending(&self) -> usize {
        self.state.lock().forming.as_ref().map_or(0, |f| f.n)
    }

    /// Samples staged *or* executing-but-unpublished — the quantity the
    /// `max_pending` cap applies to (observability; racy by nature).
    pub fn in_flight(&self) -> usize {
        self.state.lock().in_flight
    }

    /// The leader wait currently in force: the configured `max_wait` scaled
    /// by the batch-fill EWMA. Shrinks toward zero when batches flush
    /// mostly empty, recovers toward the configured bound as occupancy
    /// rises.
    pub fn current_max_wait(&self) -> Duration {
        self.max_wait.mul_f64(self.state.lock().occupancy_ewma)
    }

    /// Stop accepting submissions: the forming batch (if any) is flushed
    /// immediately on the calling thread so parked members complete, and
    /// every later [`BatchServer::submit`] is rejected with
    /// [`ServeError::ShutDown`]. Idempotent.
    pub fn shutdown(&self) {
        let forming = {
            let mut st = self.state.lock();
            st.shutdown = true;
            st.forming.take()
        };
        // Wake any leader parked on the (now detached) batch.
        self.leader_cv.notify_all();
        fault_point_infallible!("serve.shutdown.race");
        if let Some(f) = forming {
            self.execute(f);
        }
    }

    /// Flush the forming batch (if any) on the calling thread without
    /// closing the server: parked members complete now instead of at the
    /// leader's deadline, and later submissions are still accepted. The
    /// quiesce half of a `drain()`-then-[`shutdown`](Self::shutdown)
    /// teardown, also usable on its own at a phase boundary.
    pub fn drain(&self) {
        let forming = self.state.lock().forming.take();
        self.leader_cv.notify_all();
        fault_point_infallible!("serve.drain.race");
        if let Some(f) = forming {
            self.execute(f);
        }
    }

    /// Submit **one** sample and block until a coalesced forward pass has
    /// produced its outputs. `inputs` and `outputs` are slices per declared
    /// array in declaration order (the order of
    /// [`Session::input_arrays`]/[`Session::output_arrays`]), each exactly
    /// one per-sample array long. Safe to call from any number of threads;
    /// whatever is pending when a batch closes shares one forward pass.
    pub fn submit(&self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) -> Result<()> {
        self.submit_inner(inputs, outputs, None)
    }

    /// [`submit`](Self::submit) with a per-request wait budget: the sample
    /// is only admitted if the batch it would join flushes within `budget`.
    /// Joining a forming batch whose flush lies beyond the budget is
    /// rejected **up front** with [`ServeError::Deadline`] (counted in
    /// [`RegionStats::serve_rejected_deadline`](crate::RegionStats)) rather
    /// than stranding the sample; an admitted *leading* submit shortens its
    /// new batch's flush to fit the budget. The budget covers queueing wait
    /// only — execution time is the pass's own.
    pub fn submit_with_deadline(
        &self,
        inputs: &[&[f32]],
        outputs: &mut [&mut [f32]],
        budget: Duration,
    ) -> Result<()> {
        self.submit_inner(inputs, outputs, Some(budget))
    }

    fn submit_inner(
        &self,
        inputs: &[&[f32]],
        outputs: &mut [&mut [f32]],
        budget: Option<Duration>,
    ) -> Result<()> {
        self.check_arity(inputs, outputs)?;
        let (cell, slot, role) = self.stage(inputs, budget)?;
        match role {
            Role::Execute(f) => {
                // Wake a leader that may be parked on this (now closed) batch.
                self.leader_cv.notify_all();
                self.execute(f);
            }
            Role::Lead(deadline) => self.lead(&cell, deadline),
            Role::Wait => {}
        }
        self.collect(&cell, slot, outputs)
    }

    fn check_arity(&self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) -> Result<()> {
        if inputs.len() != self.in_arrays.len() {
            return Err(CoreError::Region(format!(
                "region `{}`: submit got {} input arrays, session declares {}",
                self.session.region().name(),
                inputs.len(),
                self.in_arrays.len()
            )));
        }
        for (data, (name, per)) in inputs.iter().zip(&self.in_arrays) {
            if data.len() != *per {
                return Err(CoreError::Region(format!(
                    "region `{}`: input `{name}` sample has {} elements, expected {per}",
                    self.session.region().name(),
                    data.len()
                )));
            }
        }
        if outputs.len() != self.out_arrays.len() {
            return Err(CoreError::Region(format!(
                "region `{}`: submit got {} output arrays, session declares {}",
                self.session.region().name(),
                outputs.len(),
                self.out_arrays.len()
            )));
        }
        for (data, (name, per)) in outputs.iter().zip(&self.out_arrays) {
            if data.len() != *per {
                return Err(CoreError::Region(format!(
                    "region `{}`: output `{name}` sample has {} elements, expected {per}",
                    self.session.region().name(),
                    data.len()
                )));
            }
        }
        Ok(())
    }

    /// Stage one sample into the forming batch (creating it if none) and
    /// decide this submitter's role. All staging happens under the server
    /// lock, so a closed batch is always fully staged. Rejection paths —
    /// shutdown, the `max_pending` cap, an unmeetable deadline — are all
    /// decided here, before the sample touches a staging buffer.
    fn stage(
        &self,
        inputs: &[&[f32]],
        budget: Option<Duration>,
    ) -> Result<(Arc<Cell>, usize, Role)> {
        fault_point_infallible!("serve.stage");
        let region = self.session.region();
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(ServeError::ShutDown {
                region: region.name().to_string(),
            }
            .into());
        }
        if st.in_flight >= self.max_pending {
            let pending = st.in_flight;
            drop(st);
            region.update_stats(|s| s.serve_rejected_overload += 1);
            return Err(ServeError::Overloaded {
                region: region.name().to_string(),
                pending,
                max_pending: self.max_pending,
            }
            .into());
        }
        if let (Some(budget), Some(f)) = (budget, st.forming.as_ref()) {
            // Joining an existing batch: its flush instant is already set.
            // If that lies beyond this request's budget, admitting the
            // sample would strand it — reject up front instead.
            let flush_in = f.deadline.saturating_duration_since(Instant::now());
            if flush_in > budget {
                drop(st);
                region.update_stats(|s| s.serve_rejected_deadline += 1);
                return Err(ServeError::Deadline {
                    region: region.name().to_string(),
                    budget_ns: saturating_ns(budget),
                    flush_in_ns: saturating_ns(flush_in),
                }
                .into());
            }
        }
        if st.forming.is_none() {
            let staging = st.spare.pop().unwrap_or_else(|| {
                self.in_arrays
                    .iter()
                    .map(|(_, per)| Vec::with_capacity(self.session.max_batch() * per))
                    .collect()
            });
            // Leader wait = configured bound scaled by recent occupancy,
            // further shortened to the leading request's own budget.
            let mut wait = self.max_wait.mul_f64(st.occupancy_ewma);
            if let Some(budget) = budget {
                wait = wait.min(budget);
            }
            st.forming = Some(Forming {
                cell: Arc::new(Cell::new()),
                staging,
                n: 0,
                deadline: Instant::now() + wait,
            });
        }
        let f = st.forming.as_mut().expect("forming batch present");
        let slot = f.n;
        for (buf, data) in f.staging.iter_mut().zip(inputs) {
            buf.extend_from_slice(data);
        }
        f.n += 1;
        st.in_flight += 1;
        let f = st.forming.as_mut().expect("forming batch present");
        let cell = Arc::clone(&f.cell);
        let role = if f.n == self.session.max_batch() {
            Role::Execute(st.forming.take().expect("forming batch present"))
        } else if slot == 0 {
            Role::Lead(f.deadline)
        } else {
            Role::Wait
        };
        Ok((cell, slot, role))
    }

    /// Leader protocol: wait (bounded) for the batch to fill; if the
    /// deadline passes while the batch is still ours, close and execute it.
    fn lead(&self, cell: &Arc<Cell>, deadline: Instant) {
        let mut st = self.state.lock();
        loop {
            let still_ours = st
                .forming
                .as_ref()
                .is_some_and(|f| Arc::ptr_eq(&f.cell, cell));
            if !still_ours {
                return; // someone filled it and is executing
            }
            let now = Instant::now();
            if now >= deadline {
                let f = st.forming.take().expect("batch checked above");
                drop(st);
                fault_point_infallible!("serve.lead.flush");
                self.execute(f);
                return;
            }
            self.leader_cv.wait_for(&mut st, deadline - now);
        }
    }

    /// One compiled surrogate pass over the staged batch, returning a
    /// buffer per declared output. `count_stats` distinguishes the primary
    /// serving pass (finalized into the region stats) from a shadow
    /// recovery probe (whose timings belong to `validation_shadow_ns`, not
    /// the invocation counters).
    fn surrogate_pass(&self, f: &Forming, n: usize, count_stats: bool) -> Result<Vec<Vec<f32>>> {
        fault_point!("serve.surrogate");
        let mut run = self
            .session
            .invoke_batch(n)?
            // The server gates and validates whole staged batches itself;
            // its session invocations bypass the per-invocation gate (and
            // `predicated` regions take the model path unconditionally).
            .use_surrogate(true)
            .validation_exempt();
        for ((name, per), staged) in self.in_arrays.iter().zip(&f.staging) {
            run = run.input(name, &staged[..n * per])?;
        }
        let mut out = run.run(|| unreachable!("BatchServer surrogate pass"))?;
        let mut bufs = Vec::with_capacity(self.out_arrays.len());
        for (name, per) in &self.out_arrays {
            let mut buf = vec![0.0f32; n * per];
            out.output(name, &mut buf)?;
            bufs.push(buf);
        }
        if count_stats {
            out.finish()?;
        }
        // A probe drops the outcome unfinished: scratch still returns to
        // the thread, but nothing is folded into the invocation counters.
        Ok(bufs)
    }

    /// Serve one staged batch through the host-code fallback handler,
    /// counting the members as fallback invocations. Caller guarantees a
    /// handler is installed.
    fn fallback_pass(&self, f: &Forming, n: usize) -> Vec<Vec<f32>> {
        let handler = self.fallback.as_ref().expect("caller checked fallback");
        let mut bufs: Vec<Vec<f32>> = self
            .out_arrays
            .iter()
            .map(|(_, per)| vec![0.0f32; n * per])
            .collect();
        let ((), ns) = timed(|| handler(n, &f.staging, &mut bufs));
        self.session.region().update_stats(|s| {
            s.invocations += n as u64;
            s.fallback_invocations += n as u64;
            s.accurate_ns += ns;
        });
        bufs
    }

    /// Per-sample errors for the drawn `offsets` of one flush, comparing
    /// `approx` against `reference` across every declared output array.
    /// Samples with no comparable elements (e.g. MAPE with all-zero
    /// references) are skipped rather than scored as fabricated zeros —
    /// the same rule the session shadow path applies.
    fn sample_errors(
        &self,
        metric: crate::ErrorMetric,
        offsets: &[usize],
        reference: &[Vec<f32>],
        approx: &[Vec<f32>],
    ) -> Vec<f64> {
        offsets
            .iter()
            .filter_map(|&s| {
                let mut acc = SampleError::new(metric);
                for (a, (_, per)) in self.out_arrays.iter().enumerate() {
                    acc.update(
                        &reference[a][s * per..(s + 1) * per],
                        &approx[a][s * per..(s + 1) * per],
                    );
                }
                acc.compared().then(|| acc.finalize())
            })
            .collect()
    }

    /// Shadow-validate a drawn flush while the surrogate serves: the
    /// fallback handler doubles as the original-host-code reference.
    /// Without a handler the server has no reference and never draws.
    fn shadow_validate(&self, f: &Forming, n: usize, surrogate_bufs: &[Vec<f32>]) -> Result<()> {
        let region = self.session.region();
        let (Some(v), Some(handler)) = (region.validation(), self.fallback.as_ref()) else {
            return Ok(());
        };
        let mut offsets = Vec::new();
        let seq = v.draw(n, &mut offsets);
        if offsets.is_empty() {
            return Ok(());
        }
        fault_point_infallible!("serve.shadow");
        let (errors, ns) = timed(|| {
            let mut reference: Vec<Vec<f32>> = self
                .out_arrays
                .iter()
                .map(|(_, per)| vec![0.0f32; n * per])
                .collect();
            handler(n, &f.staging, &mut reference);
            self.sample_errors(v.policy().metric, &offsets, &reference, surrogate_bufs)
        });
        region.observe_validation(&v, seq, &errors, ns)
    }

    /// While adaptively fallen back, probe the surrogate on a drawn flush
    /// so the controller can observe recovery. `accurate_bufs` (the
    /// handler's results, already served to the members) is the reference.
    fn probe_recovery(&self, f: &Forming, n: usize, accurate_bufs: &[Vec<f32>]) -> Result<()> {
        let region = self.session.region();
        let Some(v) = region.validation() else {
            return Ok(());
        };
        if region.fallback_forced() {
            return Ok(()); // operator override: leave the model untouched
        }
        let mut offsets = Vec::new();
        let seq = v.draw(n, &mut offsets);
        if offsets.is_empty() {
            return Ok(());
        }
        let (res, ns) = timed(|| self.surrogate_pass(f, n, false));
        let probe_bufs = res?;
        let errors = self.sample_errors(v.policy().metric, &offsets, accurate_bufs, &probe_bufs);
        region.observe_validation(&v, seq, &errors, ns)
    }

    /// Run one batched pass for everything staged in `f` — the surrogate
    /// when the region's fallback gate allows it, the fallback handler
    /// otherwise — publish the per-array output buffers (or the error) to
    /// every member, and recycle the staging set. A panic anywhere inside
    /// the pass (kernels, model, fallback handler) is caught and published
    /// as an error — followers wait with no timeout, so the executor must
    /// *always* reach the publish step.
    fn execute(&self, f: Forming) {
        let n = f.n;
        let region = self.session.region();
        let pass =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<Vec<Vec<f32>>> {
                if region.surrogate_active() {
                    match self.surrogate_pass(&f, n, true) {
                        Ok(bufs) => {
                            // Monitoring must never destroy correctly served
                            // results: a shadow-validation failure — an Err
                            // from the validation-row db append *or* a panic
                            // in the user's fallback handler — is contained
                            // here instead of fanned out to members who
                            // already have valid outputs in `bufs`.
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                self.shadow_validate(&f, n, &bufs)
                            }));
                            Ok(bufs)
                        }
                        Err(e) => {
                            // Permanent surrogate failure after retries:
                            // trip the controller (when one is attached) so
                            // later flushes take the fallback branch up
                            // front, and serve *this* batch by the host
                            // handler instead of failing every member.
                            // Without a controller or handler the typed
                            // error fans out unchanged.
                            if region.note_surrogate_failure(&e) && self.fallback.is_some() {
                                Ok(self.fallback_pass(&f, n))
                            } else {
                                Err(e)
                            }
                        }
                    }
                } else if self.fallback.is_some() {
                    let bufs = self.fallback_pass(&f, n);
                    // As above: a failed (or panicking) recovery probe must
                    // not error out the handler's valid results.
                    let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        self.probe_recovery(&f, n, &bufs)
                    }));
                    Ok(bufs)
                } else {
                    Err(CoreError::Region(format!(
                        "region `{}`: surrogate disabled by validation fallback and the \
                         BatchServer has no fallback handler (install one with with_fallback)",
                        region.name()
                    )))
                }
            }));
        let result = pass.unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "batched forward pass panicked".to_string());
            Err(CoreError::Region(format!("panic in batched pass: {msg}")))
        });

        // Publish before any other locking: once the pass has an outcome,
        // nothing may stand between it and the waiting members.
        fault_point_infallible!("serve.execute.publish");
        {
            let mut done = f.cell.done.lock();
            *done = Some(result.map(Arc::new).map_err(|e| BatchFailure {
                msg: e.to_string(),
                fill: n,
            }));
            f.cell.cv.notify_all();
        }

        let mut st = self.state.lock();
        st.in_flight = st.in_flight.saturating_sub(n);
        // Fold this flush's fill into the adaptive-wait EWMA. The first
        // observation seeds the EWMA outright: blending it with the cold
        // 1.0 prior would keep charging light-load submitters most of
        // `max_wait` for several more batches.
        let fill = (n as f64 / self.session.max_batch() as f64).clamp(0.0, 1.0);
        st.occupancy_ewma = if st.occupancy_seeded {
            ((1.0 - OCCUPANCY_ALPHA) * st.occupancy_ewma + OCCUPANCY_ALPHA * fill).clamp(0.0, 1.0)
        } else {
            st.occupancy_seeded = true;
            fill
        };
        let mut staging = f.staging;
        for b in &mut staging {
            b.clear();
        }
        st.spare.push(staging);
    }

    /// Wait for this sample's batch to complete and copy out its slice. The
    /// published buffers are behind an `Arc`, so the cell lock is released
    /// before copying — all members of a batch copy their slices in parallel.
    fn collect(&self, cell: &Arc<Cell>, slot: usize, outputs: &mut [&mut [f32]]) -> Result<()> {
        let outcome = {
            let mut done = cell.done.lock();
            while done.is_none() {
                cell.cv.wait(&mut done);
            }
            done.as_ref().expect("checked above").clone()
        };
        match outcome {
            Ok(bufs) => {
                for ((out, buf), (_, per)) in
                    outputs.iter_mut().zip(bufs.iter()).zip(&self.out_arrays)
                {
                    out.copy_from_slice(&buf[slot * per..(slot + 1) * per]);
                }
                Ok(())
            }
            Err(failure) => Err(ServeError::Batch {
                region: self.session.region().name().to_string(),
                member: slot,
                fill: failure.fill,
                msg: failure.msg,
            }
            .into()),
        }
    }
}
