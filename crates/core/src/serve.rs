//! Concurrent auto-batching: many submitters, one forward pass.
//!
//! A [`BatchServer`] wraps a compiled [`Session`] and coalesces invocations
//! submitted from any number of threads into shared batched forward passes —
//! the serving pattern of AI-coupled HPC workflows, where concurrent workers
//! (MPI ranks, ensemble members, request handlers) each need one sample
//! inferred and nobody wants to pay a full per-invocation forward pass.
//!
//! The coalescer is leader/follower, with no background thread of its own:
//!
//! 1. A submitter stages its per-sample inputs into the forming batch under
//!    the server lock. The **first** member becomes the batch's *leader* and
//!    waits up to `max_wait` for company; later members just wait for
//!    results.
//! 2. Whoever **closes** the batch executes it: the member that fills it to
//!    the session's `max_batch` flushes immediately, otherwise the leader
//!    flushes at the deadline. Execution is one
//!    [`Session::invoke_batch`]`(n)` — a single forward pass on the
//!    `hpacml-par` pool for everything pending.
//! 3. Every member wakes and copies its own slice of the batched output.
//!
//! Occupancy is observable: the region's
//! [`RegionStats::batch_submitted`](crate::RegionStats) /
//! [`RegionStats::batches_flushed`](crate::RegionStats) counters (and
//! [`mean_batch_fill`](crate::RegionStats::mean_batch_fill)) report how well
//! submissions coalesced.
//!
//! ```no_run
//! # fn main() -> hpacml_core::Result<()> {
//! use hpacml_core::serve::BatchServer;
//! use std::time::Duration;
//!
//! # let region = hpacml_core::Region::from_source("r", "")?;
//! # let binds = hpacml_directive::sema::Bindings::new();
//! // Per-sample session, up to 64 invocations per forward pass.
//! let session = region.session(&binds, &[("x", &[5]), ("y", &[1])], 64)?;
//! let server = BatchServer::new(&session, Duration::from_micros(200))?;
//!
//! std::thread::scope(|scope| {
//!     for w in 0..8 {
//!         let server = &server;
//!         scope.spawn(move || {
//!             let sample = [w as f32; 5];
//!             let mut result = [0.0f32; 1];
//!             // Blocks until a coalesced forward pass produced this
//!             // sample's output; concurrent submitters share one pass.
//!             server.submit(&[&sample], &mut [&mut result]).unwrap();
//!         });
//!     }
//! });
//! # Ok(())
//! # }
//! ```

use crate::session::Session;
use crate::{CoreError, Result};
use hpacml_directive::ast::MlMode;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One flushed batch's published outcome: a buffer per declared output
/// array, or an error message fanned out to every member.
type BatchOutcome = std::result::Result<Arc<Vec<Vec<f32>>>, String>;

/// Per-batch result cell: members park on `cv` until the executor publishes
/// one output buffer per declared output array (or an error, fanned out to
/// every member).
struct Cell {
    done: Mutex<Option<BatchOutcome>>,
    cv: Condvar,
}

impl Cell {
    fn new() -> Self {
        Cell {
            done: Mutex::new(None),
            cv: Condvar::new(),
        }
    }
}

/// The batch currently accepting members.
struct Forming {
    cell: Arc<Cell>,
    /// One staging buffer per input array; member `i`'s sample occupies
    /// `[i * per_sample .. (i + 1) * per_sample]`.
    staging: Vec<Vec<f32>>,
    n: usize,
    deadline: Instant,
}

struct ServerState {
    forming: Option<Forming>,
    /// Recycled staging sets, so steady-state batches reuse grown buffers.
    spare: Vec<Vec<Vec<f32>>>,
}

/// What a submitter must do after staging its sample.
enum Role {
    /// First member: wait for the batch to fill, flush at the deadline.
    Lead(Instant),
    /// Filled the batch to `max_batch`: execute it now.
    Execute(Forming),
    /// Joined a forming batch: just wait for the result.
    Wait,
}

/// A concurrent auto-batching submitter over a shared compiled [`Session`].
/// See the [module docs](self) for the coalescing protocol.
pub struct BatchServer<'s, 'r> {
    session: &'s Session<'r>,
    max_wait: Duration,
    state: Mutex<ServerState>,
    /// Leaders park here; whoever fills a batch signals so the leader stops
    /// waiting for a batch that is already on its way.
    leader_cv: Condvar,
    /// (name, per-sample element count) per declared input, assembly order.
    in_arrays: Vec<(String, usize)>,
    /// (name, per-sample element count) per declared output.
    out_arrays: Vec<(String, usize)>,
}

impl<'s, 'r> BatchServer<'s, 'r> {
    /// Wrap a compiled session. `max_wait` bounds how long the first sample
    /// of a batch waits for company before flushing a partial batch —
    /// latency the deployment trades for occupancy. The session's region
    /// must be able to take the surrogate path (`infer` or `predicated`
    /// mode); a collect-mode region has no model to serve.
    pub fn new(session: &'s Session<'r>, max_wait: Duration) -> Result<Self> {
        if session.region().ml_mode() == MlMode::Collect {
            return Err(CoreError::Region(format!(
                "region `{}`: a collect-mode region cannot serve batched inference",
                session.region().name()
            )));
        }
        let in_arrays: Vec<(String, usize)> = session
            .input_arrays()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        let out_arrays: Vec<(String, usize)> = session
            .output_arrays()
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        Ok(BatchServer {
            session,
            max_wait,
            state: Mutex::new(ServerState {
                forming: None,
                spare: Vec::new(),
            }),
            leader_cv: Condvar::new(),
            in_arrays,
            out_arrays,
        })
    }

    /// The wrapped session.
    pub fn session(&self) -> &'s Session<'r> {
        self.session
    }

    /// Submit **one** sample and block until a coalesced forward pass has
    /// produced its outputs. `inputs` and `outputs` are slices per declared
    /// array in declaration order (the order of
    /// [`Session::input_arrays`]/[`Session::output_arrays`]), each exactly
    /// one per-sample array long. Safe to call from any number of threads;
    /// whatever is pending when a batch closes shares one forward pass.
    pub fn submit(&self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) -> Result<()> {
        self.check_arity(inputs, outputs)?;
        let (cell, slot, role) = self.stage(inputs);
        match role {
            Role::Execute(f) => {
                // Wake a leader that may be parked on this (now closed) batch.
                self.leader_cv.notify_all();
                self.execute(f);
            }
            Role::Lead(deadline) => self.lead(&cell, deadline),
            Role::Wait => {}
        }
        self.collect(&cell, slot, outputs)
    }

    fn check_arity(&self, inputs: &[&[f32]], outputs: &mut [&mut [f32]]) -> Result<()> {
        if inputs.len() != self.in_arrays.len() {
            return Err(CoreError::Region(format!(
                "region `{}`: submit got {} input arrays, session declares {}",
                self.session.region().name(),
                inputs.len(),
                self.in_arrays.len()
            )));
        }
        for (data, (name, per)) in inputs.iter().zip(&self.in_arrays) {
            if data.len() != *per {
                return Err(CoreError::Region(format!(
                    "region `{}`: input `{name}` sample has {} elements, expected {per}",
                    self.session.region().name(),
                    data.len()
                )));
            }
        }
        if outputs.len() != self.out_arrays.len() {
            return Err(CoreError::Region(format!(
                "region `{}`: submit got {} output arrays, session declares {}",
                self.session.region().name(),
                outputs.len(),
                self.out_arrays.len()
            )));
        }
        for (data, (name, per)) in outputs.iter().zip(&self.out_arrays) {
            if data.len() != *per {
                return Err(CoreError::Region(format!(
                    "region `{}`: output `{name}` sample has {} elements, expected {per}",
                    self.session.region().name(),
                    data.len()
                )));
            }
        }
        Ok(())
    }

    /// Stage one sample into the forming batch (creating it if none) and
    /// decide this submitter's role. All staging happens under the server
    /// lock, so a closed batch is always fully staged.
    fn stage(&self, inputs: &[&[f32]]) -> (Arc<Cell>, usize, Role) {
        let mut st = self.state.lock().expect("server state poisoned");
        if st.forming.is_none() {
            let staging = st.spare.pop().unwrap_or_else(|| {
                self.in_arrays
                    .iter()
                    .map(|(_, per)| Vec::with_capacity(self.session.max_batch() * per))
                    .collect()
            });
            st.forming = Some(Forming {
                cell: Arc::new(Cell::new()),
                staging,
                n: 0,
                deadline: Instant::now() + self.max_wait,
            });
        }
        let f = st.forming.as_mut().expect("forming batch present");
        let slot = f.n;
        for (buf, data) in f.staging.iter_mut().zip(inputs) {
            buf.extend_from_slice(data);
        }
        f.n += 1;
        let cell = Arc::clone(&f.cell);
        let role = if f.n == self.session.max_batch() {
            Role::Execute(st.forming.take().expect("forming batch present"))
        } else if slot == 0 {
            Role::Lead(f.deadline)
        } else {
            Role::Wait
        };
        (cell, slot, role)
    }

    /// Leader protocol: wait (bounded) for the batch to fill; if the
    /// deadline passes while the batch is still ours, close and execute it.
    fn lead(&self, cell: &Arc<Cell>, deadline: Instant) {
        let mut st = self.state.lock().expect("server state poisoned");
        loop {
            let still_ours = st
                .forming
                .as_ref()
                .is_some_and(|f| Arc::ptr_eq(&f.cell, cell));
            if !still_ours {
                return; // someone filled it and is executing
            }
            let now = Instant::now();
            if now >= deadline {
                let f = st.forming.take().expect("batch checked above");
                drop(st);
                self.execute(f);
                return;
            }
            let (guard, _timeout) = self
                .leader_cv
                .wait_timeout(st, deadline - now)
                .expect("server state poisoned");
            st = guard;
        }
    }

    /// Run one batched forward pass for everything staged in `f`, publish
    /// the per-array output buffers (or the error) to every member, and
    /// recycle the staging set. A panic inside the pass is caught and
    /// published as an error — followers wait with no timeout, so the
    /// executor must *always* reach the publish step.
    fn execute(&self, f: Forming) {
        let n = f.n;
        let pass =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<Vec<Vec<f32>>> {
                let mut run = self
                    .session
                    .invoke_batch(n)?
                    // The server exists to serve the surrogate; `predicated`
                    // regions take the model path unconditionally here.
                    .use_surrogate(true);
                for ((name, per), staged) in self.in_arrays.iter().zip(&f.staging) {
                    run = run.input(name, &staged[..n * per])?;
                }
                let mut out = run
                    .run(|| unreachable!("BatchServer::execute always takes the surrogate path"))?;
                let mut bufs = Vec::with_capacity(self.out_arrays.len());
                for (name, per) in &self.out_arrays {
                    let mut buf = vec![0.0f32; n * per];
                    out.output(name, &mut buf)?;
                    bufs.push(buf);
                }
                out.finish()?;
                Ok(bufs)
            }));
        let result = pass.unwrap_or_else(|panic| {
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "batched forward pass panicked".to_string());
            Err(CoreError::Region(format!("panic in batched pass: {msg}")))
        });

        // Publish before any other locking: once the pass has an outcome,
        // nothing may stand between it and the waiting members.
        {
            let mut done = f.cell.done.lock().expect("batch cell poisoned");
            *done = Some(result.map(Arc::new).map_err(|e| e.to_string()));
            f.cell.cv.notify_all();
        }

        let mut st = self.state.lock().expect("server state poisoned");
        let mut staging = f.staging;
        for b in &mut staging {
            b.clear();
        }
        st.spare.push(staging);
    }

    /// Wait for this sample's batch to complete and copy out its slice. The
    /// published buffers are behind an `Arc`, so the cell lock is released
    /// before copying — all members of a batch copy their slices in parallel.
    fn collect(&self, cell: &Arc<Cell>, slot: usize, outputs: &mut [&mut [f32]]) -> Result<()> {
        let outcome = {
            let mut done = cell.done.lock().expect("batch cell poisoned");
            while done.is_none() {
                done = cell.cv.wait(done).expect("batch cell poisoned");
            }
            done.as_ref().expect("checked above").clone()
        };
        match outcome {
            Ok(bufs) => {
                for ((out, buf), (_, per)) in
                    outputs.iter_mut().zip(bufs.iter()).zip(&self.out_arrays)
                {
                    out.copy_from_slice(&buf[slot * per..(slot + 1) * per]);
                }
                Ok(())
            }
            Err(msg) => Err(CoreError::Region(format!(
                "batched forward pass failed: {msg}"
            ))),
        }
    }
}
