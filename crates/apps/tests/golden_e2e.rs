//! Golden end-to-end determinism tests: each benchmark app runs at a small
//! scale with fixed seeds, and the final outputs must be **bit-identical**
//!
//! * to the un-annotated host kernels (surrogate-off conformance),
//! * across sequential (chunk = 1) and batched (wide chunk + tail) session
//!   execution,
//! * under forced fallback with `use_model = true` — the acceptance pin:
//!   fallback output equals running the original code with no region
//!   annotations, and the (deliberately nonexistent) model is never loaded,
//! * and to the committed golden bit patterns below.
//!
//! Thread matrix: the kernels only parallelize element-independent sweeps
//! (fixed chunk boundaries, no cross-element reductions), so the same
//! goldens must hold under any `HPACML_THREADS` — CI runs this suite with
//! `HPACML_THREADS=1` and `=8` and both must see these exact bits. The
//! constants were produced by the x86_64-linux reference toolchain; the
//! kernels use libm (`exp`, `ln`, `sin`, `cos`), so the golden assertions
//! are gated to that platform while the conformance assertions run
//! everywhere.

use hpacml_apps::{binomial, bonds, minibude, particlefilter};
use hpacml_core::Region;
use hpacml_directive::sema::Bindings;
use std::path::Path;

/// Bit patterns of `v` at `idx` (f32 -> u32, exact).
fn bits(v: &[f32], idx: &[usize]) -> Vec<u32> {
    idx.iter().map(|&i| v[i].to_bits()).collect()
}

fn assert_golden(name: &str, v: &[f32], idx: &[usize], golden: &[u32]) {
    if cfg!(all(target_arch = "x86_64", target_os = "linux")) {
        assert_eq!(
            bits(v, idx),
            golden,
            "{name}: outputs drifted from the committed goldens at indices {idx:?} \
             (values {:?})",
            idx.iter().map(|&i| v[i]).collect::<Vec<_>>()
        );
    }
}

/// A model path that must never be resolved: forced fallback never touches
/// the inference engine.
fn missing_model() -> &'static Path {
    Path::new("/nonexistent/hpacml-golden/never-loaded.hml")
}

const GOLDEN_IDX: [usize; 4] = [0, 17, 40, 63];

const BINOMIAL_GOLDEN: [u32; 4] = [1068460160, 896381335, 1073149850, 1086699642];
const BONDS_GOLDEN: [u32; 4] = [1074000602, 1056306299, 1064365933, 1066983725];
const MINIBUDE_GOLDEN: [u32; 4] = [1118382559, 1112136965, 1117453694, 1116515420];
/// ParticleFilter: (x, y) of frames 0 and 3.
const PARTICLEFILTER_GOLDEN: [u32; 4] = [1093871228, 1095161344, 1099987581, 1098006209];

#[test]
fn binomial_bitwise_conformance_and_golden() {
    let batch = binomial::OptionBatch::generate(64, 7);
    let steps = 64usize;
    let mut plain = vec![0.0f32; batch.n];
    binomial::price_batch(&batch, steps, &mut plain);

    // Surrogate-off through the annotated region: sequential and batched
    // sessions must both reproduce the plain kernel bit for bit.
    let region = binomial::build_region(None, None).unwrap();
    let sequential = binomial::run_annotated(&region, &batch, steps, 1, false).unwrap();
    assert_eq!(sequential, plain, "sequential session != plain kernel");
    let batched = binomial::run_annotated(&region, &batch, steps, 48, false).unwrap();
    assert_eq!(batched, plain, "batched session != plain kernel");

    // Forced fallback with use_model = true: bit-identical to the
    // un-annotated app; the nonexistent model is never resolved.
    let forced = binomial::build_region(None, Some(missing_model())).unwrap();
    forced.force_fallback(true);
    let fb = binomial::run_annotated(&forced, &batch, steps, 48, true).unwrap();
    assert_eq!(fb, plain, "forced fallback != plain kernel");
    let s = forced.stats();
    assert_eq!(s.fallback_invocations, batch.n as u64);
    assert_eq!(s.surrogate_invocations, 0);
    assert_eq!(
        s.model_cache_misses, 0,
        "fallback must never load the model"
    );

    assert_golden("binomial", &plain, &GOLDEN_IDX, &BINOMIAL_GOLDEN);
}

#[test]
fn bonds_bitwise_conformance_and_golden() {
    let batch = bonds::BondBatch::generate(64, 11);
    let mut plain = vec![0.0f32; batch.n];
    bonds::bonds_kernel(&batch, &mut plain);

    let region = bonds::build_region(None, None).unwrap();
    let sequential = bonds::run_annotated(&region, &batch, 1, false).unwrap();
    assert_eq!(sequential, plain, "sequential session != plain kernel");
    let batched = bonds::run_annotated(&region, &batch, 48, false).unwrap();
    assert_eq!(batched, plain, "batched session != plain kernel");

    let forced = bonds::build_region(None, Some(missing_model())).unwrap();
    forced.force_fallback(true);
    let fb = bonds::run_annotated(&forced, &batch, 48, true).unwrap();
    assert_eq!(fb, plain, "forced fallback != plain kernel");
    assert_eq!(forced.stats().model_cache_misses, 0);

    assert_golden("bonds", &plain, &GOLDEN_IDX, &BONDS_GOLDEN);
}

#[test]
fn minibude_bitwise_conformance_and_golden() {
    let deck = minibude::Deck::generate(24, 8, 5);
    let poses = minibude::PoseBatch::generate(64, 6);
    let mut plain = vec![0.0f32; poses.n];
    minibude::energies(&deck, &poses, &mut plain);

    let region = minibude::build_region(None, None).unwrap();
    let sequential = minibude::run_annotated(&region, &deck, &poses, 1, false).unwrap();
    assert_eq!(sequential, plain, "sequential session != plain kernel");
    let batched = minibude::run_annotated(&region, &deck, &poses, 48, false).unwrap();
    assert_eq!(batched, plain, "batched session != plain kernel");

    let forced = minibude::build_region(None, Some(missing_model())).unwrap();
    forced.force_fallback(true);
    let fb = minibude::run_annotated(&forced, &deck, &poses, 48, true).unwrap();
    assert_eq!(fb, plain, "forced fallback != plain kernel");
    assert_eq!(forced.stats().model_cache_misses, 0);

    assert_golden("minibude", &plain, &GOLDEN_IDX, &MINIBUDE_GOLDEN);
}

/// Drive the annotated ParticleFilter region over every frame of `video`,
/// in chunks of `chunk` frames. The accurate closure writes the app's own
/// estimates — on the accurate path the scatter is skipped, so the final
/// buffer is exactly what the un-annotated application produces.
fn pf_annotated(
    region: &Region,
    video: &particlefilter::Video,
    estimates: &[(f32, f32)],
    chunk: usize,
    use_model: bool,
) -> Vec<f32> {
    let binds = Bindings::new()
        .with("H", video.h as i64)
        .with("W", video.w as i64);
    let session = region
        .session(
            &binds,
            &[("frame", &[video.h, video.w]), ("loc", &[2])],
            chunk,
        )
        .unwrap();
    let frame_len = video.h * video.w;
    let mut out = Vec::new();
    let mut locs = vec![0.0f32; chunk * 2];
    let mut f0 = 0usize;
    while f0 < video.frames {
        let f1 = (f0 + chunk).min(video.frames);
        let n = f1 - f0;
        let chunk_locs = &mut locs[..n * 2];
        let mut outcome = session
            .invoke_batch(n)
            .unwrap()
            .use_surrogate(use_model)
            .input("frame", &video.pixels[f0 * frame_len..f1 * frame_len])
            .unwrap()
            .run(|| {
                for (k, &(x, y)) in estimates[f0..f1].iter().enumerate() {
                    chunk_locs[2 * k] = x;
                    chunk_locs[2 * k + 1] = y;
                }
            })
            .unwrap();
        outcome.output("loc", chunk_locs).unwrap();
        outcome.finish().unwrap();
        out.extend_from_slice(chunk_locs);
        f0 = f1;
    }
    out
}

#[test]
fn particlefilter_bitwise_conformance_and_golden() {
    let video = particlefilter::Video::generate(4, 24, 24, 3);
    let estimates = particlefilter::particle_filter(&video, 256, 9);
    let plain: Vec<f32> = estimates.iter().flat_map(|&(x, y)| [x, y]).collect();

    let region = particlefilter::build_region(None, None).unwrap();
    let sequential = pf_annotated(&region, &video, &estimates, 1, false);
    assert_eq!(sequential, plain, "sequential session != plain tracker");
    let batched = pf_annotated(&region, &video, &estimates, 3, false);
    assert_eq!(batched, plain, "batched session != plain tracker");

    let forced = particlefilter::build_region(None, Some(missing_model())).unwrap();
    forced.force_fallback(true);
    let fb = pf_annotated(&forced, &video, &estimates, 3, true);
    assert_eq!(fb, plain, "forced fallback != plain tracker");
    let s = forced.stats();
    assert_eq!(s.fallback_invocations, video.frames as u64);
    assert_eq!(s.model_cache_misses, 0);

    // Frames 0 and 3, (x, y) each.
    assert_golden(
        "particlefilter",
        &plain,
        &[0, 1, 6, 7],
        &PARTICLEFILTER_GOLDEN,
    );
}

/// Regenerates the golden constants above. Run with
/// `cargo test -p hpacml-apps --test golden_e2e -- --ignored --nocapture print_goldens`.
#[test]
#[ignore]
fn print_goldens() {
    let batch = binomial::OptionBatch::generate(64, 7);
    let mut v = vec![0.0f32; batch.n];
    binomial::price_batch(&batch, 64, &mut v);
    println!("BINOMIAL_GOLDEN: {:?}", bits(&v, &GOLDEN_IDX));

    let batch = bonds::BondBatch::generate(64, 11);
    let mut v = vec![0.0f32; batch.n];
    bonds::bonds_kernel(&batch, &mut v);
    println!("BONDS_GOLDEN: {:?}", bits(&v, &GOLDEN_IDX));

    let deck = minibude::Deck::generate(24, 8, 5);
    let poses = minibude::PoseBatch::generate(64, 6);
    let mut v = vec![0.0f32; poses.n];
    minibude::energies(&deck, &poses, &mut v);
    println!("MINIBUDE_GOLDEN: {:?}", bits(&v, &GOLDEN_IDX));

    let video = particlefilter::Video::generate(4, 24, 24, 3);
    let est = particlefilter::particle_filter(&video, 256, 9);
    let flat: Vec<f32> = est.iter().flat_map(|&(x, y)| [x, y]).collect();
    println!("PARTICLEFILTER_GOLDEN: {:?}", bits(&flat, &[0, 1, 6, 7]));
}
