//! Shared benchmark infrastructure: the [`Benchmark`] trait the harness
//! drives, scale presets, and the surrogate-training helper every app reuses
//! (the "ML engineer" role in the paper's workflow).

use hpacml_core::{Region, RegionStats, Session};
use hpacml_directive::sema::Bindings;
use hpacml_nn::data::NormAxis;
use hpacml_nn::optim::Optimizer;
use hpacml_nn::{InMemoryDataset, ModelSpec, Normalizer, TrainConfig};
use hpacml_tensor::Tensor;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Benchmark errors (wraps every subsystem the apps touch).
#[derive(Debug)]
pub enum AppError {
    Core(hpacml_core::CoreError),
    Nn(hpacml_nn::NnError),
    Store(hpacml_store::StoreError),
    Tensor(hpacml_tensor::TensorError),
    Io(std::io::Error),
    Config(String),
}

impl std::fmt::Display for AppError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AppError::Core(e) => write!(f, "{e}"),
            AppError::Nn(e) => write!(f, "{e}"),
            AppError::Store(e) => write!(f, "{e}"),
            AppError::Tensor(e) => write!(f, "{e}"),
            AppError::Io(e) => write!(f, "{e}"),
            AppError::Config(s) => write!(f, "config error: {s}"),
        }
    }
}

impl std::error::Error for AppError {}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        impl From<$ty> for AppError {
            fn from(e: $ty) -> Self {
                AppError::$variant(e)
            }
        }
    };
}
from_err!(Core, hpacml_core::CoreError);
from_err!(Nn, hpacml_nn::NnError);
from_err!(Store, hpacml_store::StoreError);
from_err!(Tensor, hpacml_tensor::TensorError);
from_err!(Io, std::io::Error);

/// Crate-wide result alias.
pub type AppResult<T> = std::result::Result<T, AppError>;

/// Problem-size preset. `Quick` finishes in seconds on one core and is used
/// by tests and CI; `Full` approaches the paper's campaign shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    Quick,
    Full,
}

impl Scale {
    pub fn parse(s: &str) -> AppResult<Scale> {
        match s {
            "quick" => Ok(Scale::Quick),
            "full" => Ok(Scale::Full),
            other => Err(AppError::Config(format!(
                "unknown scale `{other}` (quick|full)"
            ))),
        }
    }
}

/// Configuration shared by every benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    pub scale: Scale,
    pub seed: u64,
    /// Directory for databases, models and other artifacts.
    pub workdir: PathBuf,
}

impl BenchConfig {
    pub fn quick(workdir: impl Into<PathBuf>) -> Self {
        BenchConfig {
            scale: Scale::Quick,
            seed: 42,
            workdir: workdir.into(),
        }
    }

    pub fn full(workdir: impl Into<PathBuf>) -> Self {
        BenchConfig {
            scale: Scale::Full,
            seed: 42,
            workdir: workdir.into(),
        }
    }

    pub fn db_path(&self, bench: &str) -> PathBuf {
        self.workdir.join(format!("{bench}.h5"))
    }

    pub fn model_path(&self, bench: &str) -> PathBuf {
        self.workdir.join(format!("{bench}.hml"))
    }

    pub fn ensure_workdir(&self) -> AppResult<()> {
        std::fs::create_dir_all(&self.workdir)?;
        Ok(())
    }
}

/// Result of a data-collection run (Table III columns).
#[derive(Debug, Clone)]
pub struct CollectStats {
    /// Runtime without collection (the "Original Runtime" column).
    pub plain_runtime: Duration,
    /// Runtime with data collection enabled.
    pub collect_runtime: Duration,
    /// Bytes written to the database.
    pub db_bytes: usize,
    /// Invocations recorded.
    pub rows: usize,
}

/// Result of training one surrogate.
#[derive(Debug, Clone)]
pub struct TrainStats {
    /// Validation loss (MSE in normalized target space).
    pub val_loss: f64,
    /// Scalar parameter count of the trained model.
    pub params: usize,
    pub train_time: Duration,
    pub model_path: PathBuf,
    /// Per-batch inference latency measured on validation-shaped input.
    pub inference_latency: Duration,
}

/// Result of an end-to-end evaluation (Fig. 5 / Figs. 7–8 points).
#[derive(Debug, Clone)]
pub struct EvalStats {
    pub accurate_time: Duration,
    pub surrogate_time: Duration,
    /// End-to-end speedup (accurate / surrogate).
    pub speedup: f64,
    /// QoI error under the benchmark's metric (RMSE or MAPE).
    pub qoi_error: f64,
    /// Runtime phase breakdown of the surrogate run (Fig. 6).
    pub region: RegionStats,
}

/// Result of an end-to-end evaluation under a [`ValidationPolicy`]: one
/// point of the fig10 error-budget vs achieved-speedup sweep. Tight budgets
/// push `fallback_fraction` toward 1 and the speedup toward parity with the
/// accurate run; loose budgets recover the full surrogate speedup.
///
/// [`ValidationPolicy`]: hpacml_core::ValidationPolicy
#[derive(Debug, Clone)]
pub struct PolicyEval {
    /// End-to-end speedup achieved *with* validation + adaptive fallback
    /// active (accurate / validated-surrogate wall time).
    pub speedup: f64,
    /// QoI error of the run's final outputs under the benchmark's metric.
    /// Fallback-served chunks contribute the original application's error —
    /// zero where the host code is itself the reference (Binomial), the
    /// original approximation's error where the QoI is measured against
    /// ground truth (ParticleFilter).
    pub qoi_error: f64,
    /// Fraction of logical invocations served by host-code fallback.
    pub fallback_fraction: f64,
    /// Samples scored against shadow host executions.
    pub validated: u64,
    /// Full region counters of the validated run.
    pub region: RegionStats,
}

/// The uniform interface the table/figure harness drives.
pub trait Benchmark: Send + Sync {
    /// Lower-case identifier (`minibude`, `binomial`, ...).
    fn name(&self) -> &'static str;

    /// Table I description.
    fn description(&self) -> &'static str;

    /// `"RMSE"` or `"MAPE"`.
    fn qoi_metric(&self) -> &'static str;

    /// Total Rust LoC of the benchmark implementation (Table II column 1);
    /// measured from the module source via `include_str!`.
    fn total_loc(&self) -> usize;

    /// The HPAC-ML annotation strings this benchmark registers (Table II).
    fn directives(&self) -> Vec<String>;

    /// Run with data collection enabled; writes the database under
    /// `cfg.db_path(self.name())` and reports Table III numbers.
    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats>;

    /// Default (known-good) architecture for this benchmark at this scale.
    fn default_spec(&self, cfg: &BenchConfig) -> ModelSpec;

    /// Train a surrogate with the given architecture and hyperparameters
    /// from the collected database; saves the model to `model_path`.
    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats>;

    /// End-to-end evaluation: accurate run vs surrogate run, QoI error.
    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats>;

    /// Convenience: collect (if needed) → train default spec → evaluate.
    fn pipeline(&self, cfg: &BenchConfig) -> AppResult<(CollectStats, TrainStats, EvalStats)> {
        cfg.ensure_workdir()?;
        let collect = self.collect(cfg)?;
        let spec = self.default_spec(cfg);
        let tc = self.default_train_config(cfg);
        let model_path = cfg.model_path(self.name());
        let train = self.train_spec(cfg, &spec, &tc, &model_path)?;
        let eval = self.evaluate(cfg, &model_path)?;
        Ok((collect, train, eval))
    }

    /// Default training hyperparameters for this benchmark at this scale.
    fn default_train_config(&self, cfg: &BenchConfig) -> TrainConfig {
        let epochs = match cfg.scale {
            Scale::Quick => 30,
            Scale::Full => 120,
        };
        TrainConfig {
            epochs,
            batch_size: 128,
            optimizer: Optimizer::adam(3e-3, 1e-5),
            seed: cfg.seed,
            early_stop_patience: 10,
            ..Default::default()
        }
    }
}

/// One compiled batched session for a 1-D sweep (the MiniBUDE/Binomial/Bonds
/// pattern). The region's unit of work is **one** sweep element (`N = 1`:
/// `feat` input features, one output value); a whole sweep of any length is
/// served by [`Session::invoke_batch`] in chunks of up to `max_batch` —
/// one forward pass per chunk, the tail included, through a single
/// compilation. This replaces the old full+tail two-session workaround: the
/// batch dimension is a runtime parameter now.
pub struct SweepSession<'r> {
    session: Session<'r>,
    input: String,
    feat: usize,
    output: String,
}

impl<'r> SweepSession<'r> {
    pub fn new(
        region: &'r Region,
        input: &str,
        feat: usize,
        output: &str,
        max_batch: usize,
    ) -> AppResult<Self> {
        let binds = Bindings::new().with("N", 1);
        let session = region.session(
            &binds,
            &[(input, &[feat]), (output, &[1])],
            max_batch.max(1),
        )?;
        Ok(SweepSession {
            session,
            input: input.to_string(),
            feat,
            output: output.to_string(),
        })
    }

    /// The underlying compiled session.
    pub fn session(&self) -> &Session<'r> {
        &self.session
    }

    /// Run the whole sweep: `data` holds `out.len() * feat` features, and
    /// each chunk of up to `max_batch` sweep elements is one batched region
    /// invocation — surrogate when `use_model`, otherwise the `accurate`
    /// kernel invoked as `accurate(start, end, out_chunk)`.
    pub fn run(
        &self,
        data: &[f32],
        out: &mut [f32],
        use_model: bool,
        mut accurate: impl FnMut(usize, usize, &mut [f32]),
    ) -> AppResult<()> {
        let total = out.len();
        assert_eq!(
            data.len(),
            total * self.feat,
            "sweep input/output lengths disagree"
        );
        let max_batch = self.session.max_batch();
        let mut start = 0usize;
        while start < total {
            let end = (start + max_batch).min(total);
            let n = end - start;
            let chunk_in = &data[start * self.feat..end * self.feat];
            let out_chunk = &mut out[start..end];
            let mut outcome = self
                .session
                .invoke_batch(n)?
                .use_surrogate(use_model)
                .input(&self.input, chunk_in)?
                .run(|| accurate(start, end, out_chunk))?;
            outcome.output(&self.output, out_chunk)?;
            outcome.finish()?;
            start = end;
        }
        Ok(())
    }
}

/// Count non-blank, non-comment lines — the LoC convention of Table II.
pub fn source_loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Outcome of [`train_surrogate`].
pub struct TrainedSurrogate {
    pub val_loss: f64,
    pub params: usize,
    pub train_time: Duration,
    pub inference_latency: Duration,
}

/// The shared "ML engineer" step: split, normalize, train, fold the
/// normalizers into the saved model, and measure inference latency.
// allow: the shared train-entry signature mirrors the paper's knobs (split,
// epochs, lr, batch, seed); a config struct would just rename the problem
// for the four app harnesses that call it positionally.
#[allow(clippy::too_many_arguments)]
pub fn train_surrogate(
    x: Tensor,
    y: Tensor,
    x_axis: NormAxis,
    y_axis: NormAxis,
    spec: &ModelSpec,
    tc: &TrainConfig,
    model_path: &Path,
    latency_batch: usize,
) -> AppResult<TrainedSurrogate> {
    let ds = InMemoryDataset::new(x, y)?;
    let (train_raw, val_raw) = ds.split(0.8, tc.seed.wrapping_add(17));
    let in_norm = Normalizer::fit(&train_raw.x, x_axis)?;
    let out_norm = Normalizer::fit(&train_raw.y, y_axis)?;
    let train_ds = InMemoryDataset::new(
        in_norm.transform(&train_raw.x),
        out_norm.transform(&train_raw.y),
    )?;
    let val_ds = InMemoryDataset::new(
        in_norm.transform(&val_raw.x),
        out_norm.transform(&val_raw.y),
    )?;

    let mut model = spec.build(tc.seed.wrapping_add(29))?;
    let t0 = std::time::Instant::now();
    let hist = hpacml_nn::train(&mut model, &train_ds, Some(&val_ds), tc)?;
    let train_time = t0.elapsed();

    hpacml_nn::serialize::save_model(
        model_path,
        spec,
        &mut model,
        Some(&in_norm),
        Some(&out_norm),
    )?;

    // Inference latency on a validation-shaped batch (the paper's model-size
    // vs speed axis).
    let batch = latency_batch.max(1).min(val_ds.len().max(1));
    let probe = val_ds.subset(&(0..batch).collect::<Vec<_>>());
    let t0 = std::time::Instant::now();
    let reps = 3;
    for _ in 0..reps {
        let _ = model.forward(&probe.x)?;
    }
    let inference_latency = t0.elapsed() / reps;

    Ok(TrainedSurrogate {
        val_loss: hist.best_val,
        params: spec.param_count(),
        train_time,
        inference_latency,
    })
}

/// Deterministic xorshift-based f32 stream used by input generators (kept
/// independent of `rand` so generated datasets are stable across releases).
#[derive(Debug, Clone)]
pub struct GenRng(u64);

impl GenRng {
    pub fn new(seed: u64) -> Self {
        GenRng(seed.wrapping_mul(0x9E3779B97F4A7C15) | 1)
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn unit(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform in [lo, hi).
    #[inline]
    pub fn range(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit()
    }

    /// Standard normal (Box–Muller).
    pub fn normal(&mut self) -> f32 {
        let u1 = self.unit().max(1e-7);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick").unwrap(), Scale::Quick);
        assert_eq!(Scale::parse("full").unwrap(), Scale::Full);
        assert!(Scale::parse("medium").is_err());
    }

    #[test]
    fn source_loc_skips_blanks_and_comments() {
        let src = "\n// comment\nfn main() {\n}\n\n//! doc\n";
        assert_eq!(source_loc(src), 2);
    }

    #[test]
    fn gen_rng_is_deterministic_and_spread() {
        let mut a = GenRng::new(5);
        let mut b = GenRng::new(5);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = GenRng::new(9);
        let vals: Vec<f32> = (0..10_000).map(|_| r.unit()).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
    }

    #[test]
    fn gen_rng_normal_moments() {
        let mut r = GenRng::new(11);
        let vals: Vec<f32> = (0..20_000).map(|_| r.normal()).collect();
        let mean = vals.iter().sum::<f32>() as f64 / vals.len() as f64;
        let var = vals.iter().map(|v| (*v as f64 - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.03, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn config_paths() {
        let cfg = BenchConfig::quick("/tmp/x");
        assert_eq!(cfg.db_path("bude"), PathBuf::from("/tmp/x/bude.h5"));
        assert_eq!(cfg.model_path("bude"), PathBuf::from("/tmp/x/bude.hml"));
    }
}
