//! ParticleFilter: statistical tracking of an object through noisy video
//! frames (the Rodinia benchmark).
//!
//! The application synthesizes a video of a dark disk moving over a bright
//! noisy background, then tracks it with a bootstrap particle filter:
//! propagate particles with the motion model, weight them by a pixel
//! likelihood over the disk footprint, normalize, estimate, and resample
//! systematically.
//!
//! The particle filter is itself an *algorithmic approximation* of the
//! object's location — which is what makes this the paper's Observation 1
//! benchmark: a CNN surrogate (frame → location) can beat the original
//! approximation on both runtime and accuracy. In collect mode the region
//! captures the ground-truth locations the generator knows (exactly as the
//! paper describes building the PF training set).
//!
//! QoI: the tracked object location per frame. Metric: RMSE vs ground truth.

use crate::common::*;
use hpacml_core::Region;
use hpacml_core::Session;
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{LayerSpec, ModelSpec};
use hpacml_nn::TrainConfig;
use hpacml_tensor::Tensor;
use std::path::Path;
use std::time::{Duration, Instant};

/// Frames coalesced into one batched region invocation wherever frames are
/// independent (collection and surrogate evaluation). A runtime batch — any
/// tail length reuses the same compiled session.
pub const FRAME_BATCH: usize = 32;

/// Foreground (object) pixel intensity, per Rodinia.
pub const FG: f32 = 100.0;
/// Background pixel intensity, per Rodinia.
pub const BG: f32 = 228.0;
/// Object disk radius in pixels.
pub const RADIUS: i32 = 4;

/// A synthetic video with known ground truth.
#[derive(Debug, Clone)]
pub struct Video {
    /// `frames * h * w`, row-major per frame.
    pub pixels: Vec<f32>,
    /// Ground-truth object center per frame.
    pub truth: Vec<(f32, f32)>,
    pub frames: usize,
    pub h: usize,
    pub w: usize,
}

impl Video {
    /// Generate a video: the object starts near a corner and moves with a
    /// per-video velocity plus jitter, reflecting off the walls; every pixel
    /// carries heavy Gaussian sensor noise (Rodinia-style).
    pub fn generate(frames: usize, h: usize, w: usize, seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let mut pixels = vec![0.0f32; frames * h * w];
        let mut truth = Vec::with_capacity(frames);
        let margin = RADIUS as f32 + 2.0;
        let mut x = rng.range(margin, w as f32 * 0.4);
        let mut y = rng.range(margin, h as f32 * 0.4);
        // True motion follows Rodinia's (+1, +2) direction but at a per-video
        // speed the particle filter's fixed motion prior does not know — the
        // model-mismatch that makes the PF an *approximation* (Observation 1).
        let speed = rng.range(0.3, 2.2);
        let mut vx = speed;
        let mut vy = 2.0 * speed;
        for f in 0..frames {
            x += vx + 0.3 * rng.normal();
            y += vy + 0.3 * rng.normal();
            if x < margin || x > w as f32 - margin {
                vx = -vx;
                x = x.clamp(margin, w as f32 - margin);
            }
            if y < margin || y > h as f32 - margin {
                vy = -vy;
                y = y.clamp(margin, h as f32 - margin);
            }
            truth.push((x, y));
            let base = f * h * w;
            for iy in 0..h {
                for ix in 0..w {
                    let dx = ix as f32 - x;
                    let dy = iy as f32 - y;
                    let inside = dx * dx + dy * dy <= (RADIUS * RADIUS) as f32;
                    let mean = if inside { FG } else { BG };
                    pixels[base + iy * w + ix] = mean + 35.0 * rng.normal();
                }
            }
        }
        Video {
            pixels,
            truth,
            frames,
            h,
            w,
        }
    }

    pub fn frame(&self, f: usize) -> &[f32] {
        &self.pixels[f * self.h * self.w..(f + 1) * self.h * self.w]
    }
}

/// Pixel offsets of the disk footprint (Rodinia's `disk` / `getneighbors`).
pub fn disk_offsets() -> Vec<(i32, i32)> {
    let mut out = Vec::new();
    for dy in -RADIUS..=RADIUS {
        for dx in -RADIUS..=RADIUS {
            if dx * dx + dy * dy <= RADIUS * RADIUS {
                out.push((dx, dy));
            }
        }
    }
    out
}

/// Rodinia's pixel log-likelihood: prefers pixels near FG over BG.
#[inline]
fn pixel_loglik(p: f32) -> f32 {
    (((p - BG) * (p - BG)) - ((p - FG) * (p - FG))) / 50.0
}

/// The original algorithmic approximation: a bootstrap particle filter.
/// Returns the estimated location per frame.
pub fn particle_filter(video: &Video, n_particles: usize, seed: u64) -> Vec<(f32, f32)> {
    let mut rng = GenRng::new(seed ^ 0x50F1);
    let offsets = disk_offsets();
    let (h, w) = (video.h as i32, video.w as i32);
    let (x0, y0) = video.truth[0];

    // Particles start at the (known) initial location, as in Rodinia.
    let mut px: Vec<f32> = vec![x0; n_particles];
    let mut py: Vec<f32> = vec![y0; n_particles];
    let mut weights = vec![1.0f32 / n_particles as f32; n_particles];
    let mut estimates = Vec::with_capacity(video.frames);

    for f in 0..video.frames {
        let frame = video.frame(f);
        // Propagate with the motion model + process noise.
        for i in 0..n_particles {
            px[i] += 1.0 + 2.0 * rng.normal();
            py[i] += 2.0 + 2.0 * rng.normal();
        }
        // Likelihood over the disk footprint.
        let mut max_ll = f32::NEG_INFINITY;
        let mut loglik = vec![0.0f32; n_particles];
        for i in 0..n_particles {
            let cx = px[i].round() as i32;
            let cy = py[i].round() as i32;
            let mut ll = 0.0f32;
            for (dx, dy) in &offsets {
                let ix = (cx + dx).clamp(0, w - 1);
                let iy = (cy + dy).clamp(0, h - 1);
                ll += pixel_loglik(frame[(iy * w + ix) as usize]);
            }
            loglik[i] = ll / offsets.len() as f32;
            max_ll = max_ll.max(loglik[i]);
        }
        // Weights (log-sum-exp stabilized) and normalization.
        let mut sum = 0.0f32;
        for i in 0..n_particles {
            weights[i] = (loglik[i] - max_ll).exp();
            sum += weights[i];
        }
        for wgt in weights.iter_mut() {
            *wgt /= sum.max(1e-30);
        }
        // Estimate.
        let ex: f32 = px.iter().zip(&weights).map(|(x, w)| x * w).sum();
        let ey: f32 = py.iter().zip(&weights).map(|(y, w)| y * w).sum();
        estimates.push((ex, ey));
        // Systematic resampling.
        let mut cdf = vec![0.0f32; n_particles];
        let mut acc = 0.0f32;
        for i in 0..n_particles {
            acc += weights[i];
            cdf[i] = acc;
        }
        let u0 = rng.unit() / n_particles as f32;
        let mut new_px = vec![0.0f32; n_particles];
        let mut new_py = vec![0.0f32; n_particles];
        let mut j = 0usize;
        for i in 0..n_particles {
            let u = u0 + i as f32 / n_particles as f32;
            while j < n_particles - 1 && cdf[j] < u {
                j += 1;
            }
            new_px[i] = px[j];
            new_py[i] = py[j];
        }
        px = new_px;
        py = new_py;
        for wgt in weights.iter_mut() {
            *wgt = 1.0 / n_particles as f32;
        }
    }
    estimates
}

/// RMSE of a 2-D track against ground truth (Euclidean, per frame).
pub fn track_rmse(estimates: &[(f32, f32)], truth: &[(f32, f32)]) -> f64 {
    assert_eq!(estimates.len(), truth.len());
    let sum: f64 = estimates
        .iter()
        .zip(truth)
        .map(|(e, t)| ((e.0 - t.0) as f64).powi(2) + ((e.1 - t.1) as f64).powi(2))
        .sum();
    (sum / (2.0 * estimates.len().max(1) as f64)).sqrt()
}

/// Sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct PfConfig {
    pub h: usize,
    pub w: usize,
    pub frames: usize,
    pub particles: usize,
    /// Videos used for training-data collection.
    pub train_videos: usize,
    pub eval_reps: u32,
}

impl PfConfig {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => PfConfig {
                h: 48,
                w: 48,
                frames: 10,
                particles: 4096,
                train_videos: 150,
                eval_reps: 3,
            },
            Scale::Full => PfConfig {
                h: 128,
                w: 128,
                frames: 24,
                particles: 16384,
                train_videos: 120,
                eval_reps: 20,
            },
        }
    }
}

// The Table II shape: two functor declarations, one input map, one ml
// directive with the output map embedded as an `fa-expr`.
const DIRECTIVES: [&str; 4] = [
    "#pragma approx tensor functor(ifrm: [i, j, 0:1] = ([i, j]))",
    "#pragma approx tensor functor(oloc: [i, 0:1] = ([i]))",
    "#pragma approx tensor map(to: ifrm(frame[0:H, 0:W]))",
    "#pragma approx ml(predicated:use_model) in(frame) out(oloc(loc[0:2]))",
];

/// The benchmark's canonical annotated region (the Table II directives),
/// with optional database and model overrides. Public so the golden
/// end-to-end tests and the fig10 harness drive the exact production
/// annotation.
pub fn build_region(db: Option<&Path>, model: Option<&Path>) -> AppResult<Region> {
    let mut builder = Region::builder("particlefilter");
    for d in DIRECTIVES {
        builder = builder.directive(d);
    }
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(m) = model {
        builder = builder.model(m);
    }
    Ok(builder.build()?)
}

/// The ParticleFilter benchmark.
pub struct ParticleFilter;

impl ParticleFilter {
    /// RMSE of the original particle-filter approximation on the evaluation
    /// video — the black vertical line in the paper's Fig. 7.
    pub fn original_approximation_rmse(&self, cfg: &BenchConfig) -> f64 {
        let pc = PfConfig::for_scale(cfg.scale);
        let video = Video::generate(pc.frames, pc.h, pc.w, cfg.seed.wrapping_add(0xF117));
        let est = particle_filter(&video, pc.particles, cfg.seed);
        track_rmse(&est, &video.truth)
    }

    /// End-to-end evaluation with online validation and adaptive fallback
    /// active (one point of the fig10 error-budget sweep), over a small set
    /// of independent evaluation videos so the controller sees multiple
    /// region invocations to act across. The accurate closure runs the real
    /// particle filter — computed once per video and cached across that
    /// video's frame chunks, so shadow validations and fallback-served
    /// chunks pay the genuine host cost exactly once per video.
    pub fn evaluate_with_policy(
        &self,
        cfg: &BenchConfig,
        model_path: &Path,
        policy: hpacml_core::ValidationPolicy,
    ) -> AppResult<PolicyEval> {
        self.evaluate_with_policy_at(cfg, model_path, policy, hpacml_core::Precision::F32)
    }

    /// [`evaluate_with_policy`](Self::evaluate_with_policy) with a serving
    /// precision: the region's model is quantized to `precision` before the
    /// sweep, and the validation controller demotes through the precision
    /// ladder (int8 → bf16 → f32) before any host fallback — the fig10
    /// precision axis.
    pub fn evaluate_with_policy_at(
        &self,
        cfg: &BenchConfig,
        model_path: &Path,
        policy: hpacml_core::ValidationPolicy,
        precision: hpacml_core::Precision,
    ) -> AppResult<PolicyEval> {
        let pc = PfConfig::for_scale(cfg.scale);
        const EVAL_VIDEOS: usize = 6;
        let videos: Vec<Video> = (0..EVAL_VIDEOS)
            .map(|v| {
                Video::generate(
                    pc.frames,
                    pc.h,
                    pc.w,
                    cfg.seed.wrapping_add(0xF117 + v as u64),
                )
            })
            .collect();
        let binds = Bindings::new()
            .with("H", pc.h as i64)
            .with("W", pc.w as i64);

        let t0 = Instant::now();
        for (v, video) in videos.iter().enumerate() {
            std::hint::black_box(particle_filter(
                video,
                pc.particles,
                cfg.seed.wrapping_add(v as u64),
            ));
        }
        let accurate_time = t0.elapsed();

        let region = build_region(None, Some(model_path))?;
        if precision != hpacml_core::Precision::F32 {
            // Before the validation policy, so the fresh controller picks up
            // the precision ladder.
            region.set_precision_policy(&hpacml_core::PrecisionPolicy::at(precision))?;
        }
        region.set_validation_policy(policy)?;
        // Small frame chunks: several region invocations per video, so one
        // sweep exercises the sample-rate and hysteresis knobs.
        let chunk_frames = FRAME_BATCH.min(pc.frames.div_ceil(2)).max(1);
        let session = region.session(
            &binds,
            &[("frame", &[pc.h, pc.w]), ("loc", &[2])],
            chunk_frames,
        )?;
        let frame_len = pc.h * pc.w;
        let mut rmse_acc = 0.0f64;
        let mut locs = vec![0.0f32; chunk_frames * 2];
        let t0 = Instant::now();
        for (v, video) in videos.iter().enumerate() {
            let mut estimates: Vec<(f32, f32)> = Vec::new();
            // The PF tracks a whole video in one sequential pass; shadow and
            // fallback chunks share a single cached run of it.
            let mut pf_shadow: Option<Vec<(f32, f32)>> = None;
            let pf_seed = cfg.seed.wrapping_add(v as u64);
            let mut f0 = 0usize;
            while f0 < video.frames {
                let f1 = (f0 + chunk_frames).min(video.frames);
                let n = f1 - f0;
                let chunk = &mut locs[..n * 2];
                let mut outcome = session
                    .invoke_batch(n)?
                    .use_surrogate(true)
                    .input("frame", &video.pixels[f0 * frame_len..f1 * frame_len])?
                    .run(|| {
                        let est = pf_shadow
                            .get_or_insert_with(|| particle_filter(video, pc.particles, pf_seed));
                        for (k, &(x, y)) in est[f0..f1].iter().enumerate() {
                            chunk[2 * k] = x;
                            chunk[2 * k + 1] = y;
                        }
                    })?;
                outcome.output("loc", chunk)?;
                outcome.finish()?;
                estimates.extend(chunk.chunks_exact(2).map(|l| (l[0], l[1])));
                f0 = f1;
            }
            rmse_acc += track_rmse(&estimates, &video.truth);
        }
        let validated_time = t0.elapsed();

        let s = region.stats();
        Ok(PolicyEval {
            speedup: accurate_time.as_secs_f64() / validated_time.as_secs_f64().max(1e-12),
            qoi_error: rmse_acc / videos.len() as f64,
            fallback_fraction: s.fallback_fraction(),
            validated: s.validated_invocations,
            region: s,
        })
    }
}

impl Benchmark for ParticleFilter {
    fn name(&self) -> &'static str {
        "particlefilter"
    }

    fn default_train_config(&self, cfg: &BenchConfig) -> TrainConfig {
        let epochs = match cfg.scale {
            Scale::Quick => 40,
            Scale::Full => 150,
        };
        TrainConfig {
            epochs,
            batch_size: 64,
            optimizer: hpacml_nn::optim::Optimizer::adam(2e-3, 1e-5),
            seed: cfg.seed,
            early_stop_patience: 12,
            ..Default::default()
        }
    }

    fn description(&self) -> &'static str {
        "Statistical estimation of a target object's location given noisy \
         measurements (Rodinia particle filter)."
    }

    fn qoi_metric(&self) -> &'static str {
        "RMSE"
    }

    fn total_loc(&self) -> usize {
        source_loc(include_str!("particlefilter.rs"))
    }

    fn directives(&self) -> Vec<String> {
        DIRECTIVES.iter().map(|s| s.to_string()).collect()
    }

    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats> {
        cfg.ensure_workdir()?;
        let pc = PfConfig::for_scale(cfg.scale);

        // Original runtime: the particle filter over the same video set the
        // collection run processes (generation excluded from both timings).
        let videos: Vec<Video> = (0..pc.train_videos)
            .map(|v| Video::generate(pc.frames, pc.h, pc.w, cfg.seed.wrapping_add(v as u64)))
            .collect();
        let t0 = Instant::now();
        for (v, video) in videos.iter().enumerate() {
            std::hint::black_box(particle_filter(
                video,
                pc.particles,
                cfg.seed.wrapping_add(v as u64),
            ));
        }
        let plain_runtime = t0.elapsed();

        // Collection: per frame, store the frame and the ground-truth
        // location (the paper: "captures the ground-truth values to create
        // the training dataset"). Frames are independent, so chunks of up to
        // `FRAME_BATCH` go through one *batched* region invocation each; the
        // database still gets one row per frame.
        let db = cfg.db_path(self.name());
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None)?;
        let binds = Bindings::new()
            .with("H", pc.h as i64)
            .with("W", pc.w as i64);
        // One compiled session serves every frame chunk of every video.
        let session = region.session(
            &binds,
            &[("frame", &[pc.h, pc.w]), ("loc", &[2])],
            FRAME_BATCH,
        )?;
        let frame_len = pc.h * pc.w;
        let t0 = Instant::now();
        let mut rows = 0usize;
        for (v, video) in videos.iter().enumerate() {
            // The PF itself runs once per video (the accurate path), and each
            // frame is one logical region invocation, batched per chunk.
            let estimates = particle_filter(video, pc.particles, cfg.seed.wrapping_add(v as u64));
            let mut f0 = 0usize;
            while f0 < video.frames {
                let f1 = (f0 + FRAME_BATCH).min(video.frames);
                let n = f1 - f0;
                let mut locs: Vec<f32> = video.truth[f0..f1]
                    .iter()
                    .flat_map(|&(x, y)| [x, y])
                    .collect();
                let mut outcome = session
                    .invoke_batch(n)?
                    .use_surrogate(false)
                    .input("frame", &video.pixels[f0 * frame_len..f1 * frame_len])?
                    .run(|| {
                        // Accurate path: the app's own estimates (kept for
                        // the QoI); ground truth is what gets collected.
                        std::hint::black_box(&estimates[f0..f1]);
                    })?;
                outcome.output("loc", &mut locs)?;
                outcome.finish()?;
                rows += n;
                f0 = f1;
            }
        }
        let collect_runtime = t0.elapsed();
        region.flush_db()?;

        Ok(CollectStats {
            plain_runtime,
            collect_runtime,
            db_bytes: region.db_size_bytes(),
            rows,
        })
    }

    fn default_spec(&self, cfg: &BenchConfig) -> ModelSpec {
        let pc = PfConfig::for_scale(cfg.scale);
        // Table IV (ParticleFilter space): conv + maxpool + FC head.
        let (k, s) = (6usize, 3usize);
        let oh = (pc.h - k) / s + 1;
        let ow = (pc.w - k) / s + 1;
        let (pk, ps) = (2usize, 2usize);
        let ph = (oh - pk) / ps + 1;
        let pw = (ow - pk) / ps + 1;
        ModelSpec::new(
            vec![1, pc.h, pc.w],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 1,
                    out_ch: 6,
                    kernel: k,
                    stride: s,
                    pad: 0,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: pk,
                    stride: ps,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 6 * ph * pw,
                    out_features: 64,
                },
                LayerSpec::ReLU,
                LayerSpec::Linear {
                    in_features: 64,
                    out_features: 2,
                },
            ],
        )
    }

    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats> {
        let pc = PfConfig::for_scale(cfg.scale);
        let file = hpacml_store::H5File::open(cfg.db_path(self.name()))?;
        let group = file.root().group("particlefilter")?;
        let xs = group.group("inputs")?.dataset("frame")?;
        let ys = group.group("outputs")?.dataset("loc")?;
        let samples = xs.rows();
        // Frames were gathered as [H, W, 1] rows; the CNN wants [N, 1, H, W].
        let x = Tensor::from_vec(xs.read_f32()?, [samples, 1, pc.h, pc.w])?;
        let y = Tensor::from_vec(ys.read_f32()?, [samples, 2])?;
        let t = train_surrogate(
            x,
            y,
            hpacml_nn::data::NormAxis::PerChannel,
            hpacml_nn::data::NormAxis::PerFeature,
            spec,
            tc,
            model_path,
            8,
        )?;
        Ok(TrainStats {
            val_loss: t.val_loss,
            params: t.params,
            train_time: t.train_time,
            model_path: model_path.to_path_buf(),
            inference_latency: t.inference_latency,
        })
    }

    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats> {
        let pc = PfConfig::for_scale(cfg.scale);
        let video = Video::generate(pc.frames, pc.h, pc.w, cfg.seed.wrapping_add(0xF117));
        let binds = Bindings::new()
            .with("H", pc.h as i64)
            .with("W", pc.w as i64);

        // Accurate path: the original particle filter.
        let mut pf_estimates = Vec::new();
        let mut accurate_total = Duration::ZERO;
        for _ in 0..pc.eval_reps {
            let t0 = Instant::now();
            pf_estimates = particle_filter(&video, pc.particles, cfg.seed);
            accurate_total += t0.elapsed();
        }
        let accurate_time = accurate_total / pc.eval_reps;
        std::hint::black_box(&pf_estimates);

        // Surrogate path: frames are independent here, so chunks of up to
        // FRAME_BATCH frames share one CNN forward pass each, through a
        // session compiled once outside the loop.
        let region = build_region(None, Some(model_path))?;
        let session: Session<'_> = region.session(
            &binds,
            &[("frame", &[pc.h, pc.w]), ("loc", &[2])],
            FRAME_BATCH,
        )?;
        let frame_len = pc.h * pc.w;
        let mut cnn_estimates: Vec<(f32, f32)> = Vec::new();
        let mut locs = vec![0.0f32; FRAME_BATCH * 2];
        let mut surrogate_total = Duration::ZERO;
        for _ in 0..pc.eval_reps {
            region.reset_stats();
            cnn_estimates.clear();
            let t0 = Instant::now();
            let mut f0 = 0usize;
            while f0 < video.frames {
                let f1 = (f0 + FRAME_BATCH).min(video.frames);
                let n = f1 - f0;
                let mut outcome = session
                    .invoke_batch(n)?
                    .use_surrogate(true)
                    .input("frame", &video.pixels[f0 * frame_len..f1 * frame_len])?
                    .run(|| unreachable!("surrogate path"))?;
                outcome.output("loc", &mut locs[..n * 2])?;
                outcome.finish()?;
                cnn_estimates.extend(locs[..n * 2].chunks_exact(2).map(|l| (l[0], l[1])));
                f0 = f1;
            }
            surrogate_total += t0.elapsed();
        }
        let surrogate_time = surrogate_total / pc.eval_reps;

        Ok(EvalStats {
            accurate_time,
            surrogate_time,
            speedup: accurate_time.as_secs_f64() / surrogate_time.as_secs_f64().max(1e-12),
            qoi_error: track_rmse(&cnn_estimates, &video.truth),
            region: region.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn video_object_is_dark_on_bright_background() {
        // Heavy per-pixel noise: average small patches to test the means.
        let v = Video::generate(4, 32, 32, 1);
        let (x, y) = v.truth[2];
        let frame = v.frame(2);
        let patch_mean = |cx: usize, cy: usize| -> f32 {
            let mut sum = 0.0;
            let mut n = 0;
            for dy in 0..2 {
                for dx in 0..2 {
                    sum += frame[(cy + dy) * 32 + cx + dx];
                    n += 1;
                }
            }
            sum / n as f32
        };
        let center = patch_mean(x.round() as usize - 1, y.round() as usize - 1);
        assert!((center - FG).abs() < 60.0, "object patch {center}");
        let corner = patch_mean(0, 0);
        assert!((corner - BG).abs() < 60.0, "background patch {corner}");
        assert!(corner > center, "object must be darker than background");
    }

    #[test]
    fn truth_stays_in_bounds() {
        let v = Video::generate(50, 40, 60, 3);
        for (x, y) in &v.truth {
            assert!(*x >= 0.0 && *x < 60.0);
            assert!(*y >= 0.0 && *y < 40.0);
        }
    }

    #[test]
    fn disk_footprint_is_symmetric() {
        let offs = disk_offsets();
        assert!(offs.contains(&(0, 0)));
        for (dx, dy) in &offs {
            assert!(offs.contains(&(-dx, -dy)));
        }
        // π r² within ±20%.
        let area = std::f32::consts::PI * (RADIUS * RADIUS) as f32;
        assert!((offs.len() as f32 - area).abs() < 0.2 * area + 5.0);
    }

    #[test]
    fn pixel_likelihood_prefers_foreground() {
        assert!(pixel_loglik(FG) > pixel_loglik(BG));
        assert!(pixel_loglik(FG) > 0.0);
        assert!(pixel_loglik(BG) < 0.0);
    }

    #[test]
    fn particle_filter_tracks_the_object() {
        let v = Video::generate(12, 48, 48, 7);
        let est = particle_filter(&v, 2048, 11);
        let rmse = track_rmse(&est, &v.truth);
        assert!(rmse < 2.0, "particle filter lost the object: RMSE {rmse}");
        // And it is an *approximation*: not exact.
        assert!(rmse > 0.01);
    }

    #[test]
    fn more_particles_do_not_hurt() {
        let v = Video::generate(10, 48, 48, 13);
        let coarse = track_rmse(&particle_filter(&v, 256, 1), &v.truth);
        let fine = track_rmse(&particle_filter(&v, 8192, 1), &v.truth);
        assert!(fine <= coarse * 1.5 + 0.5, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn track_rmse_basics() {
        let a = vec![(0.0f32, 0.0f32), (1.0, 1.0)];
        assert_eq!(track_rmse(&a, &a), 0.0);
        let b = vec![(3.0f32, 4.0f32), (1.0, 1.0)];
        // First point distance 5 → squared 25 over 4 coords = 2.5.
        assert!((track_rmse(&a, &b) - (25.0f64 / 4.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn table_metadata() {
        let b = ParticleFilter;
        assert_eq!(b.qoi_metric(), "RMSE");
        assert_eq!(b.directives().len(), 4);
    }
}
