//! QoI error metrics: RMSE, MAPE and relative-error distributions.

/// Root mean squared error between two equally sized series.
pub fn rmse(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "rmse: length mismatch");
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum();
    (sum / a.len() as f64).sqrt()
}

/// Mean absolute percentage error (MiniBUDE's metric), in percent.
/// Entries where the reference is ~0 are skipped, as is conventional.
pub fn mape(reference: &[f32], approx: &[f32]) -> f64 {
    assert_eq!(reference.len(), approx.len(), "mape: length mismatch");
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (r, a) in reference.iter().zip(approx) {
        if r.abs() > 1e-12 {
            total += ((r - a) / r).abs() as f64;
            count += 1;
        }
    }
    if count == 0 {
        return 0.0;
    }
    100.0 * total / count as f64
}

/// Per-element relative error `|approx - ref| / max(|ref|, eps)`.
pub fn relative_errors(reference: &[f32], approx: &[f32]) -> Vec<f64> {
    assert_eq!(reference.len(), approx.len());
    reference
        .iter()
        .zip(approx)
        .map(|(r, a)| ((r - a).abs() / r.abs().max(1e-6)) as f64)
        .collect()
}

/// Empirical CDF evaluation: fraction of `values` ≤ each requested quantile
/// threshold. Returns `(threshold, fraction)` pairs — the Fig. 9f curves.
pub fn cdf_at(values: &[f64], thresholds: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    thresholds
        .iter()
        .map(|t| {
            let count = sorted.partition_point(|v| v <= t);
            (*t, count as f64 / sorted.len().max(1) as f64)
        })
        .collect()
}

/// Value below which `q` of the distribution lies (0 ≤ q ≤ 1).
pub fn quantile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let idx = ((sorted.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rmse_basics() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]), 0.0);
    }

    #[test]
    fn mape_skips_zero_reference() {
        let m = mape(&[100.0, 0.0, 50.0], &[110.0, 5.0, 45.0]);
        assert!((m - 10.0).abs() < 1e-5, "{m}"); // (10% + 10%) / 2, f32 rounding
    }

    #[test]
    fn cdf_monotone_and_bounded() {
        let vals = vec![0.1, 0.2, 0.3, 0.9];
        let cdf = cdf_at(&vals, &[0.0, 0.2, 0.5, 1.0]);
        assert_eq!(cdf[0].1, 0.0);
        assert_eq!(cdf[1].1, 0.5);
        assert_eq!(cdf[2].1, 0.75);
        assert_eq!(cdf[3].1, 1.0);
    }

    #[test]
    fn quantile_selects() {
        let vals = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&vals, 0.0), 1.0);
        assert_eq!(quantile(&vals, 0.5), 3.0);
        assert_eq!(quantile(&vals, 1.0), 5.0);
        assert!(quantile(&[], 0.5).is_nan());
    }

    #[test]
    fn relative_errors_guard_small_reference() {
        let re = relative_errors(&[2.0, 0.0], &[1.0, 1.0]);
        assert!((re[0] - 0.5).abs() < 1e-9);
        assert!(re[1].is_finite());
    }
}
