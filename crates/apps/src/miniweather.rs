//! MiniWeather: simplified atmospheric dynamics (Norman's miniWeather
//! mini-app), the paper's Observation 4 benchmark.
//!
//! Solves the 2-D compressible Euler equations with a hydrostatic background
//! state on an x–z plane: flux-form finite volume, 4th-order interface
//! interpolation with hyperviscosity, dimensional splitting with a
//! three-stage Runge–Kutta per direction, periodic x boundaries and rigid
//! lids in z. The initial condition is the rising thermal bubble.
//!
//! State variables (perturbations from the hydrostatic background where
//! applicable): density, x-momentum, z-momentum, potential-temperature
//! density. QoI: the state at every gridpoint. Metric: RMSE (paper Table I).
//!
//! The surrogate is an auto-regressive CNN mapping the interior state at
//! step `t` to step `t+1`; the `inout` clause (3 directives total, matching
//! Table II) wires it up. Fig. 9's interleaving experiments mix surrogate
//! and accurate timesteps through the `predicated` machinery.

use crate::common::*;
use crate::metrics;
use hpacml_core::{Region, Session};
use hpacml_directive::sema::Bindings;
use hpacml_nn::spec::{LayerSpec, ModelSpec};
use hpacml_nn::TrainConfig;
use hpacml_tensor::Tensor;
use std::path::Path;
use std::time::Instant;

/// Number of prognostic variables.
pub const NUM_VARS: usize = 4;
/// Variable indices.
pub const ID_DENS: usize = 0;
pub const ID_UMOM: usize = 1;
pub const ID_WMOM: usize = 2;
pub const ID_RHOT: usize = 3;
/// Halo width (the 4th-order stencil needs 2).
pub const HS: usize = 2;

// Physical constants (miniWeather's values).
const GRAV: f64 = 9.8;
const CP: f64 = 1004.5;
const RD: f64 = 287.0;
const P0: f64 = 1.0e5;
const C0: f64 = 27.5629410929725921310572974482;
const GAMMA: f64 = 1.40027894002789400278940027894;
const XLEN: f64 = 2.0e4;
const ZLEN: f64 = 1.0e4;
const HV_BETA: f64 = 0.25;
const MAX_SPEED: f64 = 450.0;
const CFL: f64 = 1.5;

/// The miniWeather simulation: state plus precomputed hydrostatic profiles.
#[derive(Debug, Clone)]
pub struct Sim {
    pub nx: usize,
    pub nz: usize,
    pub dx: f64,
    pub dz: f64,
    pub dt: f64,
    /// `[NUM_VARS][nz + 2*HS][nx + 2*HS]`, flattened.
    pub state: Vec<f32>,
    hy_dens_cell: Vec<f64>,
    hy_dens_theta_cell: Vec<f64>,
    hy_dens_int: Vec<f64>,
    hy_dens_theta_int: Vec<f64>,
    hy_pressure_int: Vec<f64>,
    /// Alternate x/z sweep order each step (miniWeather's direction switch).
    step_parity: bool,
    /// Steps taken so far.
    pub steps_taken: usize,
}

/// Hydrostatic profile for constant potential temperature θ₀ = 300 K.
fn hydro_const_theta(z: f64) -> (f64, f64) {
    let theta0 = 300.0;
    let exner = 1.0 - GRAV * z / (CP * theta0);
    let p = P0 * exner.powf(CP / RD);
    let rt = (p / C0).powf(1.0 / GAMMA);
    let r = rt / theta0;
    (r, rt) // density, density*theta
}

/// Cosine-tapered ellipse perturbation (miniWeather's `sample_ellipse_cosine`).
fn ellipse_cosine(x: f64, z: f64, amp: f64, x0: f64, z0: f64, xrad: f64, zrad: f64) -> f64 {
    let dist =
        (((x - x0) / xrad).powi(2) + ((z - z0) / zrad).powi(2)).sqrt() * std::f64::consts::PI / 2.0;
    if dist <= std::f64::consts::PI / 2.0 {
        amp * dist.cos().powi(2)
    } else {
        0.0
    }
}

impl Sim {
    /// Set up the thermal-bubble test case on an `nx × nz` grid.
    pub fn new(nx: usize, nz: usize) -> Sim {
        let dx = XLEN / nx as f64;
        let dz = ZLEN / nz as f64;
        let dt = dx.min(dz) / MAX_SPEED * CFL;
        let mut sim = Sim {
            nx,
            nz,
            dx,
            dz,
            dt,
            state: vec![0.0; NUM_VARS * (nz + 2 * HS) * (nx + 2 * HS)],
            hy_dens_cell: vec![0.0; nz + 2 * HS],
            hy_dens_theta_cell: vec![0.0; nz + 2 * HS],
            hy_dens_int: vec![0.0; nz + 1],
            hy_dens_theta_int: vec![0.0; nz + 1],
            hy_pressure_int: vec![0.0; nz + 1],
            step_parity: false,
            steps_taken: 0,
        };
        // Hydrostatic background at cell centers (including halo levels) and
        // interfaces, via Gauss-Legendre-free midpoint sampling (adequate at
        // these resolutions).
        for k in 0..nz + 2 * HS {
            let z = (k as f64 - HS as f64 + 0.5) * dz;
            let (r, rt) = hydro_const_theta(z.clamp(0.0, ZLEN));
            sim.hy_dens_cell[k] = r;
            sim.hy_dens_theta_cell[k] = rt;
        }
        for k in 0..=nz {
            let z = k as f64 * dz;
            let (r, rt) = hydro_const_theta(z);
            sim.hy_dens_int[k] = r;
            sim.hy_dens_theta_int[k] = rt;
            sim.hy_pressure_int[k] = C0 * rt.powf(GAMMA);
        }
        // Thermal bubble: potential-temperature perturbation.
        for k in 0..nz {
            for i in 0..nx {
                let x = (i as f64 + 0.5) * dx;
                let z = (k as f64 + 0.5) * dz;
                let theta_pert = ellipse_cosine(x, z, 3.0, XLEN / 2.0, 2000.0, 2000.0, 2000.0);
                let (r, _) = hydro_const_theta(z);
                let idx = sim.idx(ID_RHOT, k + HS, i + HS);
                sim.state[idx] = (r * theta_pert) as f32;
            }
        }
        sim
    }

    #[inline]
    fn idx(&self, var: usize, k: usize, i: usize) -> usize {
        (var * (self.nz + 2 * HS) + k) * (self.nx + 2 * HS) + i
    }

    /// Copy of the interior state `[NUM_VARS * nz * nx]` (no halos) — the
    /// array the HPAC-ML region maps.
    pub fn interior(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(NUM_VARS * self.nz * self.nx);
        for v in 0..NUM_VARS {
            for k in 0..self.nz {
                for i in 0..self.nx {
                    out.push(self.state[self.idx(v, k + HS, i + HS)]);
                }
            }
        }
        out
    }

    /// Overwrite the interior state from a `[NUM_VARS * nz * nx]` buffer.
    pub fn set_interior(&mut self, interior: &[f32]) {
        assert_eq!(interior.len(), NUM_VARS * self.nz * self.nx);
        let mut it = interior.iter();
        for v in 0..NUM_VARS {
            for k in 0..self.nz {
                for i in 0..self.nx {
                    let idx = self.idx(v, k + HS, i + HS);
                    self.state[idx] = *it.next().expect("sized above");
                }
            }
        }
    }

    fn exchange_halos_x(&mut self) {
        let nx = self.nx;
        for v in 0..NUM_VARS {
            for k in 0..self.nz + 2 * HS {
                for h in 0..HS {
                    let left = self.idx(v, k, h);
                    let right_src = self.idx(v, k, nx + h);
                    self.state[left] = self.state[right_src];
                    let right = self.idx(v, k, nx + HS + h);
                    let left_src = self.idx(v, k, HS + h);
                    self.state[right] = self.state[left_src];
                }
            }
        }
    }

    fn exchange_halos_z(&mut self) {
        let nz = self.nz;
        for v in 0..NUM_VARS {
            for i in 0..self.nx + 2 * HS {
                for h in 0..HS {
                    let bottom = self.idx(v, h, i);
                    let top = self.idx(v, nz + HS + h, i);
                    if v == ID_WMOM {
                        // Rigid lids: no vertical momentum through boundaries.
                        self.state[bottom] = 0.0;
                        self.state[top] = 0.0;
                    } else {
                        let bsrc = self.idx(v, HS, i);
                        let tsrc = self.idx(v, nz + HS - 1, i);
                        self.state[bottom] = self.state[bsrc];
                        self.state[top] = self.state[tsrc];
                    }
                }
            }
        }
    }

    /// x-direction tendencies of `src` into `tend` (`[NUM_VARS * nz * nx]`).
    fn tendencies_x(&self, src: &[f32], tend: &mut [f64], dt: f64) {
        let (nx, nz) = (self.nx, self.nz);
        let row = nx + 2 * HS;
        let plane = (nz + 2 * HS) * row;
        let hv_coef = -HV_BETA * self.dx / (16.0 * dt);
        // Fluxes at nx+1 interfaces per row.
        let mut flux = vec![0.0f64; NUM_VARS * nz * (nx + 1)];
        for k in 0..nz {
            for i in 0..=nx {
                let mut vals = [0.0f64; NUM_VARS];
                let mut d3 = [0.0f64; NUM_VARS];
                for (v, val) in vals.iter_mut().enumerate() {
                    let base = v * plane + (k + HS) * row + i;
                    let s0 = src[base] as f64;
                    let s1 = src[base + 1] as f64;
                    let s2 = src[base + 2] as f64;
                    let s3 = src[base + 3] as f64;
                    *val = -s0 / 12.0 + 7.0 * s1 / 12.0 + 7.0 * s2 / 12.0 - s3 / 12.0;
                    d3[v] = -s0 + 3.0 * s1 - 3.0 * s2 + s3;
                }
                let r = vals[ID_DENS] + self.hy_dens_cell[k + HS];
                let u = vals[ID_UMOM] / r;
                let w = vals[ID_WMOM] / r;
                let t = (vals[ID_RHOT] + self.hy_dens_theta_cell[k + HS]) / r;
                let p = C0 * (r * t).powf(GAMMA);
                let f = |v: usize| (v * nz + k) * (nx + 1) + i;
                flux[f(ID_DENS)] = r * u - hv_coef * d3[ID_DENS];
                flux[f(ID_UMOM)] = r * u * u + p - hv_coef * d3[ID_UMOM];
                flux[f(ID_WMOM)] = r * u * w - hv_coef * d3[ID_WMOM];
                flux[f(ID_RHOT)] = r * u * t - hv_coef * d3[ID_RHOT];
            }
        }
        for v in 0..NUM_VARS {
            for k in 0..nz {
                for i in 0..nx {
                    let fl = flux[(v * nz + k) * (nx + 1) + i];
                    let fr = flux[(v * nz + k) * (nx + 1) + i + 1];
                    tend[(v * nz + k) * nx + i] = -(fr - fl) / self.dx;
                }
            }
        }
    }

    /// z-direction tendencies with rigid-lid boundaries and buoyancy source.
    fn tendencies_z(&self, src: &[f32], tend: &mut [f64], dt: f64) {
        let (nx, nz) = (self.nx, self.nz);
        let row = nx + 2 * HS;
        let plane = (nz + 2 * HS) * row;
        let hv_coef = -HV_BETA * self.dz / (16.0 * dt);
        let mut flux = vec![0.0f64; NUM_VARS * (nz + 1) * nx];
        for k in 0..=nz {
            for i in 0..nx {
                let mut vals = [0.0f64; NUM_VARS];
                let mut d3 = [0.0f64; NUM_VARS];
                for (v, val) in vals.iter_mut().enumerate() {
                    let col = i + HS;
                    let base = v * plane + k * row + col;
                    let s0 = src[base] as f64;
                    let s1 = src[base + row] as f64;
                    let s2 = src[base + 2 * row] as f64;
                    let s3 = src[base + 3 * row] as f64;
                    *val = -s0 / 12.0 + 7.0 * s1 / 12.0 + 7.0 * s2 / 12.0 - s3 / 12.0;
                    d3[v] = -s0 + 3.0 * s1 - 3.0 * s2 + s3;
                }
                let r = vals[ID_DENS] + self.hy_dens_int[k];
                let mut w = vals[ID_WMOM] / r;
                if k == 0 || k == nz {
                    // No flow through the rigid lids.
                    w = 0.0;
                    d3[ID_DENS] = 0.0;
                }
                let u = vals[ID_UMOM] / r;
                let t = (vals[ID_RHOT] + self.hy_dens_theta_int[k]) / r;
                let p = C0 * (r * t).powf(GAMMA) - self.hy_pressure_int[k];
                let f = |v: usize| (v * (nz + 1) + k) * nx + i;
                flux[f(ID_DENS)] = r * w - hv_coef * d3[ID_DENS];
                flux[f(ID_UMOM)] = r * w * u - hv_coef * d3[ID_UMOM];
                flux[f(ID_WMOM)] = r * w * w + p - hv_coef * d3[ID_WMOM];
                flux[f(ID_RHOT)] = r * w * t - hv_coef * d3[ID_RHOT];
            }
        }
        for v in 0..NUM_VARS {
            for k in 0..nz {
                for i in 0..nx {
                    let fl = flux[(v * (nz + 1) + k) * nx + i];
                    let fu = flux[(v * (nz + 1) + k + 1) * nx + i];
                    let mut t = -(fu - fl) / self.dz;
                    if v == ID_WMOM {
                        // Buoyancy: the perturbation density feels gravity.
                        t -= self.state[self.idx(ID_DENS, k + HS, i + HS)] as f64 * GRAV;
                    }
                    tend[(v * nz + k) * nx + i] = t;
                }
            }
        }
    }

    /// One semi-discrete update `out = base + dt·tend(src)` in one direction.
    fn semi_step(&mut self, dir_x: bool, base: &[f32], src: &[f32], dt: f64, out: &mut [f32]) {
        let (nx, nz) = (self.nx, self.nz);
        let mut tend = vec![0.0f64; NUM_VARS * nz * nx];
        // Halos belong to the *source* state: install, exchange, compute.
        self.state.copy_from_slice(src);
        if dir_x {
            self.exchange_halos_x();
        } else {
            self.exchange_halos_z();
        }
        let src_haloed = self.state.clone();
        if dir_x {
            self.tendencies_x(&src_haloed, &mut tend, dt);
        } else {
            self.tendencies_z(&src_haloed, &mut tend, dt);
        }
        out.copy_from_slice(base);
        for v in 0..NUM_VARS {
            for k in 0..nz {
                for i in 0..nx {
                    let idx = self.idx(v, k + HS, i + HS);
                    out[idx] = (base[idx] as f64 + dt * tend[(v * nz + k) * nx + i]) as f32;
                }
            }
        }
    }

    /// Three-stage Runge–Kutta in one direction (miniWeather's
    /// `semi_discrete_step` cascade: dt/3, dt/2, dt).
    fn direction_sweep(&mut self, dir_x: bool) {
        let dt = self.dt;
        let state0 = self.state.clone();
        let mut tmp1 = state0.clone();
        let mut tmp2 = state0.clone();
        self.semi_step(dir_x, &state0, &state0, dt / 3.0, &mut tmp1);
        self.semi_step(dir_x, &state0, &tmp1, dt / 2.0, &mut tmp2);
        let mut fin = state0.clone();
        self.semi_step(dir_x, &state0, &tmp2, dt, &mut fin);
        self.state = fin;
    }

    /// Advance one full timestep (dimensional splitting, alternating order).
    pub fn step(&mut self) {
        if self.step_parity {
            self.direction_sweep(true);
            self.direction_sweep(false);
        } else {
            self.direction_sweep(false);
            self.direction_sweep(true);
        }
        self.step_parity = !self.step_parity;
        self.steps_taken += 1;
    }

    /// RMSE between the interiors of two simulations.
    pub fn rmse_vs(&self, other: &Sim) -> f64 {
        metrics::rmse(&self.interior(), &other.interior())
    }

    /// Total perturbation mass (density integrated over the interior) — a
    /// conserved quantity of the flux-form scheme used by tests.
    pub fn total_mass(&self) -> f64 {
        let mut mass = 0.0f64;
        for k in 0..self.nz {
            for i in 0..self.nx {
                mass += self.state[self.idx(ID_DENS, k + HS, i + HS)] as f64;
            }
        }
        mass * self.dx * self.dz
    }
}

/// Sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct WeatherConfig {
    pub nx: usize,
    pub nz: usize,
    /// Steps used for training-data collection.
    pub collect_steps: usize,
    /// Warmup steps before evaluation (the paper uses the first 1000 steps
    /// for training and evaluates 1000→1200).
    pub eval_warmup: usize,
    /// Evaluation horizon after warmup.
    pub eval_steps: usize,
}

impl WeatherConfig {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => WeatherConfig {
                nx: 64,
                nz: 32,
                collect_steps: 240,
                eval_warmup: 240,
                eval_steps: 40,
            },
            Scale::Full => WeatherConfig {
                nx: 128,
                nz: 64,
                collect_steps: 1000,
                eval_warmup: 1000,
                eval_steps: 200,
            },
        }
    }
}

/// MiniWeather needs only 3 directives (paper Table II): the state functor,
/// one map, and an `inout` ml clause — the reverse map is derived.
const DIRECTIVES: [&str; 3] = [
    "#pragma approx tensor functor(st: [c, k, i, 0:1] = ([c, k, i]))",
    "#pragma approx tensor map(to: st(state[0:4, 0:NZ, 0:NX]))",
    "#pragma approx ml(predicated:use_model) inout(state)",
];

fn build_region(db: Option<&Path>, model: Option<&Path>) -> AppResult<Region> {
    let mut builder = Region::builder("miniweather");
    for d in DIRECTIVES {
        builder = builder.directive(d);
    }
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(m) = model {
        builder = builder.model(m);
    }
    Ok(builder.build()?)
}

/// Compile the region into a reusable [`Session`] for this simulation's
/// grid shape — the compile-once step of the hot auto-regressive loop.
pub fn weather_session<'r>(region: &'r Region, sim: &Sim) -> AppResult<Session<'r>> {
    let binds = Bindings::new()
        .with("NZ", sim.nz as i64)
        .with("NX", sim.nx as i64);
    // The auto-regressive timestep loop is inherently sequential (each step
    // feeds the next), so one sample per invocation: max_batch = 1.
    Ok(region.session(&binds, &[("state", &[NUM_VARS, sim.nz, sim.nx])], 1)?)
}

/// Advance `sim` one step through a compiled session: accurate + collected
/// when `use_model` is false, surrogate when true.
pub fn session_step(session: &Session<'_>, sim: &mut Sim, use_model: bool) -> AppResult<()> {
    let mut interior = sim.interior();
    // `inout`: gather the pre-state, run (or skip) the accurate step, then
    // scatter/gather the post-state from the same array.
    let pre = interior.clone();
    let mut outcome = session
        .invoke()
        .use_surrogate(use_model)
        .input("state", &pre)?
        .run(|| {
            sim.step();
            interior = sim.interior();
        })?;
    outcome.output("state", &mut interior)?;
    outcome.finish()?;
    if use_model {
        sim.set_interior(&interior);
        sim.steps_taken += 1;
    }
    Ok(())
}

/// Advance `sim` one step through the region (one-shot convenience; the
/// session core is cached on the region, but hot loops should hold a
/// [`weather_session`] and call [`session_step`] directly).
pub fn region_step(region: &Region, sim: &mut Sim, use_model: bool) -> AppResult<()> {
    let session = weather_session(region, sim)?;
    session_step(&session, sim, use_model)
}

/// The MiniWeather benchmark.
pub struct MiniWeather;

impl MiniWeather {
    /// CNN spec used by Fig. 9 style runs: spatial-preserving convolutions.
    pub fn cnn_spec(nz: usize, nx: usize, hidden_ch: usize, kernel: usize) -> ModelSpec {
        let pad = kernel / 2;
        ModelSpec::new(
            vec![NUM_VARS, nz, nx],
            vec![
                LayerSpec::Conv2d {
                    in_ch: NUM_VARS,
                    out_ch: hidden_ch,
                    kernel,
                    stride: 1,
                    pad,
                },
                LayerSpec::Tanh,
                LayerSpec::Conv2d {
                    in_ch: hidden_ch,
                    out_ch: NUM_VARS,
                    kernel,
                    stride: 1,
                    pad,
                },
            ],
        )
    }
}

impl Benchmark for MiniWeather {
    fn name(&self) -> &'static str {
        "miniweather"
    }

    fn description(&self) -> &'static str {
        "Simulates atmospheric dynamics through essential weather and climate \
         modeling equations, emphasizing buoyant force impacts."
    }

    fn qoi_metric(&self) -> &'static str {
        "RMSE"
    }

    fn total_loc(&self) -> usize {
        source_loc(include_str!("miniweather.rs"))
    }

    fn directives(&self) -> Vec<String> {
        DIRECTIVES.iter().map(|s| s.to_string()).collect()
    }

    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats> {
        cfg.ensure_workdir()?;
        let wc = WeatherConfig::for_scale(cfg.scale);

        // Original runtime: one plain timestep (amortized over several).
        let mut plain = Sim::new(wc.nx, wc.nz);
        let probe = 8.min(wc.collect_steps);
        let t0 = Instant::now();
        for _ in 0..probe {
            plain.step();
        }
        let plain_runtime = t0.elapsed() / probe as u32 * wc.collect_steps as u32;

        let db = cfg.db_path(self.name());
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None)?;
        let mut sim = Sim::new(wc.nx, wc.nz);
        let session = weather_session(&region, &sim)?;
        let t0 = Instant::now();
        for _ in 0..wc.collect_steps {
            session_step(&session, &mut sim, false)?;
        }
        let collect_runtime = t0.elapsed();
        region.flush_db()?;

        Ok(CollectStats {
            plain_runtime,
            collect_runtime,
            db_bytes: region.db_size_bytes(),
            rows: wc.collect_steps,
        })
    }

    fn default_spec(&self, cfg: &BenchConfig) -> ModelSpec {
        let wc = WeatherConfig::for_scale(cfg.scale);
        Self::cnn_spec(wc.nz, wc.nx, 4, 3)
    }

    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats> {
        let wc = WeatherConfig::for_scale(cfg.scale);
        let file = hpacml_store::H5File::open(cfg.db_path(self.name()))?;
        let group = file.root().group("miniweather")?;
        let xs = group.group("inputs")?.dataset("state")?;
        let ys = group.group("outputs")?.dataset("state")?;
        let samples = xs.rows();
        let x = Tensor::from_vec(xs.read_f32()?, [samples, NUM_VARS, wc.nz, wc.nx])?;
        let y = Tensor::from_vec(ys.read_f32()?, [samples, NUM_VARS, wc.nz, wc.nx])?;
        let t = train_surrogate(
            x,
            y,
            hpacml_nn::data::NormAxis::PerChannel,
            hpacml_nn::data::NormAxis::PerChannel,
            spec,
            tc,
            model_path,
            4,
        )?;
        Ok(TrainStats {
            val_loss: t.val_loss,
            params: t.params,
            train_time: t.train_time,
            model_path: model_path.to_path_buf(),
            inference_latency: t.inference_latency,
        })
    }

    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats> {
        let wc = WeatherConfig::for_scale(cfg.scale);

        // Shared warmup trajectory (the paper's "original solution until
        // timestep 1000").
        let mut base = Sim::new(wc.nx, wc.nz);
        for _ in 0..wc.eval_warmup {
            base.step();
        }

        // Reference: accurate for the whole horizon.
        let mut reference = base.clone();
        let t0 = Instant::now();
        for _ in 0..wc.eval_steps {
            reference.step();
        }
        let accurate_time = t0.elapsed();

        // Surrogate: auto-regressive CNN for the whole horizon, through a
        // session compiled once outside the timestep loop.
        let region = build_region(None, Some(model_path))?;
        let mut surrogate = base.clone();
        let session = weather_session(&region, &surrogate)?;
        let t0 = Instant::now();
        for _ in 0..wc.eval_steps {
            session_step(&session, &mut surrogate, true)?;
        }
        let surrogate_time = t0.elapsed();

        Ok(EvalStats {
            accurate_time,
            surrogate_time,
            speedup: accurate_time.as_secs_f64() / surrogate_time.as_secs_f64().max(1e-12),
            qoi_error: reference.rmse_vs(&surrogate),
            region: region.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydrostatic_profile_decreases_with_height() {
        let (r0, rt0) = hydro_const_theta(0.0);
        let (r1, rt1) = hydro_const_theta(5000.0);
        assert!(r0 > r1, "density must fall with height");
        assert!(rt0 > rt1);
        assert!((rt0 / r0 - 300.0).abs() < 1e-9, "theta is 300 K everywhere");
        assert!((rt1 / r1 - 300.0).abs() < 1e-9);
    }

    #[test]
    fn bubble_initializes_warm_anomaly() {
        let sim = Sim::new(32, 16);
        // The bubble lives near x = XLEN/2, z = 2000.
        let k = (2000.0 / sim.dz) as usize;
        let i = sim.nx / 2;
        let center = sim.state[sim.idx(ID_RHOT, k + HS, i + HS)];
        assert!(center > 0.0, "bubble must be a positive theta anomaly");
        let corner = sim.state[sim.idx(ID_RHOT, HS, HS)];
        assert!(corner.abs() < center.abs());
    }

    #[test]
    fn simulation_stays_finite_and_bubble_rises() {
        let mut sim = Sim::new(32, 16);
        for _ in 0..60 {
            sim.step();
        }
        assert!(sim.state.iter().all(|v| v.is_finite()), "state blew up");
        // Vertical momentum somewhere in the bubble column must be upward.
        let i = sim.nx / 2;
        let mut max_w = f32::NEG_INFINITY;
        for k in 0..sim.nz {
            max_w = max_w.max(sim.state[sim.idx(ID_WMOM, k + HS, i + HS)]);
        }
        assert!(max_w > 0.0, "thermal bubble should rise (max w = {max_w})");
    }

    #[test]
    fn mass_is_conserved_by_flux_form() {
        let mut sim = Sim::new(24, 12);
        let m0 = sim.total_mass();
        for _ in 0..30 {
            sim.step();
        }
        let m1 = sim.total_mass();
        // Flux-form + periodic x + rigid lids: density perturbation mass is
        // conserved up to f32 roundoff.
        assert!(
            (m1 - m0).abs() < 2e-2 * sim.dx * sim.dz,
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn interior_roundtrip() {
        let mut sim = Sim::new(16, 8);
        let snapshot = sim.interior();
        assert_eq!(snapshot.len(), NUM_VARS * 8 * 16);
        let mut changed = snapshot.clone();
        changed[5] += 1.5;
        sim.set_interior(&changed);
        assert_eq!(sim.interior(), changed);
    }

    #[test]
    fn halo_exchange_is_periodic_in_x() {
        let mut sim = Sim::new(16, 8);
        // Tag a distinctive value near the right edge.
        let idx = sim.idx(ID_DENS, HS + 3, sim.nx + HS - 1);
        sim.state[idx] = 7.25;
        sim.exchange_halos_x();
        // The left halo must now carry it.
        let halo = sim.idx(ID_DENS, HS + 3, HS - 1);
        assert_eq!(sim.state[halo], 7.25);
    }

    #[test]
    fn wmom_halos_are_rigid_lids() {
        let mut sim = Sim::new(16, 8);
        for v in sim.state.iter_mut() {
            *v = 1.0;
        }
        sim.exchange_halos_z();
        let bottom = sim.idx(ID_WMOM, 0, 5);
        let top = sim.idx(ID_WMOM, sim.nz + 2 * HS - 1, 5);
        assert_eq!(sim.state[bottom], 0.0);
        assert_eq!(sim.state[top], 0.0);
    }

    #[test]
    fn deterministic_trajectories() {
        let mut a = Sim::new(24, 12);
        let mut b = Sim::new(24, 12);
        for _ in 0..10 {
            a.step();
            b.step();
        }
        assert_eq!(a.state, b.state);
        assert!(a.rmse_vs(&b) == 0.0);
    }

    #[test]
    fn table_metadata_three_directives() {
        let b = MiniWeather;
        assert_eq!(
            b.directives().len(),
            3,
            "MiniWeather uses the inout shortcut"
        );
        assert_eq!(b.qoi_metric(), "RMSE");
    }
}
