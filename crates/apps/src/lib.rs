//! The five HPAC-ML evaluation benchmarks (paper Table I), implemented from
//! their published algorithms and annotated with HPAC-ML directives.
//!
//! | Benchmark | Origin | QoI | Metric |
//! |---|---|---|---|
//! | MiniBUDE | Bristol BUDE mini-app | per-pose binding energy | MAPE |
//! | Binomial Options | CUDA finance sample | option prices | RMSE |
//! | Bonds | GPU quant-finance suite | accrued interest | RMSE |
//! | MiniWeather | Norman's miniWeather | atmospheric state | RMSE |
//! | ParticleFilter | Rodinia | tracked object location | RMSE |
//!
//! Every benchmark implements [`Benchmark`], the uniform interface the
//! table/figure harness drives: generate data, run the accurate kernel,
//! collect training data through its HPAC-ML region, train surrogates, and
//! evaluate end-to-end speedup and QoI error.
//!
//! The paper runs these as CUDA kernels on A100s; here both the accurate
//! kernels and surrogate inference run on the `hpacml-par` pool (see
//! DESIGN.md §1 for the substitution argument).

pub mod binomial;
pub mod bonds;
pub mod common;
pub mod metrics;
pub mod minibude;
pub mod miniweather;
pub mod particlefilter;

pub use common::{
    AppError, AppResult, BenchConfig, Benchmark, CollectStats, EvalStats, PolicyEval, Scale,
    TrainStats,
};

/// All five benchmarks, boxed, in the paper's Table I order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(minibude::MiniBude),
        Box::new(binomial::BinomialOptions),
        Box::new(bonds::Bonds),
        Box::new(miniweather::MiniWeather),
        Box::new(particlefilter::ParticleFilter),
    ]
}
