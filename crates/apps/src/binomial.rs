//! Binomial Options: Cox–Ross–Rubinstein option pricing on a recombining
//! binomial tree (the CUDA `binomialOptions` sample the paper evaluates).
//!
//! Each option is priced independently with `STEPS` backward-induction
//! levels — a compute-bound, embarrassingly parallel kernel. The HPAC-ML
//! annotation maps each option's 5 features `(S, K, T, r, σ)` to one tensor
//! row and replaces the whole pricing kernel with an MLP.
//!
//! QoI: the computed prices. Metric: RMSE (paper Table I).

use crate::common::*;
use crate::metrics;
use hpacml_core::Region;
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_nn::TrainConfig;
use hpacml_tensor::Tensor;
use std::path::Path;
use std::time::{Duration, Instant};

/// Features per option: spot, strike, expiry, rate, volatility.
pub const FEATURES: usize = 5;

/// One batch of options, stored feature-flat (`[n * FEATURES]`).
#[derive(Debug, Clone)]
pub struct OptionBatch {
    pub data: Vec<f32>,
    pub n: usize,
}

impl OptionBatch {
    /// Deterministic synthetic batch with the NVIDIA sample's ranges,
    /// extended to vary rate and volatility.
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let mut data = Vec::with_capacity(n * FEATURES);
        for _ in 0..n {
            data.push(rng.range(5.0, 30.0)); // spot
            data.push(rng.range(5.0, 35.0)); // strike
            data.push(rng.range(0.25, 2.0)); // years to expiry
            data.push(rng.range(0.01, 0.08)); // risk-free rate
            data.push(rng.range(0.05, 0.40)); // volatility
        }
        OptionBatch { data, n }
    }

    #[inline]
    pub fn option(&self, i: usize) -> [f32; FEATURES] {
        let o = &self.data[i * FEATURES..(i + 1) * FEATURES];
        [o[0], o[1], o[2], o[3], o[4]]
    }
}

/// Price one European call by CRR backward induction.
pub fn crr_price(s: f32, k: f32, t: f32, r: f32, sigma: f32, steps: usize) -> f32 {
    let dt = t / steps as f32;
    let v_sqrt_dt = sigma * dt.sqrt();
    let u = v_sqrt_dt.exp();
    let d = 1.0 / u;
    let a = (r * dt).exp();
    let p = (a - d) / (u - d);
    let disc = (-r * dt).exp();
    let pu = disc * p;
    let pd = disc * (1.0 - p);

    // Leaf values.
    let mut values = vec![0.0f32; steps + 1];
    for (j, v) in values.iter_mut().enumerate() {
        let st = s * u.powi(j as i32) * d.powi((steps - j) as i32);
        *v = (st - k).max(0.0);
    }
    // Backward induction.
    for level in (0..steps).rev() {
        for j in 0..=level {
            values[j] = pd * values[j] + pu * values[j + 1];
        }
    }
    values[0]
}

/// The accurate kernel: price every option in the batch in parallel.
pub fn price_batch(batch: &OptionBatch, steps: usize, prices: &mut [f32]) {
    assert_eq!(prices.len(), batch.n);
    let data = &batch.data;
    hpacml_par::par_chunks_mut(prices, 64, |start, out| {
        for (k, price) in out.iter_mut().enumerate() {
            let i = start + k;
            let o = &data[i * FEATURES..(i + 1) * FEATURES];
            *price = crr_price(o[0], o[1], o[2], o[3], o[4], steps);
        }
    });
}

/// Black–Scholes closed form (used by tests to validate CRR convergence).
pub fn black_scholes_call(s: f64, k: f64, t: f64, r: f64, sigma: f64) -> f64 {
    let d1 = ((s / k).ln() + (r + 0.5 * sigma * sigma) * t) / (sigma * t.sqrt());
    let d2 = d1 - sigma * t.sqrt();
    s * norm_cdf(d1) - k * (-r * t).exp() * norm_cdf(d2)
}

fn norm_cdf(x: f64) -> f64 {
    // Abramowitz–Stegun 7.1.26 erf approximation.
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf = 1.0 - poly * (-(x * x) / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf)
    } else {
        0.5 * (1.0 - erf)
    }
}

/// Sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct BinomialConfig {
    pub n_options: usize,
    pub steps: usize,
    /// Options per region invocation during collection (the appendable
    /// outer dimension of the database).
    pub collect_batch: usize,
    pub eval_reps: u32,
}

impl BinomialConfig {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => BinomialConfig {
                n_options: 2048,
                steps: 512,
                collect_batch: 256,
                eval_reps: 3,
            },
            Scale::Full => BinomialConfig {
                n_options: 32768,
                steps: 1024,
                collect_batch: 2048,
                eval_reps: 20,
            },
        }
    }
}

// The Table II shape: two functor declarations, one input map, one ml
// directive with the output map embedded as an `fa-expr`.
const DIRECTIVES: [&str; 4] = [
    "#pragma approx tensor functor(iopt: [i, 0:5] = ([5*i : 5*i+5]))",
    "#pragma approx tensor functor(oprice: [i, 0:1] = ([i]))",
    "#pragma approx tensor map(to: iopt(opts[0:N]))",
    "#pragma approx ml(predicated:use_model) in(opts) out(oprice(prices[0:N]))",
];

/// The benchmark's canonical annotated region (the Table II directives),
/// with optional database and model overrides. Public so the golden
/// end-to-end tests and the fig10 harness drive the exact production
/// annotation.
pub fn build_region(db: Option<&Path>, model: Option<&Path>) -> AppResult<Region> {
    let mut builder = Region::builder("binomial");
    for d in DIRECTIVES {
        builder = builder.directive(d);
    }
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(m) = model {
        builder = builder.model(m);
    }
    Ok(builder.build()?)
}

/// Run the annotated application over `batch`: one *batched* region
/// invocation per up-to-`chunk` options (the runtime batch dimension),
/// either collecting or inferring. One compiled session serves every chunk,
/// tail included.
pub fn run_annotated(
    region: &Region,
    batch: &OptionBatch,
    steps: usize,
    chunk: usize,
    use_model: bool,
) -> AppResult<Vec<f32>> {
    let mut prices = vec![0.0f32; batch.n];
    let sweep = SweepSession::new(region, "opts", FEATURES, "prices", chunk)?;
    sweep.run(&batch.data, &mut prices, use_model, |start, end, out| {
        let sub = OptionBatch {
            data: batch.data[start * FEATURES..end * FEATURES].to_vec(),
            n: end - start,
        };
        price_batch(&sub, steps, out);
    })?;
    Ok(prices)
}

/// The Binomial Options benchmark.
pub struct BinomialOptions;

impl BinomialOptions {
    /// End-to-end evaluation with online validation and adaptive fallback
    /// active (one point of the fig10 error-budget sweep): the annotated
    /// sweep runs `use_model = true` under `policy`; chunks the controller
    /// routes to fallback execute the real CRR kernel, so the achieved
    /// speedup honestly reflects the accuracy-speedup tradeoff.
    pub fn evaluate_with_policy(
        &self,
        cfg: &BenchConfig,
        model_path: &Path,
        policy: hpacml_core::ValidationPolicy,
    ) -> AppResult<PolicyEval> {
        self.evaluate_with_policy_at(cfg, model_path, policy, hpacml_core::Precision::F32)
    }

    /// [`evaluate_with_policy`](Self::evaluate_with_policy) with a serving
    /// precision: the region's model is quantized to `precision` before the
    /// sweep, and the validation controller demotes through the precision
    /// ladder (int8 → bf16 → f32) before any host fallback — the fig10
    /// precision axis.
    pub fn evaluate_with_policy_at(
        &self,
        cfg: &BenchConfig,
        model_path: &Path,
        policy: hpacml_core::ValidationPolicy,
        precision: hpacml_core::Precision,
    ) -> AppResult<PolicyEval> {
        let bc = BinomialConfig::for_scale(cfg.scale);
        let batch = OptionBatch::generate(bc.n_options, cfg.seed.wrapping_add(0xDEAD));

        let mut reference = vec![0.0f32; batch.n];
        let t0 = Instant::now();
        price_batch(&batch, bc.steps, &mut reference);
        let accurate_time = t0.elapsed();

        let region = build_region(None, Some(model_path))?;
        if precision != hpacml_core::Precision::F32 {
            // Before the validation policy, so the fresh controller picks up
            // the precision ladder.
            region.set_precision_policy(&hpacml_core::PrecisionPolicy::at(precision))?;
        }
        region.set_validation_policy(policy)?;
        let t0 = Instant::now();
        let approx = run_annotated(&region, &batch, bc.steps, bc.collect_batch, true)?;
        let validated_time = t0.elapsed();

        let s = region.stats();
        Ok(PolicyEval {
            speedup: accurate_time.as_secs_f64() / validated_time.as_secs_f64().max(1e-12),
            qoi_error: metrics::rmse(&reference, &approx),
            fallback_fraction: s.fallback_fraction(),
            validated: s.validated_invocations,
            region: s,
        })
    }
}

impl Benchmark for BinomialOptions {
    fn name(&self) -> &'static str {
        "binomial"
    }

    fn description(&self) -> &'static str {
        "Iteratively calculates the price for a portfolio of stock options at \
         multiple time points before expiration (CRR binomial tree)."
    }

    fn qoi_metric(&self) -> &'static str {
        "RMSE"
    }

    fn total_loc(&self) -> usize {
        source_loc(include_str!("binomial.rs"))
    }

    fn directives(&self) -> Vec<String> {
        DIRECTIVES.iter().map(|s| s.to_string()).collect()
    }

    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats> {
        cfg.ensure_workdir()?;
        let bc = BinomialConfig::for_scale(cfg.scale);
        let batch = OptionBatch::generate(bc.n_options, cfg.seed);

        // Original runtime: the plain kernel, no annotation overhead.
        let mut plain = vec![0.0f32; batch.n];
        let t0 = Instant::now();
        price_batch(&batch, bc.steps, &mut plain);
        let plain_runtime = t0.elapsed();

        // Collection runtime: through the region with the database attached.
        let db = cfg.db_path(self.name());
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None)?;
        let t0 = Instant::now();
        let collected = run_annotated(&region, &batch, bc.steps, bc.collect_batch, false)?;
        let collect_runtime = t0.elapsed();
        region.flush_db()?;

        // Collection must not change results.
        debug_assert_eq!(plain, collected);
        // Batched invocations record one database row per option, exactly as
        // per-option invocations would.
        let rows = batch.n;
        Ok(CollectStats {
            plain_runtime,
            collect_runtime,
            db_bytes: region.db_size_bytes(),
            rows,
        })
    }

    fn default_spec(&self, _cfg: &BenchConfig) -> ModelSpec {
        ModelSpec::mlp(FEATURES, &[64, 32], 1, Activation::ReLU, 0.0)
    }

    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats> {
        let file = hpacml_store::H5File::open(cfg.db_path(self.name()))?;
        let group = file.root().group("binomial")?;
        let xs = group.group("inputs")?.dataset("opts")?;
        let ys = group.group("outputs")?.dataset("prices")?;
        let x_flat = xs.read_f32()?;
        let y_flat = ys.read_f32()?;
        let samples = x_flat.len() / FEATURES;
        let x = Tensor::from_vec(x_flat, [samples, FEATURES])?;
        let y = Tensor::from_vec(y_flat, [samples, 1])?;
        let t = train_surrogate(
            x,
            y,
            hpacml_nn::data::NormAxis::PerFeature,
            hpacml_nn::data::NormAxis::PerFeature,
            spec,
            tc,
            model_path,
            1024,
        )?;
        Ok(TrainStats {
            val_loss: t.val_loss,
            params: t.params,
            train_time: t.train_time,
            model_path: model_path.to_path_buf(),
            inference_latency: t.inference_latency,
        })
    }

    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats> {
        let bc = BinomialConfig::for_scale(cfg.scale);
        // Held-out test options (different seed from collection).
        let batch = OptionBatch::generate(bc.n_options, cfg.seed.wrapping_add(0xDEAD));

        let mut reference = vec![0.0f32; batch.n];
        let mut accurate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            let t0 = Instant::now();
            price_batch(&batch, bc.steps, &mut reference);
            accurate_total += t0.elapsed();
        }
        let accurate_time = accurate_total / bc.eval_reps;

        let region = build_region(None, Some(model_path))?;
        let mut approx = Vec::new();
        let mut surrogate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            region.reset_stats();
            let t0 = Instant::now();
            approx = run_annotated(&region, &batch, bc.steps, batch.n, true)?;
            surrogate_total += t0.elapsed();
        }
        let surrogate_time = surrogate_total / bc.eval_reps;

        Ok(EvalStats {
            accurate_time,
            surrogate_time,
            speedup: accurate_time.as_secs_f64() / surrogate_time.as_secs_f64().max(1e-12),
            qoi_error: metrics::rmse(&reference, &approx),
            region: region.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crr_converges_to_black_scholes() {
        let (s, k, t, r, sigma) = (20.0f32, 22.0f32, 1.0f32, 0.05f32, 0.25f32);
        let bs = black_scholes_call(s as f64, k as f64, t as f64, r as f64, sigma as f64);
        let coarse = crr_price(s, k, t, r, sigma, 64) as f64;
        let fine = crr_price(s, k, t, r, sigma, 1024) as f64;
        assert!(
            (fine - bs).abs() < (coarse - bs).abs() + 1e-6,
            "finer tree must not diverge"
        );
        assert!((fine - bs).abs() < 0.01, "CRR(1024)={fine} vs BS={bs}");
    }

    #[test]
    fn price_is_monotone_in_spot_and_vol() {
        let p1 = crr_price(10.0, 15.0, 1.0, 0.03, 0.2, 128);
        let p2 = crr_price(12.0, 15.0, 1.0, 0.03, 0.2, 128);
        assert!(p2 > p1);
        let p3 = crr_price(10.0, 15.0, 1.0, 0.03, 0.35, 128);
        assert!(p3 > p1);
    }

    #[test]
    fn deep_itm_approaches_intrinsic_plus_carry() {
        // Deep in the money, near expiry: price ≈ S - K·e^{-rT}.
        let p = crr_price(30.0, 5.0, 0.25, 0.05, 0.1, 256) as f64;
        let intrinsic = 30.0 - 5.0 * (-0.05f64 * 0.25).exp();
        assert!((p - intrinsic).abs() < 0.01, "{p} vs {intrinsic}");
    }

    #[test]
    fn batch_kernel_matches_scalar() {
        let batch = OptionBatch::generate(64, 3);
        let mut prices = vec![0.0f32; 64];
        price_batch(&batch, 64, &mut prices);
        for i in (0..64).step_by(17) {
            let o = batch.option(i);
            assert_eq!(prices[i], crr_price(o[0], o[1], o[2], o[3], o[4], 64));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = OptionBatch::generate(100, 7);
        let b = OptionBatch::generate(100, 7);
        assert_eq!(a.data, b.data);
        let c = OptionBatch::generate(100, 8);
        assert_ne!(a.data, c.data);
    }

    #[test]
    fn annotated_collect_path_preserves_results() {
        let dir = std::env::temp_dir().join("hpacml-binomial-test");
        std::fs::create_dir_all(&dir).unwrap();
        let db = dir.join("collect.h5");
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None).unwrap();
        let batch = OptionBatch::generate(128, 5);
        let annotated = run_annotated(&region, &batch, 32, 64, false).unwrap();
        let mut plain = vec![0.0f32; batch.n];
        price_batch(&batch, 32, &mut plain);
        assert_eq!(annotated, plain);
        region.flush_db().unwrap();
        // One row per option: 128 options, regardless of the 64-wide runtime
        // batches the sweep ran in.
        let file = hpacml_store::H5File::open(&db).unwrap();
        let g = file.root().group("binomial").unwrap();
        assert_eq!(
            g.group("inputs").unwrap().dataset("opts").unwrap().rows(),
            128
        );
        assert_eq!(g.dataset("region_time_ns").unwrap().rows(), 128);
    }

    #[test]
    fn loc_and_directives_reported() {
        let b = BinomialOptions;
        assert!(b.total_loc() > 100);
        assert_eq!(b.directives().len(), 4);
        assert_eq!(b.qoi_metric(), "RMSE");
    }
}
