//! MiniBUDE: virtual screening in molecular docking (Bristol BUDE mini-app).
//!
//! The kernel evaluates an empirical free-energy forcefield between a ligand
//! and a protein for a batch of ligand *poses* (rigid-body transforms).
//! Each pose is 6 numbers — three Euler angles and a translation — and the
//! energy sums steric, electrostatic and desolvation terms over every
//! ligand×protein atom pair, following the structure of the BUDE kernel.
//!
//! The paper's Observation 2 is about this benchmark: the kernel is
//! compute-bound with scattered access, while an MLP surrogate (pose 6-DOF →
//! energy) is dense linear algebra.
//!
//! QoI: the ligand–protein binding energy of each pose. Metric: MAPE.

use crate::common::*;
use crate::metrics;
use hpacml_core::Region;
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_nn::TrainConfig;
use hpacml_tensor::Tensor;
use std::path::Path;
use std::time::{Duration, Instant};

/// Degrees of freedom per pose (3 rotations + 3 translations).
pub const POSE_DOF: usize = 6;

/// Forcefield parameters per atom type (modeled on BUDE's `FFParams`).
#[derive(Debug, Clone, Copy)]
pub struct FfParams {
    pub radius: f32,
    pub hardness: f32,
    pub charge: f32,
    /// Hydrophobic/polar blend used in the desolvation term.
    pub hphb: f32,
}

/// One atom: position plus a type index into the forcefield table.
#[derive(Debug, Clone, Copy)]
pub struct Atom {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub ty: u32,
}

/// The docking deck: protein, ligand and forcefield.
#[derive(Debug, Clone)]
pub struct Deck {
    pub protein: Vec<Atom>,
    pub ligand: Vec<Atom>,
    pub forcefield: Vec<FfParams>,
}

impl Deck {
    /// Synthetic deck with the bm1 shape (938 protein atoms, 26 ligand
    /// atoms) — or a reduced one for quick runs.
    pub fn generate(protein_atoms: usize, ligand_atoms: usize, seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let n_types = 8usize;
        let forcefield = (0..n_types)
            .map(|_| FfParams {
                radius: rng.range(1.2, 2.4),
                hardness: rng.range(10.0, 60.0),
                charge: rng.range(-0.8, 0.8),
                hphb: rng.range(-1.0, 1.0),
            })
            .collect();
        // Protein atoms in a ball of radius ~12 Å; ligand near the origin.
        let ball = |r: f32, rng: &mut GenRng| loop {
            let x = rng.range(-r, r);
            let y = rng.range(-r, r);
            let z = rng.range(-r, r);
            if x * x + y * y + z * z <= r * r {
                return (x, y, z);
            }
        };
        let protein = (0..protein_atoms)
            .map(|_| {
                let (x, y, z) = ball(12.0, &mut rng);
                Atom {
                    x,
                    y,
                    z,
                    ty: (rng.next_u64() % n_types as u64) as u32,
                }
            })
            .collect();
        let ligand = (0..ligand_atoms)
            .map(|_| {
                let (x, y, z) = ball(3.0, &mut rng);
                Atom {
                    x,
                    y,
                    z,
                    ty: (rng.next_u64() % n_types as u64) as u32,
                }
            })
            .collect();
        Deck {
            protein,
            ligand,
            forcefield,
        }
    }
}

/// A batch of poses, stored DOF-flat (`[n * POSE_DOF]`).
#[derive(Debug, Clone)]
pub struct PoseBatch {
    pub data: Vec<f32>,
    pub n: usize,
}

impl PoseBatch {
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let mut data = Vec::with_capacity(n * POSE_DOF);
        for _ in 0..n {
            // Euler angles and a small translation around the pocket.
            data.push(rng.range(-std::f32::consts::PI, std::f32::consts::PI));
            data.push(rng.range(-std::f32::consts::PI, std::f32::consts::PI));
            data.push(rng.range(-std::f32::consts::PI, std::f32::consts::PI));
            data.push(rng.range(-2.0, 2.0));
            data.push(rng.range(-2.0, 2.0));
            data.push(rng.range(-2.0, 2.0));
        }
        PoseBatch { data, n }
    }
}

/// Energy of one pose: transform the ligand rigidly, then sum pair terms.
pub fn pose_energy(deck: &Deck, pose: &[f32]) -> f32 {
    let (sx, cx) = pose[0].sin_cos();
    let (sy, cy) = pose[1].sin_cos();
    let (sz, cz) = pose[2].sin_cos();
    // Z-Y-X Euler rotation matrix.
    let rot = [
        [cy * cz, sx * sy * cz - cx * sz, cx * sy * cz + sx * sz],
        [cy * sz, sx * sy * sz + cx * cz, cx * sy * sz - sx * cz],
        [-sy, sx * cy, cx * cy],
    ];
    let (tx, ty, tz) = (pose[3], pose[4], pose[5]);

    let mut etot = 0.0f32;
    for l in &deck.ligand {
        let lx = rot[0][0] * l.x + rot[0][1] * l.y + rot[0][2] * l.z + tx;
        let ly = rot[1][0] * l.x + rot[1][1] * l.y + rot[1][2] * l.z + ty;
        let lz = rot[2][0] * l.x + rot[2][1] * l.y + rot[2][2] * l.z + tz;
        let lp = deck.forcefield[l.ty as usize];
        for p in &deck.protein {
            let pp = deck.forcefield[p.ty as usize];
            let dx = lx - p.x;
            let dy = ly - p.y;
            let dz = lz - p.z;
            let r = (dx * dx + dy * dy + dz * dz).sqrt().max(1e-3);
            let radij = lp.radius + pp.radius;
            // Steric clash: linear repulsion inside the contact radius.
            if r < radij {
                etot += (1.0 - r / radij) * (lp.hardness + pp.hardness) * 0.5;
            }
            // Electrostatics with a hard cutoff (BUDE's elcdst).
            const ELC_CUTOFF: f32 = 8.0;
            if r < ELC_CUTOFF {
                etot += lp.charge * pp.charge * (1.0 - r / ELC_CUTOFF) * 45.0;
            }
            // Desolvation: hydrophobic contact inside a wider cutoff.
            const HPHB_CUTOFF: f32 = 5.0;
            if r < HPHB_CUTOFF {
                etot -= lp.hphb * pp.hphb * (1.0 - r / HPHB_CUTOFF) * 0.8;
            }
        }
    }
    etot * 0.5
}

/// The accurate kernel: energies for every pose, in parallel.
pub fn energies(deck: &Deck, poses: &PoseBatch, out: &mut [f32]) {
    assert_eq!(out.len(), poses.n);
    let data = &poses.data;
    hpacml_par::par_chunks_mut(out, 16, |start, chunk| {
        for (k, e) in chunk.iter_mut().enumerate() {
            let i = start + k;
            *e = pose_energy(deck, &data[i * POSE_DOF..(i + 1) * POSE_DOF]);
        }
    });
}

/// Sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct BudeConfig {
    pub n_poses: usize,
    pub protein_atoms: usize,
    pub ligand_atoms: usize,
    pub collect_batch: usize,
    pub eval_reps: u32,
}

impl BudeConfig {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => BudeConfig {
                n_poses: 1024,
                protein_atoms: 938,
                ligand_atoms: 26,
                collect_batch: 128,
                eval_reps: 3,
            },
            Scale::Full => BudeConfig {
                n_poses: 65536,
                protein_atoms: 938,
                ligand_atoms: 26,
                collect_batch: 4096,
                eval_reps: 20,
            },
        }
    }
}

// The Table II shape for MiniBUDE: input/output functor declarations, one
// tensor map for the input, and the approx-ml directive (the output map is
// the `fa-expr` embedded in `out(...)`).
const DIRECTIVES: [&str; 4] = [
    "#pragma approx tensor functor(ipose: [i, 0:6] = ([6*i : 6*i+6]))",
    "#pragma approx tensor functor(oenergy: [i, 0:1] = ([i]))",
    "#pragma approx tensor map(to: ipose(poses[0:N]))",
    "#pragma approx ml(predicated:use_model) in(poses) out(oenergy(energies[0:N]))",
];

/// The benchmark's canonical annotated region (the Table II directives),
/// with optional database and model overrides. Public so the golden
/// end-to-end tests drive the exact production annotation.
pub fn build_region(db: Option<&Path>, model: Option<&Path>) -> AppResult<Region> {
    let mut builder = Region::builder("minibude");
    for d in DIRECTIVES {
        builder = builder.directive(d);
    }
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(m) = model {
        builder = builder.model(m);
    }
    Ok(builder.build()?)
}

pub fn run_annotated(
    region: &Region,
    deck: &Deck,
    poses: &PoseBatch,
    chunk: usize,
    use_model: bool,
) -> AppResult<Vec<f32>> {
    let mut out = vec![0.0f32; poses.n];
    // One compiled session; each chunk (tail included) is one *batched*
    // region invocation through the runtime batch dimension.
    let sweep = SweepSession::new(region, "poses", POSE_DOF, "energies", chunk)?;
    sweep.run(&poses.data, &mut out, use_model, |start, end, out_chunk| {
        let sub = PoseBatch {
            data: poses.data[start * POSE_DOF..end * POSE_DOF].to_vec(),
            n: end - start,
        };
        energies(deck, &sub, out_chunk);
    })?;
    Ok(out)
}

/// The MiniBUDE benchmark.
pub struct MiniBude;

impl Benchmark for MiniBude {
    fn name(&self) -> &'static str {
        "minibude"
    }

    fn description(&self) -> &'static str {
        "Executes virtual screening in molecular docking, assessing poses to \
         predict ligand-protein binding energy using an empirical forcefield."
    }

    fn qoi_metric(&self) -> &'static str {
        "MAPE"
    }

    fn total_loc(&self) -> usize {
        source_loc(include_str!("minibude.rs"))
    }

    fn directives(&self) -> Vec<String> {
        DIRECTIVES.iter().map(|s| s.to_string()).collect()
    }

    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats> {
        cfg.ensure_workdir()?;
        let bc = BudeConfig::for_scale(cfg.scale);
        let deck = Deck::generate(bc.protein_atoms, bc.ligand_atoms, cfg.seed);
        let poses = PoseBatch::generate(bc.n_poses, cfg.seed.wrapping_add(1));

        let mut plain = vec![0.0f32; poses.n];
        let t0 = Instant::now();
        energies(&deck, &poses, &mut plain);
        let plain_runtime = t0.elapsed();

        let db = cfg.db_path(self.name());
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None)?;
        let t0 = Instant::now();
        let collected = run_annotated(&region, &deck, &poses, bc.collect_batch, false)?;
        let collect_runtime = t0.elapsed();
        region.flush_db()?;
        debug_assert_eq!(plain, collected);

        Ok(CollectStats {
            plain_runtime,
            collect_runtime,
            db_bytes: region.db_size_bytes(),
            // One collection row per sweep element (batched invocations record
            // per-sample rows).
            rows: poses.n,
        })
    }

    fn default_spec(&self, _cfg: &BenchConfig) -> ModelSpec {
        // Table IV (MiniBUDE space): deep MLP with a feature multiplier; the
        // default is a small member of that family (the kernel does ~600k
        // flops per pose; the surrogate should do orders of magnitude less).
        ModelSpec::mlp(POSE_DOF, &[128, 64], 1, Activation::ReLU, 0.0)
    }

    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats> {
        let file = hpacml_store::H5File::open(cfg.db_path(self.name()))?;
        let group = file.root().group("minibude")?;
        let x_flat = group.group("inputs")?.dataset("poses")?.read_f32()?;
        let y_flat = group.group("outputs")?.dataset("energies")?.read_f32()?;
        let samples = x_flat.len() / POSE_DOF;
        let x = Tensor::from_vec(x_flat, [samples, POSE_DOF])?;
        let y = Tensor::from_vec(y_flat, [samples, 1])?;
        let t = train_surrogate(
            x,
            y,
            hpacml_nn::data::NormAxis::PerFeature,
            hpacml_nn::data::NormAxis::PerFeature,
            spec,
            tc,
            model_path,
            1024,
        )?;
        Ok(TrainStats {
            val_loss: t.val_loss,
            params: t.params,
            train_time: t.train_time,
            model_path: model_path.to_path_buf(),
            inference_latency: t.inference_latency,
        })
    }

    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats> {
        let bc = BudeConfig::for_scale(cfg.scale);
        let deck = Deck::generate(bc.protein_atoms, bc.ligand_atoms, cfg.seed);
        let poses = PoseBatch::generate(bc.n_poses, cfg.seed.wrapping_add(0xBEEF));

        let mut reference = vec![0.0f32; poses.n];
        let mut accurate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            let t0 = Instant::now();
            energies(&deck, &poses, &mut reference);
            accurate_total += t0.elapsed();
        }
        let accurate_time = accurate_total / bc.eval_reps;

        let region = build_region(None, Some(model_path))?;
        let mut approx = Vec::new();
        let mut surrogate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            region.reset_stats();
            let t0 = Instant::now();
            approx = run_annotated(&region, &deck, &poses, poses.n, true)?;
            surrogate_total += t0.elapsed();
        }
        let surrogate_time = surrogate_total / bc.eval_reps;

        Ok(EvalStats {
            accurate_time,
            surrogate_time,
            speedup: accurate_time.as_secs_f64() / surrogate_time.as_secs_f64().max(1e-12),
            qoi_error: metrics::mape(&reference, &approx),
            region: region.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_deck() -> Deck {
        Deck::generate(32, 8, 1)
    }

    #[test]
    fn identity_pose_keeps_ligand_fixed() {
        let deck = small_deck();
        // Zero rotation + zero translation: energy equals the untransformed sum.
        let e = pose_energy(&deck, &[0.0; 6]);
        let mut manual = 0.0f32;
        for l in &deck.ligand {
            let lp = deck.forcefield[l.ty as usize];
            for p in &deck.protein {
                let pp = deck.forcefield[p.ty as usize];
                let r = ((l.x - p.x).powi(2) + (l.y - p.y).powi(2) + (l.z - p.z).powi(2))
                    .sqrt()
                    .max(1e-3);
                let radij = lp.radius + pp.radius;
                if r < radij {
                    manual += (1.0 - r / radij) * (lp.hardness + pp.hardness) * 0.5;
                }
                if r < 8.0 {
                    manual += lp.charge * pp.charge * (1.0 - r / 8.0) * 45.0;
                }
                if r < 5.0 {
                    manual -= lp.hphb * pp.hphb * (1.0 - r / 5.0) * 0.8;
                }
            }
        }
        assert!((e - manual * 0.5).abs() < 1e-3);
    }

    #[test]
    fn rotation_preserves_ligand_shape_energy_far_away() {
        // Translate the ligand far from the protein: energy must vanish
        // regardless of rotation (every term has a cutoff).
        let deck = small_deck();
        for rot in [0.3f32, 1.2, 2.5] {
            let e = pose_energy(&deck, &[rot, rot * 0.5, -rot, 100.0, 100.0, 100.0]);
            assert_eq!(e, 0.0);
        }
    }

    #[test]
    fn energies_kernel_matches_scalar() {
        let deck = small_deck();
        let poses = PoseBatch::generate(40, 2);
        let mut out = vec![0.0f32; 40];
        energies(&deck, &poses, &mut out);
        for i in (0..40).step_by(7) {
            let e = pose_energy(&deck, &poses.data[i * 6..(i + 1) * 6]);
            assert_eq!(out[i], e);
        }
    }

    #[test]
    fn energy_varies_with_pose() {
        let deck = small_deck();
        let poses = PoseBatch::generate(100, 3);
        let mut out = vec![0.0f32; 100];
        energies(&deck, &poses, &mut out);
        let min = out.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = out.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max > min, "poses must differentiate energies");
    }

    #[test]
    fn table_metadata() {
        let b = MiniBude;
        assert_eq!(b.qoi_metric(), "MAPE");
        assert_eq!(b.directives().len(), 4);
        assert!(b.total_loc() > 150);
    }
}
