//! Calendar date substrate for the Bonds benchmark.
//!
//! The GPU quant-finance Bonds kernel (Grauer-Gray et al.) is built on
//! QuantLib-style date arithmetic: serial day numbers, month-end clamping
//! and day-count conventions. This module reimplements the pieces the
//! benchmark needs: proleptic-Gregorian serial dates, month arithmetic, and
//! the 30/360 and Actual/365 day counters.

/// A calendar date stored as a serial day number (days since 1900-01-01,
/// which is serial 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    serial: i32,
}

const DAYS_IN_MONTH: [i32; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

/// Gregorian leap-year rule.
pub fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days in a given month (1-based) of a given year.
pub fn days_in_month(year: i32, month: u32) -> i32 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

fn days_in_year(year: i32) -> i32 {
    if is_leap(year) {
        366
    } else {
        365
    }
}

impl Date {
    /// Construct from year/month/day; panics on invalid dates (callers are
    /// generators and tests, never untrusted input).
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Date {
        assert!((1..=12).contains(&month), "month {month} out of range");
        assert!(
            (1..=days_in_month(year, month) as u32).contains(&day),
            "day {day} invalid for {year}-{month:02}"
        );
        let mut serial = 0i32;
        if year >= 1900 {
            for y in 1900..year {
                serial += days_in_year(y);
            }
        } else {
            for y in year..1900 {
                serial -= days_in_year(y);
            }
        }
        for m in 1..month {
            serial += days_in_month(year, m);
        }
        Date {
            serial: serial + day as i32 - 1,
        }
    }

    pub fn from_serial(serial: i32) -> Date {
        Date { serial }
    }

    pub fn serial(self) -> i32 {
        self.serial
    }

    /// Decompose into (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        let mut remaining = self.serial;
        let mut year = 1900;
        if remaining >= 0 {
            while remaining >= days_in_year(year) {
                remaining -= days_in_year(year);
                year += 1;
            }
        } else {
            while remaining < 0 {
                year -= 1;
                remaining += days_in_year(year);
            }
        }
        let mut month = 1u32;
        while remaining >= days_in_month(year, month) {
            remaining -= days_in_month(year, month);
            month += 1;
        }
        (year, month, remaining as u32 + 1)
    }

    pub fn year(self) -> i32 {
        self.ymd().0
    }

    pub fn month(self) -> u32 {
        self.ymd().1
    }

    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Add (or subtract) calendar days.
    pub fn add_days(self, days: i32) -> Date {
        Date {
            serial: self.serial + days,
        }
    }

    /// Add calendar months, clamping the day to the target month's end
    /// (QuantLib semantics: Jan 31 + 1 month = Feb 28/29).
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = y * 12 + (m as i32 - 1) + months;
        let ny = total.div_euclid(12);
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = (d as i32).min(days_in_month(ny, nm)) as u32;
        Date::from_ymd(ny, nm, nd)
    }

    /// Calendar days between two dates (`other - self`).
    pub fn days_until(self, other: Date) -> i32 {
        other.serial - self.serial
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Day-count conventions used by the bond analytics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayCount {
    /// US (NASD) 30/360.
    Thirty360,
    /// Actual/365 Fixed.
    Act365,
}

impl DayCount {
    /// Day count between two dates under this convention.
    pub fn days_between(self, d1: Date, d2: Date) -> i32 {
        match self {
            DayCount::Act365 => d1.days_until(d2),
            DayCount::Thirty360 => {
                let (y1, m1, mut dd1) = d1.ymd();
                let (y2, m2, mut dd2) = d2.ymd();
                if dd1 == 31 {
                    dd1 = 30;
                }
                if dd2 == 31 && dd1 == 30 {
                    dd2 = 30;
                }
                360 * (y2 - y1) + 30 * (m2 as i32 - m1 as i32) + (dd2 as i32 - dd1 as i32)
            }
        }
    }

    /// Year fraction between two dates.
    pub fn year_fraction(self, d1: Date, d2: Date) -> f64 {
        match self {
            DayCount::Act365 => self.days_between(d1, d2) as f64 / 365.0,
            DayCount::Thirty360 => self.days_between(d1, d2) as f64 / 360.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ymd_roundtrip_across_years() {
        for &(y, m, d) in &[
            (1900, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2001, 2, 28),
            (2024, 2, 29),
            (2038, 7, 15),
            (1897, 3, 4),
        ] {
            let date = Date::from_ymd(y, m, d);
            assert_eq!(date.ymd(), (y, m, d), "{y}-{m}-{d}");
        }
    }

    #[test]
    fn serial_zero_is_1900_01_01() {
        assert_eq!(Date::from_ymd(1900, 1, 1).serial(), 0);
        assert_eq!(Date::from_serial(0).ymd(), (1900, 1, 1));
    }

    #[test]
    fn leap_year_rule() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2023));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn add_days_crosses_boundaries() {
        let d = Date::from_ymd(1999, 12, 31).add_days(1);
        assert_eq!(d.ymd(), (2000, 1, 1));
        let d = Date::from_ymd(2000, 3, 1).add_days(-1);
        assert_eq!(d.ymd(), (2000, 2, 29));
    }

    #[test]
    fn add_months_clamps_to_month_end() {
        let d = Date::from_ymd(2023, 1, 31).add_months(1);
        assert_eq!(d.ymd(), (2023, 2, 28));
        let d = Date::from_ymd(2024, 1, 31).add_months(1);
        assert_eq!(d.ymd(), (2024, 2, 29));
        let d = Date::from_ymd(2023, 3, 15).add_months(-3);
        assert_eq!(d.ymd(), (2022, 12, 15));
        let d = Date::from_ymd(2023, 6, 30).add_months(18);
        assert_eq!(d.ymd(), (2024, 12, 30));
    }

    #[test]
    fn days_until_is_signed() {
        let a = Date::from_ymd(2020, 1, 1);
        let b = Date::from_ymd(2020, 3, 1);
        assert_eq!(a.days_until(b), 60); // 2020 is a leap year
        assert_eq!(b.days_until(a), -60);
    }

    #[test]
    fn thirty360_examples() {
        let dc = DayCount::Thirty360;
        // One 30/360 "month" is exactly 30 days.
        assert_eq!(
            dc.days_between(Date::from_ymd(2020, 1, 15), Date::from_ymd(2020, 2, 15)),
            30
        );
        // A full year is 360.
        assert_eq!(
            dc.days_between(Date::from_ymd(2020, 5, 7), Date::from_ymd(2021, 5, 7)),
            360
        );
        // 31st clamps to 30.
        assert_eq!(
            dc.days_between(Date::from_ymd(2020, 1, 31), Date::from_ymd(2020, 2, 28)),
            28
        );
        assert!(
            (dc.year_fraction(Date::from_ymd(2020, 1, 1), Date::from_ymd(2021, 1, 1)) - 1.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn act365_year_fraction() {
        let dc = DayCount::Act365;
        let a = Date::from_ymd(2021, 1, 1);
        let b = Date::from_ymd(2022, 1, 1);
        assert!((dc.year_fraction(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Date::from_ymd(2024, 3, 7)), "2024-03-07");
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn invalid_date_panics() {
        let _ = Date::from_ymd(2023, 2, 29);
    }
}
