//! Bonds: fixed-rate bond analytics with a flat forward curve (the GPU
//! quant-finance `bondsEngine` benchmark, Grauer-Gray et al.).
//!
//! For every bond the kernel builds the coupon schedule with real calendar
//! arithmetic ([`dates`]), locates the accrual period containing settlement,
//! computes the accrued interest under 30/360, discounts the remaining
//! cashflows at the market yield, and then recovers the yield from the clean
//! price with a bisection solver (the compute-heavy part, mirroring
//! QuantLib's iterative bond math).
//!
//! QoI: the accrued interest for each bond. Metric: RMSE (paper Table I).

pub mod dates;

use crate::common::*;
use crate::metrics;
use dates::{Date, DayCount};
use hpacml_core::Region;
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_nn::TrainConfig;
use hpacml_tensor::Tensor;
use std::path::Path;
use std::time::{Duration, Instant};

/// Features per bond (the kernel's complete input):
/// `[coupon_rate, market_yield, issue_offset_days, settle_offset_days,
///   n_periods, frequency]`.
pub const FEATURES: usize = 6;

/// Face value of every bond (the benchmark's convention).
pub const FACE: f64 = 100.0;

/// The schedule anchor all issue offsets count from.
pub fn reference_date() -> Date {
    Date::from_ymd(2000, 1, 1)
}

/// A batch of bonds, stored feature-flat (`[n * FEATURES]`).
#[derive(Debug, Clone)]
pub struct BondBatch {
    pub data: Vec<f32>,
    pub n: usize,
}

impl BondBatch {
    pub fn generate(n: usize, seed: u64) -> Self {
        let mut rng = GenRng::new(seed);
        let mut data = Vec::with_capacity(n * FEATURES);
        for _ in 0..n {
            let freq = [1.0f32, 2.0, 4.0][(rng.next_u64() % 3) as usize];
            let n_periods = (rng.range(4.0, 60.0)).floor();
            let months = 12.0 / freq;
            // Settlement strictly inside (issue, maturity).
            let total_days = n_periods * months * 30.0;
            let settle = rng.range(10.0, (total_days - 10.0).max(11.0)).floor();
            data.push(rng.range(0.02, 0.09)); // coupon rate
            data.push(rng.range(0.01, 0.12)); // market yield
            data.push(rng.range(0.0, 3650.0).floor()); // issue offset from ref
            data.push(settle); // settlement offset from issue
            data.push(n_periods); // coupon periods to maturity
            data.push(freq); // coupons per year
        }
        BondBatch { data, n }
    }
}

/// Full analytics for one bond; returns `(accrued, clean_price, solved_yield)`.
pub fn bond_analytics(features: &[f32]) -> (f64, f64, f64) {
    let rate = features[0] as f64;
    let yield_ = features[1] as f64;
    let issue = reference_date().add_days(features[2] as i32);
    let settlement = issue.add_days(features[3] as i32);
    let n_periods = features[4] as i32;
    let freq = features[5] as f64;
    let months_per_period = (12.0 / freq) as i32;
    let maturity = issue.add_months(n_periods * months_per_period);

    // Coupon schedule from issue to maturity.
    let accrued = accrued_interest(rate, issue, settlement, maturity, months_per_period, freq);
    let dirty = dirty_price(
        rate,
        yield_,
        settlement,
        issue,
        maturity,
        months_per_period,
        freq,
    );
    let clean = dirty - accrued;

    // Recover the yield from the clean price by bisection — the iterative
    // solver that makes this kernel compute-bound.
    let solved = solve_yield(
        rate,
        clean + accrued,
        settlement,
        issue,
        maturity,
        months_per_period,
        freq,
    );
    (accrued, clean, solved)
}

/// Accrued interest under 30/360 for the period containing `settlement`.
fn accrued_interest(
    rate: f64,
    issue: Date,
    settlement: Date,
    maturity: Date,
    months_per_period: i32,
    freq: f64,
) -> f64 {
    // Walk the schedule to find the accrual period.
    let mut period_start = issue;
    loop {
        let period_end = period_start.add_months(months_per_period);
        if settlement < period_end || period_end >= maturity {
            let dc = DayCount::Thirty360;
            let accrual_days = dc.days_between(period_start, settlement).max(0) as f64;
            let period_days = dc.days_between(period_start, period_end).max(1) as f64;
            return rate * FACE / freq * (accrual_days / period_days).min(1.0);
        }
        period_start = period_end;
    }
}

/// Dirty price: remaining coupons + redemption discounted at `yield_`
/// (compounded `freq` times a year, Act/365 time).
fn dirty_price(
    rate: f64,
    yield_: f64,
    settlement: Date,
    issue: Date,
    maturity: Date,
    months_per_period: i32,
    freq: f64,
) -> f64 {
    let dc = DayCount::Act365;
    let coupon = rate * FACE / freq;
    let mut price = 0.0f64;
    let mut date = issue;
    loop {
        let next = date.add_months(months_per_period);
        let is_last = next >= maturity;
        let pay_date = if is_last { maturity } else { next };
        if pay_date > settlement {
            let t = dc.year_fraction(settlement, pay_date);
            let df = (1.0 + yield_ / freq).powf(-freq * t);
            price += coupon * df;
            if is_last {
                price += FACE * df;
            }
        }
        if is_last {
            return price;
        }
        date = next;
    }
}

/// Bisection solve for the yield that reproduces `target_dirty`.
fn solve_yield(
    rate: f64,
    target_dirty: f64,
    settlement: Date,
    issue: Date,
    maturity: Date,
    months_per_period: i32,
    freq: f64,
) -> f64 {
    let (mut lo, mut hi) = (1e-6f64, 1.0f64);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        let p = dirty_price(
            rate,
            mid,
            settlement,
            issue,
            maturity,
            months_per_period,
            freq,
        );
        // Price decreases in yield.
        if p > target_dirty {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The accurate kernel: analytics for every bond, in parallel; writes the
/// QoI (accrued interest) into `out`.
pub fn bonds_kernel(batch: &BondBatch, out: &mut [f32]) {
    assert_eq!(out.len(), batch.n);
    let data = &batch.data;
    hpacml_par::par_chunks_mut(out, 32, |start, chunk| {
        for (k, o) in chunk.iter_mut().enumerate() {
            let i = start + k;
            let (accrued, clean, solved) = bond_analytics(&data[i * FEATURES..(i + 1) * FEATURES]);
            // clean/solved are part of the app's output set; keep them live.
            std::hint::black_box((clean, solved));
            *o = accrued as f32;
        }
    });
}

/// Sizes per scale.
#[derive(Debug, Clone, Copy)]
pub struct BondsConfig {
    pub n_bonds: usize,
    pub collect_batch: usize,
    pub eval_reps: u32,
}

impl BondsConfig {
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Quick => BondsConfig {
                n_bonds: 4096,
                collect_batch: 512,
                eval_reps: 3,
            },
            Scale::Full => BondsConfig {
                n_bonds: 65536,
                collect_batch: 4096,
                eval_reps: 20,
            },
        }
    }
}

// The Table II shape: two functor declarations, one input map, one ml
// directive with the output map embedded as an `fa-expr`.
const DIRECTIVES: [&str; 4] = [
    "#pragma approx tensor functor(ibond: [i, 0:6] = ([6*i : 6*i+6]))",
    "#pragma approx tensor functor(oaccrued: [i, 0:1] = ([i]))",
    "#pragma approx tensor map(to: ibond(bonds[0:N]))",
    "#pragma approx ml(predicated:use_model) in(bonds) out(oaccrued(accrued[0:N]))",
];

/// The benchmark's canonical annotated region (the Table II directives),
/// with optional database and model overrides. Public so the golden
/// end-to-end tests drive the exact production annotation.
pub fn build_region(db: Option<&Path>, model: Option<&Path>) -> AppResult<Region> {
    let mut builder = Region::builder("bonds");
    for d in DIRECTIVES {
        builder = builder.directive(d);
    }
    if let Some(db) = db {
        builder = builder.database(db);
    }
    if let Some(m) = model {
        builder = builder.model(m);
    }
    Ok(builder.build()?)
}

pub fn run_annotated(
    region: &Region,
    batch: &BondBatch,
    chunk: usize,
    use_model: bool,
) -> AppResult<Vec<f32>> {
    let mut out = vec![0.0f32; batch.n];
    // One compiled session; each chunk (tail included) is one *batched*
    // region invocation through the runtime batch dimension.
    let sweep = SweepSession::new(region, "bonds", FEATURES, "accrued", chunk)?;
    sweep.run(&batch.data, &mut out, use_model, |start, end, out_chunk| {
        let sub = BondBatch {
            data: batch.data[start * FEATURES..end * FEATURES].to_vec(),
            n: end - start,
        };
        bonds_kernel(&sub, out_chunk);
    })?;
    Ok(out)
}

/// The Bonds benchmark.
pub struct Bonds;

impl Benchmark for Bonds {
    fn name(&self) -> &'static str {
        "bonds"
    }

    fn description(&self) -> &'static str {
        "Calculates bond valuations and interest payments for fixed-rate \
         bonds with a flat forward curve."
    }

    fn qoi_metric(&self) -> &'static str {
        "RMSE"
    }

    fn total_loc(&self) -> usize {
        source_loc(include_str!("mod.rs")) + source_loc(include_str!("dates.rs"))
    }

    fn directives(&self) -> Vec<String> {
        DIRECTIVES.iter().map(|s| s.to_string()).collect()
    }

    fn collect(&self, cfg: &BenchConfig) -> AppResult<CollectStats> {
        cfg.ensure_workdir()?;
        let bc = BondsConfig::for_scale(cfg.scale);
        let batch = BondBatch::generate(bc.n_bonds, cfg.seed);

        let mut plain = vec![0.0f32; batch.n];
        let t0 = Instant::now();
        bonds_kernel(&batch, &mut plain);
        let plain_runtime = t0.elapsed();

        let db = cfg.db_path(self.name());
        let _ = std::fs::remove_file(&db);
        let region = build_region(Some(&db), None)?;
        let t0 = Instant::now();
        let collected = run_annotated(&region, &batch, bc.collect_batch, false)?;
        let collect_runtime = t0.elapsed();
        region.flush_db()?;
        debug_assert_eq!(plain, collected);

        Ok(CollectStats {
            plain_runtime,
            collect_runtime,
            db_bytes: region.db_size_bytes(),
            // One collection row per sweep element (batched invocations record
            // per-sample rows).
            rows: batch.n,
        })
    }

    fn default_spec(&self, _cfg: &BenchConfig) -> ModelSpec {
        // Table IV (Bonds shares the Binomial space: up to two hidden layers).
        ModelSpec::mlp(FEATURES, &[256, 128], 1, Activation::ReLU, 0.0)
    }

    fn train_spec(
        &self,
        cfg: &BenchConfig,
        spec: &ModelSpec,
        tc: &TrainConfig,
        model_path: &Path,
    ) -> AppResult<TrainStats> {
        let file = hpacml_store::H5File::open(cfg.db_path(self.name()))?;
        let group = file.root().group("bonds")?;
        let x_flat = group.group("inputs")?.dataset("bonds")?.read_f32()?;
        let y_flat = group.group("outputs")?.dataset("accrued")?.read_f32()?;
        let samples = x_flat.len() / FEATURES;
        let x = Tensor::from_vec(x_flat, [samples, FEATURES])?;
        let y = Tensor::from_vec(y_flat, [samples, 1])?;
        let t = train_surrogate(
            x,
            y,
            hpacml_nn::data::NormAxis::PerFeature,
            hpacml_nn::data::NormAxis::PerFeature,
            spec,
            tc,
            model_path,
            1024,
        )?;
        Ok(TrainStats {
            val_loss: t.val_loss,
            params: t.params,
            train_time: t.train_time,
            model_path: model_path.to_path_buf(),
            inference_latency: t.inference_latency,
        })
    }

    fn evaluate(&self, cfg: &BenchConfig, model_path: &Path) -> AppResult<EvalStats> {
        let bc = BondsConfig::for_scale(cfg.scale);
        let batch = BondBatch::generate(bc.n_bonds, cfg.seed.wrapping_add(0xB07D));

        let mut reference = vec![0.0f32; batch.n];
        let mut accurate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            let t0 = Instant::now();
            bonds_kernel(&batch, &mut reference);
            accurate_total += t0.elapsed();
        }
        let accurate_time = accurate_total / bc.eval_reps;

        let region = build_region(None, Some(model_path))?;
        let mut approx = Vec::new();
        let mut surrogate_total = Duration::ZERO;
        for _ in 0..bc.eval_reps {
            region.reset_stats();
            let t0 = Instant::now();
            approx = run_annotated(&region, &batch, batch.n, true)?;
            surrogate_total += t0.elapsed();
        }
        let surrogate_time = surrogate_total / bc.eval_reps;

        Ok(EvalStats {
            accurate_time,
            surrogate_time,
            speedup: accurate_time.as_secs_f64() / surrogate_time.as_secs_f64().max(1e-12),
            qoi_error: metrics::rmse(&reference, &approx),
            region: region.stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bond settled exactly at a coupon date accrues nothing.
    #[test]
    fn accrued_zero_at_period_start() {
        let issue = Date::from_ymd(2010, 3, 1);
        let maturity = issue.add_months(60);
        let a = accrued_interest(0.06, issue, issue, maturity, 6, 2.0);
        assert!(a.abs() < 1e-12);
    }

    /// Half way through a semiannual period, accrued is half the coupon.
    #[test]
    fn accrued_half_coupon_mid_period() {
        let issue = Date::from_ymd(2010, 1, 1);
        let maturity = issue.add_months(120);
        let settlement = issue.add_months(3); // 90/180 in 30/360 terms
        let a = accrued_interest(0.08, issue, settlement, maturity, 6, 2.0);
        let coupon = 0.08 * FACE / 2.0;
        assert!((a - coupon / 2.0).abs() < 1e-9, "{a}");
    }

    /// Pricing at the coupon rate ≈ par for a bond settled at issue.
    #[test]
    fn par_bond_prices_near_face() {
        let issue = Date::from_ymd(2010, 1, 1);
        let maturity = issue.add_months(120);
        let p = dirty_price(0.06, 0.06, issue, issue, maturity, 6, 2.0);
        assert!((p - FACE).abs() < 1.0, "price {p} should be near par");
    }

    /// Higher yield means lower price.
    #[test]
    fn price_monotone_in_yield() {
        let issue = Date::from_ymd(2012, 5, 10);
        let maturity = issue.add_months(240);
        let settlement = issue.add_days(400);
        let p_low = dirty_price(0.05, 0.03, settlement, issue, maturity, 6, 2.0);
        let p_high = dirty_price(0.05, 0.09, settlement, issue, maturity, 6, 2.0);
        assert!(p_low > p_high);
    }

    /// The bisection solver recovers the yield used to price the bond.
    #[test]
    fn yield_solver_roundtrips() {
        let issue = Date::from_ymd(2008, 9, 15);
        let maturity = issue.add_months(180);
        let settlement = issue.add_days(700);
        for y in [0.02f64, 0.05, 0.11] {
            let dirty = dirty_price(0.07, y, settlement, issue, maturity, 6, 2.0);
            let solved = solve_yield(0.07, dirty, settlement, issue, maturity, 6, 2.0);
            assert!((solved - y).abs() < 1e-6, "target {y}, solved {solved}");
        }
    }

    #[test]
    fn kernel_matches_scalar_analytics() {
        let batch = BondBatch::generate(64, 9);
        let mut out = vec![0.0f32; 64];
        bonds_kernel(&batch, &mut out);
        for i in (0..64).step_by(11) {
            let (a, _, _) = bond_analytics(&batch.data[i * FEATURES..(i + 1) * FEATURES]);
            assert_eq!(out[i], a as f32);
        }
    }

    #[test]
    fn accrued_bounded_by_coupon() {
        let batch = BondBatch::generate(256, 4);
        let mut out = vec![0.0f32; 256];
        bonds_kernel(&batch, &mut out);
        for (i, &accrued) in out.iter().enumerate() {
            let rate = batch.data[i * FEATURES] as f64;
            let freq = batch.data[i * FEATURES + 5] as f64;
            let coupon = rate * FACE / freq;
            assert!(accrued >= 0.0);
            assert!(
                accrued as f64 <= coupon + 1e-6,
                "accrued {accrued} > coupon {coupon}"
            );
        }
    }

    #[test]
    fn table_metadata() {
        let b = Bonds;
        assert_eq!(b.qoi_metric(), "RMSE");
        assert_eq!(b.directives().len(), 4);
        assert!(b.total_loc() > 250);
    }
}
