//! Deterministic fault injection and retry/backoff primitives.
//!
//! This crate is the robustness substrate for the HPAC-ML runtime. It has two
//! halves:
//!
//! * **Injection** — named seams (`fault_point!("store.flush")`) placed at
//!   failure-prone sites in `hpacml-store`, `hpacml-nn` and `hpacml-core`. An
//!   installed [`Plan`] decides, per site and per *hit index* (the 0-based
//!   count of times execution has reached that seam), whether to force an I/O
//!   error, a panic, artificial latency or a scheduling perturbation. Every
//!   decision is a pure function of `(seed, site, hit)` — no wall clock, no
//!   OS randomness — so a chaos failure replays bit-exactly under the same
//!   seed, consistent with the repo's determinism discipline.
//! * **Retry** — [`retry::RetryPolicy`], a bounded exponential backoff whose
//!   "sleep" is a deterministic spin of CPU ticks rather than a wall-clock
//!   timer, usable from crates where `hpacml-lint` bans `Instant`.
//!
//! # Feature gating
//!
//! The seams compile to **nothing** unless the consuming crate enables its
//! own `fault-injection` feature (which forwards to this crate's feature of
//! the same name). The `#[cfg]` emitted by [`fault_point!`] is resolved in
//! the *calling* crate, so a release build without the feature contains no
//! trace of the seam — no branch, no call, no string.
//!
//! # Usage
//!
//! ```
//! use hpacml_faults::{clear, install, Plan};
//!
//! // Fail the second arrival at `store.flush` with an injected I/O error.
//! install(Plan::new().fail_once("store.flush", 1));
//! // ... run the code under test ...
//! clear();
//! ```

use parking_lot::Mutex;
use std::collections::BTreeMap;

pub mod retry;

/// What an injection does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return an [`InjectedFault`] from the seam (surfaces as an I/O error).
    Error,
    /// Panic at the seam with a recognizable `injected fault:` message.
    Panic,
    /// Spin for the given number of deterministic CPU ticks, then continue.
    Delay(u32),
    /// Call `std::thread::yield_now()` the given number of times, then
    /// continue — perturbs thread interleavings (shutdown-vs-lead races)
    /// without touching any clock.
    Yield(u32),
}

impl FaultKind {
    fn name(&self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Panic => "panic",
            FaultKind::Delay(_) => "delay",
            FaultKind::Yield(_) => "yield",
        }
    }
}

/// The typed error produced by an `Error`-kind injection. Converts into
/// `std::io::Error` so store/nn/core seams can propagate it through their
/// existing error enums with `?`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The seam that fired.
    pub site: String,
    /// 0-based hit index at which it fired.
    pub hit: u64,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected fault: i/o error at {} (hit {})",
            self.site, self.hit
        )
    }
}

impl std::error::Error for InjectedFault {}

impl From<InjectedFault> for std::io::Error {
    fn from(f: InjectedFault) -> Self {
        std::io::Error::other(f.to_string())
    }
}

/// One injection rule: fires [`FaultKind`] at seams matching `pattern` on a
/// deterministic subset of hit indices.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Exact site name, or a prefix ending in `*` (e.g. `"store.*"`).
    pub pattern: String,
    pub kind: FaultKind,
    /// First 0-based hit index eligible to fire.
    pub first_hit: u64,
    /// Fire every `stride`-th eligible hit (1 = every hit from `first_hit`).
    pub stride: u64,
    /// Maximum number of times this rule fires (`u64::MAX` = unbounded).
    pub max_fires: u64,
    /// `Some(rate)` makes the rule probabilistic: each eligible hit fires
    /// with probability `rate / 1024`, decided by a pure hash of
    /// `(plan seed, site, hit)`. `None` fires deterministically.
    pub rate_per_1024: Option<u32>,
}

impl Rule {
    fn matches_site(&self, site: &str) -> bool {
        match self.pattern.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.pattern == site,
        }
    }

    fn eligible(&self, hit: u64) -> bool {
        hit >= self.first_hit && (hit - self.first_hit).is_multiple_of(self.stride.max(1))
    }
}

/// A deterministic injection schedule: a seed plus an ordered rule list.
#[derive(Debug, Clone, Default)]
pub struct Plan {
    pub seed: u64,
    pub rules: Vec<Rule>,
}

impl Plan {
    /// Empty plan with seed 0 (deterministic rules only).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty plan with an explicit seed for probabilistic (`chaos`) rules.
    pub fn seeded(seed: u64) -> Self {
        Plan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Add an arbitrary rule.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Inject an I/O error at exactly hit `hit` of `site`.
    pub fn fail_once(self, site: &str, hit: u64) -> Self {
        self.rule(Rule {
            pattern: site.to_string(),
            kind: FaultKind::Error,
            first_hit: hit,
            stride: 1,
            max_fires: 1,
            rate_per_1024: None,
        })
    }

    /// Inject an I/O error at hits `first..first + count` of `site`.
    pub fn fail_range(self, site: &str, first: u64, count: u64) -> Self {
        self.rule(Rule {
            pattern: site.to_string(),
            kind: FaultKind::Error,
            first_hit: first,
            stride: 1,
            max_fires: count,
            rate_per_1024: None,
        })
    }

    /// Panic at exactly hit `hit` of `site`.
    pub fn panic_at(self, site: &str, hit: u64) -> Self {
        self.rule(Rule {
            pattern: site.to_string(),
            kind: FaultKind::Panic,
            first_hit: hit,
            stride: 1,
            max_fires: 1,
            rate_per_1024: None,
        })
    }

    /// Spin `ticks` deterministic ticks at every hit of sites matching
    /// `pattern`.
    pub fn delay(self, pattern: &str, ticks: u32) -> Self {
        self.rule(Rule {
            pattern: pattern.to_string(),
            kind: FaultKind::Delay(ticks),
            first_hit: 0,
            stride: 1,
            max_fires: u64::MAX,
            rate_per_1024: None,
        })
    }

    /// Yield the thread `times` times at every hit of sites matching
    /// `pattern` — the shutdown-race perturbation.
    pub fn yield_at(self, pattern: &str, times: u32) -> Self {
        self.rule(Rule {
            pattern: pattern.to_string(),
            kind: FaultKind::Yield(times),
            first_hit: 0,
            stride: 1,
            max_fires: u64::MAX,
            rate_per_1024: None,
        })
    }

    /// Probabilistic chaos: each hit of a site matching `pattern` fires
    /// `kind` with probability `rate_per_1024 / 1024`, decided by the plan
    /// seed (bit-exact replay under the same seed).
    pub fn chaos(self, pattern: &str, kind: FaultKind, rate_per_1024: u32) -> Self {
        self.rule(Rule {
            pattern: pattern.to_string(),
            kind,
            first_hit: 0,
            stride: 1,
            max_fires: u64::MAX,
            rate_per_1024: Some(rate_per_1024),
        })
    }
}

/// One injection that actually fired (for test assertions / diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectionRecord {
    pub site: String,
    pub hit: u64,
    pub kind: FaultKind,
}

impl std::fmt::Display for InjectionRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} at {} (hit {})",
            self.kind.name(),
            self.site,
            self.hit
        )
    }
}

struct ActivePlan {
    plan: Plan,
    /// Per-site hit counters (BTreeMap: deterministic iteration order).
    hits: BTreeMap<String, u64>,
    /// Per-rule fire counts (indexed like `plan.rules`).
    fired: Vec<u64>,
    injected: Vec<InjectionRecord>,
}

static ACTIVE: Mutex<Option<ActivePlan>> = Mutex::new(None);

/// FNV-1a 64-bit hash — the deterministic site hash for chaos coins.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer — mixes `(seed, site, hit)` into a chaos coin.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Deterministic busy-wait for `ticks` iterations. No clock is consulted;
/// the duration scales with CPU speed, which is fine for injected latency
/// and backoff (ordering pressure, not timing guarantees).
pub fn spin_ticks(ticks: u64) {
    for _ in 0..ticks {
        std::hint::spin_loop();
    }
}

/// Install `plan` as the process-wide schedule, resetting all hit counters.
pub fn install(plan: Plan) {
    let fired = vec![0; plan.rules.len()];
    *ACTIVE.lock() = Some(ActivePlan {
        plan,
        hits: BTreeMap::new(),
        fired,
        injected: Vec::new(),
    });
}

/// Remove the active schedule; seams become pass-throughs again.
pub fn clear() {
    *ACTIVE.lock() = None;
}

/// Whether a schedule is installed.
pub fn active() -> bool {
    ACTIVE.lock().is_some()
}

/// How many times execution has reached `site` since [`install`].
pub fn hits(site: &str) -> u64 {
    ACTIVE
        .lock()
        .as_ref()
        .map_or(0, |a| a.hits.get(site).copied().unwrap_or(0))
}

/// Every injection that fired since [`install`], in firing order.
pub fn injected() -> Vec<InjectionRecord> {
    ACTIVE
        .lock()
        .as_ref()
        .map_or_else(Vec::new, |a| a.injected.clone())
}

/// Count of fired injections at `site`.
pub fn injected_at(site: &str) -> u64 {
    ACTIVE.lock().as_ref().map_or(0, |a| {
        a.injected.iter().filter(|r| r.site == site).count() as u64
    })
}

fn decide(site: &str) -> (u64, Vec<FaultKind>) {
    let mut guard = ACTIVE.lock();
    let Some(active) = guard.as_mut() else {
        return (0, Vec::new());
    };
    let counter = active.hits.entry(site.to_string()).or_insert(0);
    let hit = *counter;
    *counter += 1;
    let seed = active.plan.seed;
    let mut actions = Vec::new();
    for (i, rule) in active.plan.rules.iter().enumerate() {
        if !rule.matches_site(site) || !rule.eligible(hit) || active.fired[i] >= rule.max_fires {
            continue;
        }
        if let Some(rate) = rule.rate_per_1024 {
            let coin = splitmix64(
                seed ^ fnv1a64(site.as_bytes()) ^ hit.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            if (coin % 1024) as u32 >= rate {
                continue;
            }
        }
        active.fired[i] += 1;
        active.injected.push(InjectionRecord {
            site: site.to_string(),
            hit,
            kind: rule.kind,
        });
        actions.push(rule.kind);
    }
    (hit, actions)
}

fn perform(site: &str, hit: u64, actions: Vec<FaultKind>) -> Result<(), InjectedFault> {
    // Latency/scheduling perturbations happen first so an Error/Panic rule
    // stacked on the same hit still observes the perturbed interleaving.
    let mut terminal: Option<FaultKind> = None;
    for kind in actions {
        match kind {
            FaultKind::Delay(ticks) => spin_ticks(u64::from(ticks)),
            FaultKind::Yield(times) => {
                for _ in 0..times {
                    std::thread::yield_now();
                }
            }
            k @ (FaultKind::Error | FaultKind::Panic) => terminal = Some(k),
        }
    }
    match terminal {
        Some(FaultKind::Panic) => panic!("injected fault: panic at {site} (hit {hit})"),
        Some(FaultKind::Error) => Err(InjectedFault {
            site: site.to_string(),
            hit,
        }),
        _ => Ok(()),
    }
}

/// The seam entry point: counts the hit, consults the schedule, and either
/// returns `Ok(())`, returns an [`InjectedFault`], panics, or delays.
/// Called through [`fault_point!`]; seams never call this when the consumer
/// crate's `fault-injection` feature is off.
pub fn fire(site: &str) -> Result<(), InjectedFault> {
    let (hit, actions) = decide(site);
    perform(site, hit, actions)
}

/// Like [`fire`] but for seams in infallible contexts: `Error`-kind rules
/// are ignored; delays, yields and panics still apply.
pub fn fire_infallible(site: &str) {
    let (hit, mut actions) = decide(site);
    actions.retain(|k| *k != FaultKind::Error);
    let _ = perform(site, hit, actions);
}

/// A named injection seam. Expands to a schedule consultation when the
/// *calling crate's* `fault-injection` feature is on, and to **nothing**
/// otherwise. Must be used in a function whose error type implements
/// `From<hpacml_faults::InjectedFault>` (directly or via `std::io::Error`).
#[macro_export]
macro_rules! fault_point {
    ($site:expr) => {{
        #[cfg(feature = "fault-injection")]
        $crate::fire($site)?;
    }};
}

/// A named seam in an infallible context (no `Result` to propagate through):
/// delays, yields and panics apply; `Error`-kind rules are skipped.
#[macro_export]
macro_rules! fault_point_infallible {
    ($site:expr) => {{
        #[cfg(feature = "fault-injection")]
        $crate::fire_infallible($site);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    // The registry is process-global; serialize tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn no_plan_is_passthrough() {
        let _g = TEST_LOCK.lock();
        clear();
        assert!(fire("any.site").is_ok());
        assert!(!active());
        assert_eq!(hits("any.site"), 0);
    }

    #[test]
    fn fail_once_fires_at_exact_hit() {
        let _g = TEST_LOCK.lock();
        install(Plan::new().fail_once("store.flush", 2));
        assert!(fire("store.flush").is_ok());
        assert!(fire("store.flush").is_ok());
        let err = fire("store.flush").unwrap_err();
        assert_eq!(err.site, "store.flush");
        assert_eq!(err.hit, 2);
        // max_fires = 1: subsequent hits pass.
        assert!(fire("store.flush").is_ok());
        assert_eq!(hits("store.flush"), 4);
        assert_eq!(injected_at("store.flush"), 1);
        clear();
    }

    #[test]
    fn fail_range_covers_window() {
        let _g = TEST_LOCK.lock();
        install(Plan::new().fail_range("db.append", 1, 2));
        assert!(fire("db.append").is_ok());
        assert!(fire("db.append").is_err());
        assert!(fire("db.append").is_err());
        assert!(fire("db.append").is_ok());
        clear();
    }

    #[test]
    fn prefix_pattern_matches() {
        let _g = TEST_LOCK.lock();
        install(Plan::new().fail_range("store.*", 0, u64::MAX));
        assert!(fire("store.flush").is_err());
        assert!(fire("store.open").is_err());
        assert!(fire("nn.load").is_ok());
        clear();
    }

    #[test]
    fn panic_kind_panics_with_marker() {
        let _g = TEST_LOCK.lock();
        install(Plan::new().panic_at("serve.shadow", 0));
        let res = std::panic::catch_unwind(|| fire("serve.shadow"));
        clear();
        let msg = *res.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("injected fault: panic at serve.shadow"),
            "{msg}"
        );
    }

    #[test]
    fn chaos_is_deterministic_per_seed() {
        let _g = TEST_LOCK.lock();
        let run = |seed: u64| -> Vec<u64> {
            install(Plan::seeded(seed).chaos("x", FaultKind::Error, 256));
            let fails: Vec<u64> = (0..64).filter_map(|i| fire("x").err().map(|_| i)).collect();
            clear();
            fails
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed must replay bit-exactly");
        assert_ne!(a, c, "different seeds should differ");
        assert!(!a.is_empty(), "rate 256/1024 over 64 hits should fire");
        assert!(a.len() < 64, "rate 256/1024 must not fire every hit");
    }

    #[test]
    fn infallible_skips_error_kind() {
        let _g = TEST_LOCK.lock();
        install(Plan::new().fail_range("site", 0, u64::MAX).delay("site", 8));
        fire_infallible("site");
        assert_eq!(hits("site"), 1);
        clear();
    }

    #[test]
    fn injected_fault_converts_to_io_error() {
        let f = InjectedFault {
            site: "s".into(),
            hit: 3,
        };
        let io: std::io::Error = f.into();
        assert!(io.to_string().contains("injected fault"));
    }
}
