//! Bounded exponential backoff with a deterministic, tick-based "sleep".
//!
//! The runtime's determinism contract (and `hpacml-lint`'s `no-wall-clock`
//! rule in the kernel crates) rules out `std::thread::sleep`/`Instant`-based
//! backoff. [`RetryPolicy`] instead spins a deterministic number of CPU
//! ticks between attempts: `min(cap, base << attempt)`. The spin provides
//! ordering pressure (lets a transient condition clear) without consulting
//! any clock, so a retried chaos run replays identically.

use crate::spin_ticks;

/// Retry budget for a transient-failure seam.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff ticks before the first retry.
    pub base: u32,
    /// Upper bound on per-retry backoff ticks.
    pub cap: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base: 64,
            cap: 4096,
        }
    }
}

/// Outcome of [`RetryPolicy::run`]: the final result plus how many attempts
/// were actually made (for per-region retry/give-up accounting).
#[derive(Debug)]
pub struct RetryOutcome<T, E> {
    pub result: Result<T, E>,
    /// Attempts made (1 = first try succeeded; `> 1` implies retries).
    pub attempts: u32,
}

impl<T, E> RetryOutcome<T, E> {
    /// Retries beyond the first attempt.
    pub fn retries(&self) -> u32 {
        self.attempts.saturating_sub(1)
    }

    /// The budget was exhausted without success.
    pub fn gave_up(&self) -> bool {
        self.result.is_err()
    }
}

impl RetryPolicy {
    /// A policy that never retries (single attempt, no backoff).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base: 0,
            cap: 0,
        }
    }

    /// Backoff ticks before retry number `retry` (0-based):
    /// `min(cap, base << retry)`, saturating.
    pub fn backoff_ticks(&self, retry: u32) -> u64 {
        let raw = u64::from(self.base).saturating_mul(1u64 << retry.min(32));
        raw.min(u64::from(self.cap))
    }

    /// Run `op` until it succeeds or the attempt budget is exhausted. The
    /// closure receives the 0-based attempt index.
    pub fn run<T, E>(&self, mut op: impl FnMut(u32) -> Result<T, E>) -> RetryOutcome<T, E> {
        let max = self.max_attempts.max(1);
        let mut last: Option<E> = None;
        for attempt in 0..max {
            if attempt > 0 {
                spin_ticks(self.backoff_ticks(attempt - 1));
            }
            match op(attempt) {
                Ok(v) => {
                    return RetryOutcome {
                        result: Ok(v),
                        attempts: attempt + 1,
                    }
                }
                Err(e) => last = Some(e),
            }
        }
        let err = last.expect("max_attempts >= 1 guarantees at least one attempt");
        RetryOutcome {
            result: Err(err),
            attempts: max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_makes_one_attempt() {
        let out = RetryPolicy::default().run(|_| Ok::<_, ()>(42));
        assert_eq!(out.result, Ok(42));
        assert_eq!(out.attempts, 1);
        assert_eq!(out.retries(), 0);
        assert!(!out.gave_up());
    }

    #[test]
    fn transient_failure_recovers_within_budget() {
        let out = RetryPolicy {
            max_attempts: 4,
            base: 1,
            cap: 8,
        }
        .run(|attempt| {
            if attempt < 2 {
                Err("flake")
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.result, Ok(2));
        assert_eq!(out.attempts, 3);
        assert_eq!(out.retries(), 2);
    }

    #[test]
    fn permanent_failure_gives_up_after_budget() {
        let mut calls = 0;
        let out = RetryPolicy {
            max_attempts: 3,
            base: 1,
            cap: 2,
        }
        .run(|_| {
            calls += 1;
            Err::<(), _>("down")
        });
        assert_eq!(calls, 3);
        assert!(out.gave_up());
        assert_eq!(out.attempts, 3);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: 64,
            cap: 200,
        };
        assert_eq!(p.backoff_ticks(0), 64);
        assert_eq!(p.backoff_ticks(1), 128);
        assert_eq!(p.backoff_ticks(2), 200);
        assert_eq!(p.backoff_ticks(31), 200);
        assert_eq!(p.backoff_ticks(63), 200);
    }

    #[test]
    fn zero_attempts_clamps_to_one() {
        let mut calls = 0;
        let out = RetryPolicy {
            max_attempts: 0,
            base: 0,
            cap: 0,
        }
        .run(|_| {
            calls += 1;
            Ok::<_, ()>(())
        });
        assert_eq!(calls, 1);
        assert_eq!(out.attempts, 1);
    }
}
