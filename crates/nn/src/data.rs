//! Datasets, train/validation splits, mini-batching and normalization.
//!
//! Mirrors the paper's workflow (§V-B): collected data are split into a
//! training/validation set and a test set; features and targets are
//! standardized for training, with the normalization folded into the saved
//! model so the deployed surrogate maps raw application values end-to-end.

use crate::{NnError, Result};
use hpacml_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A pair of sample-major tensors `x: [N, ...]`, `y: [N, ...]`.
#[derive(Debug, Clone)]
pub struct InMemoryDataset {
    pub x: Tensor,
    pub y: Tensor,
}

impl InMemoryDataset {
    pub fn new(x: Tensor, y: Tensor) -> Result<Self> {
        if x.dims().is_empty() || y.dims().is_empty() || x.dims()[0] != y.dims()[0] {
            return Err(NnError::Train(format!(
                "dataset: x {:?} and y {:?} disagree on sample count",
                x.dims(),
                y.dims()
            )));
        }
        Ok(InMemoryDataset { x, y })
    }

    pub fn len(&self) -> usize {
        self.x.dims()[0]
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-sample element counts of (x, y).
    pub fn sample_numel(&self) -> (usize, usize) {
        (
            self.x.dims()[1..].iter().product::<usize>().max(1),
            self.y.dims()[1..].iter().product::<usize>().max(1),
        )
    }

    /// Copy the selected samples into a new dataset.
    pub fn subset(&self, indices: &[usize]) -> Self {
        let (xs, ys) = self.sample_numel();
        let mut xd = Vec::with_capacity(indices.len() * xs);
        let mut yd = Vec::with_capacity(indices.len() * ys);
        for &i in indices {
            xd.extend_from_slice(&self.x.data()[i * xs..(i + 1) * xs]);
            yd.extend_from_slice(&self.y.data()[i * ys..(i + 1) * ys]);
        }
        let mut xdims = self.x.dims().to_vec();
        xdims[0] = indices.len();
        let mut ydims = self.y.dims().to_vec();
        ydims[0] = indices.len();
        InMemoryDataset {
            x: Tensor::from_vec(xd, xdims).expect("subset shape"),
            y: Tensor::from_vec(yd, ydims).expect("subset shape"),
        }
    }

    /// Shuffled split into `(first, second)` where `first` holds
    /// `round(frac·N)` samples.
    pub fn split(&self, frac: f64, seed: u64) -> (Self, Self) {
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(&mut SmallRng::seed_from_u64(seed));
        let cut = ((n as f64) * frac).round() as usize;
        let cut = cut.min(n);
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Iterate `(x_batch, y_batch)` mini-batches, optionally shuffled.
    pub fn batches(&self, batch_size: usize, shuffle: Option<u64>) -> Batches<'_> {
        let mut order: Vec<usize> = (0..self.len()).collect();
        if let Some(seed) = shuffle {
            order.shuffle(&mut SmallRng::seed_from_u64(seed));
        }
        Batches {
            ds: self,
            order,
            batch_size: batch_size.max(1),
            pos: 0,
        }
    }
}

/// Mini-batch iterator over an [`InMemoryDataset`].
pub struct Batches<'a> {
    ds: &'a InMemoryDataset,
    order: Vec<usize>,
    batch_size: usize,
    pos: usize,
}

impl Iterator for Batches<'_> {
    type Item = (Tensor, Tensor);

    fn next(&mut self) -> Option<(Tensor, Tensor)> {
        if self.pos >= self.order.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.order.len());
        let part = self.ds.subset(&self.order[self.pos..end]);
        self.pos = end;
        Some((part.x, part.y))
    }
}

/// Which axis carries independent statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormAxis {
    /// One (mean, std) per trailing-dim feature — rank-2 `[N, F]` data.
    PerFeature,
    /// One (mean, std) per channel (dim 1) — rank-4 `[N, C, H, W]` data.
    PerChannel,
    /// A single global (mean, std).
    Global,
}

impl NormAxis {
    pub(crate) fn tag(self) -> u8 {
        match self {
            NormAxis::PerFeature => 0,
            NormAxis::PerChannel => 1,
            NormAxis::Global => 2,
        }
    }

    pub(crate) fn from_tag(t: u8) -> Result<Self> {
        match t {
            0 => Ok(NormAxis::PerFeature),
            1 => Ok(NormAxis::PerChannel),
            2 => Ok(NormAxis::Global),
            other => Err(NnError::Serialize(format!("bad norm axis tag {other}"))),
        }
    }
}

/// Standardization: `x' = (x - mean) / std` per group given by [`NormAxis`].
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    pub axis: NormAxis,
    pub mean: Vec<f32>,
    pub std: Vec<f32>,
}

const STD_FLOOR: f64 = 1e-8;

impl Normalizer {
    /// Fit statistics over the sample dimension of `x`.
    pub fn fit(x: &Tensor, axis: NormAxis) -> Result<Self> {
        let groups = Self::group_count(x.dims(), axis)?;
        let mut sums = vec![0.0f64; groups];
        let mut sqs = vec![0.0f64; groups];
        let mut counts = vec![0usize; groups];
        Self::for_each_group(x.dims(), axis, x.data(), |g, v| {
            sums[g] += v as f64;
            sqs[g] += (v as f64) * (v as f64);
            counts[g] += 1;
        });
        let mut mean = Vec::with_capacity(groups);
        let mut std = Vec::with_capacity(groups);
        for g in 0..groups {
            let n = counts[g].max(1) as f64;
            let m = sums[g] / n;
            let var = (sqs[g] / n - m * m).max(0.0);
            mean.push(m as f32);
            std.push(var.sqrt().max(STD_FLOOR) as f32);
        }
        Ok(Normalizer { axis, mean, std })
    }

    fn group_count(dims: &[usize], axis: NormAxis) -> Result<usize> {
        match axis {
            NormAxis::PerFeature => {
                if dims.len() < 2 {
                    return Err(NnError::Train(format!(
                        "per-feature normalization needs rank >= 2, got {dims:?}"
                    )));
                }
                Ok(*dims.last().unwrap())
            }
            NormAxis::PerChannel => {
                if dims.len() != 4 {
                    return Err(NnError::Train(format!(
                        "per-channel normalization needs [N, C, H, W], got {dims:?}"
                    )));
                }
                Ok(dims[1])
            }
            NormAxis::Global => Ok(1),
        }
    }

    /// Map each element to its statistics group.
    fn for_each_group(dims: &[usize], axis: NormAxis, data: &[f32], mut f: impl FnMut(usize, f32)) {
        match axis {
            NormAxis::PerFeature => {
                let fdim = *dims.last().unwrap();
                for (i, v) in data.iter().enumerate() {
                    f(i % fdim, *v);
                }
            }
            NormAxis::PerChannel => {
                let (c, hw) = (dims[1], dims[2] * dims[3]);
                for (i, v) in data.iter().enumerate() {
                    f((i / hw) % c, *v);
                }
            }
            NormAxis::Global => {
                for v in data {
                    f(0, *v);
                }
            }
        }
    }

    fn apply(&self, x: &Tensor, forward: bool) -> Tensor {
        let mut out = x.clone();
        self.apply_in_place(&mut out, forward);
        out
    }

    /// Standardize.
    pub fn transform(&self, x: &Tensor) -> Tensor {
        self.apply(x, true)
    }

    /// Standardize into a caller-owned tensor (resized in place;
    /// allocation-free once `out` has capacity).
    pub fn transform_into(&self, x: &Tensor, out: &mut Tensor) {
        x.copy_into(out);
        self.transform_in_place(out);
    }

    /// Standardize in place (allocation-free).
    pub fn transform_in_place(&self, x: &mut Tensor) {
        self.apply_in_place(x, true);
    }

    /// Undo standardization in place (allocation-free).
    pub fn inverse_in_place(&self, x: &mut Tensor) {
        self.apply_in_place(x, false);
    }

    fn apply_in_place(&self, x: &mut Tensor, forward: bool) {
        // Precompute the two layout constants from the shape, then mutate the
        // data; avoids cloning the dims vector on the hot path.
        let dims = x.dims();
        let group_extent = match self.axis {
            NormAxis::PerFeature => *dims.last().unwrap_or(&1),
            NormAxis::PerChannel => dims[1],
            NormAxis::Global => 1,
        };
        let inner = match self.axis {
            NormAxis::PerFeature => 1,
            NormAxis::PerChannel => dims[2] * dims[3],
            NormAxis::Global => 1,
        };
        let (mean, std) = (&self.mean, &self.std);
        for (i, v) in x.data_mut().iter_mut().enumerate() {
            let g = (i / inner) % group_extent;
            *v = if forward {
                (*v - mean[g]) / std[g]
            } else {
                *v * std[g] + mean[g]
            };
        }
    }

    /// Undo standardization.
    pub fn inverse(&self, x: &Tensor) -> Tensor {
        self.apply(x, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: usize) -> InMemoryDataset {
        let x = Tensor::from_shape_fn([n, 3], |ix| (ix[0] * 3 + ix[1]) as f32);
        let y = Tensor::from_shape_fn([n, 1], |ix| ix[0] as f32);
        InMemoryDataset::new(x, y).unwrap()
    }

    #[test]
    fn mismatched_counts_rejected() {
        let x = Tensor::<f32>::zeros([4, 2]);
        let y = Tensor::<f32>::zeros([5, 1]);
        assert!(InMemoryDataset::new(x, y).is_err());
    }

    #[test]
    fn subset_copies_rows() {
        let d = ds(10);
        let s = d.subset(&[2, 7]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.x.data(), &[6.0, 7.0, 8.0, 21.0, 22.0, 23.0]);
        assert_eq!(s.y.data(), &[2.0, 7.0]);
    }

    #[test]
    fn split_partitions_everything() {
        let d = ds(100);
        let (a, b) = d.split(0.8, 42);
        assert_eq!(a.len(), 80);
        assert_eq!(b.len(), 20);
        // Together they must cover all row labels exactly once.
        let mut seen: Vec<f32> = a.y.data().iter().chain(b.y.data()).copied().collect();
        seen.sort_by(f32::total_cmp);
        let expect: Vec<f32> = (0..100).map(|i| i as f32).collect();
        assert_eq!(seen, expect);
        // Deterministic per seed.
        let (a2, _) = d.split(0.8, 42);
        assert_eq!(a.y.data(), a2.y.data());
    }

    #[test]
    fn batches_cover_dataset() {
        let d = ds(10);
        let total: usize = d.batches(3, None).map(|(x, _)| x.dims()[0]).sum();
        assert_eq!(total, 10);
        let sizes: Vec<usize> = d.batches(3, None).map(|(x, _)| x.dims()[0]).collect();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        // Shuffled batches still cover every sample.
        let mut ys: Vec<f32> = d
            .batches(4, Some(7))
            .flat_map(|(_, y)| y.data().to_vec())
            .collect();
        ys.sort_by(f32::total_cmp);
        assert_eq!(ys, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn per_feature_normalizer_standardizes() {
        let x = Tensor::from_vec(vec![0.0f32, 100.0, 2.0, 200.0, 4.0, 300.0], [3, 2]).unwrap();
        let nz = Normalizer::fit(&x, NormAxis::PerFeature).unwrap();
        assert!((nz.mean[0] - 2.0).abs() < 1e-6);
        assert!((nz.mean[1] - 200.0).abs() < 1e-5);
        let t = nz.transform(&x);
        // Column means ~0, stds ~1.
        let col0: f32 = (0..3).map(|i| t.data()[i * 2]).sum::<f32>() / 3.0;
        assert!(col0.abs() < 1e-6);
        let back = nz.inverse(&t);
        assert!(back.max_abs_diff(&x).unwrap() < 1e-4);
    }

    #[test]
    fn per_channel_normalizer_roundtrips() {
        let x = Tensor::from_shape_fn([2, 3, 2, 2], |ix| (ix[1] * 10 + ix[2]) as f32);
        let nz = Normalizer::fit(&x, NormAxis::PerChannel).unwrap();
        assert_eq!(nz.mean.len(), 3);
        let back = nz.inverse(&nz.transform(&x));
        assert!(back.max_abs_diff(&x).unwrap() < 1e-4);
    }

    #[test]
    fn global_normalizer() {
        let x = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], [4, 1]).unwrap();
        let nz = Normalizer::fit(&x, NormAxis::Global).unwrap();
        assert_eq!(nz.mean.len(), 1);
        assert!((nz.mean[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn constant_feature_does_not_divide_by_zero() {
        let x = Tensor::from_vec(vec![5.0f32; 8], [4, 2]).unwrap();
        let nz = Normalizer::fit(&x, NormAxis::PerFeature).unwrap();
        let t = nz.transform(&x);
        assert!(t.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn axis_validation() {
        let x = Tensor::<f32>::zeros([4]);
        assert!(Normalizer::fit(&x, NormAxis::PerFeature).is_err());
        let x = Tensor::<f32>::zeros([4, 2]);
        assert!(Normalizer::fit(&x, NormAxis::PerChannel).is_err());
    }
}
