//! Weight initialization.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for a given seed; all initialization flows through here
/// so model builds are reproducible.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Kaiming/He uniform initialization for a weight tensor with `fan_in`
/// incoming connections — the PyTorch default for Linear/Conv layers.
pub fn kaiming_uniform(rng: &mut SmallRng, fan_in: usize, n: usize) -> Vec<f32> {
    let bound = if fan_in > 0 {
        (1.0 / fan_in as f32).sqrt() * 3.0f32.sqrt()
    } else {
        0.0
    };
    (0..n).map(|_| rng.gen_range(-bound..=bound)).collect()
}

/// Uniform bias initialization matching PyTorch's `1/sqrt(fan_in)` bound.
pub fn bias_uniform(rng: &mut SmallRng, fan_in: usize, n: usize) -> Vec<f32> {
    let bound = if fan_in > 0 {
        (1.0 / fan_in as f32).sqrt()
    } else {
        0.0
    };
    (0..n).map(|_| rng.gen_range(-bound..=bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = kaiming_uniform(&mut rng(7), 16, 100);
        let b = kaiming_uniform(&mut rng(7), 16, 100);
        assert_eq!(a, b);
        let c = kaiming_uniform(&mut rng(8), 16, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let fan_in = 64;
        let w = kaiming_uniform(&mut rng(1), fan_in, 10_000);
        let bound = (1.0 / fan_in as f32).sqrt() * 3.0f32.sqrt();
        assert!(w.iter().all(|x| x.abs() <= bound + 1e-7));
        // Values should actually spread out, not collapse.
        let spread = w.iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(spread > bound * 0.9);
    }

    #[test]
    fn zero_fan_in_is_zero() {
        assert!(kaiming_uniform(&mut rng(1), 0, 4).iter().all(|x| *x == 0.0));
        assert!(bias_uniform(&mut rng(1), 0, 4).iter().all(|x| *x == 0.0));
    }
}
