//! The inference compile pass: layer fusion + weight pre-packing.
//!
//! A deployed surrogate is immutable — same weights, millions of forward
//! passes — so anything per-forward that a one-time pass can precompute is
//! pure waste on the hot path. [`compile_for_inference`] rewrites a
//! [`Sequential`] in three steps:
//!
//! 1. **drop inference identities** — `Dropout` is a no-op outside
//!    training but still costs a full activation copy per forward;
//! 2. **fuse activations** — `Linear→{ReLU,Tanh,Sigmoid}` and
//!    `Conv2d→{ReLU,Tanh,Sigmoid}` pairs collapse into the compute layer,
//!    whose GEMM epilogue then applies bias *and* activation to each
//!    output tile while it is register/L1-hot (two full-tensor memory
//!    sweeps deleted per pair);
//! 3. **pre-pack weights** — `Linear` packs `Wᵀ` into
//!    [`PackedB`](hpacml_tensor::gemm::PackedB) column panels, `Conv2d`
//!    packs its `[filters, c*kh*kw]` matrix into
//!    [`PackedA`](hpacml_tensor::gemm::PackedA) row blocks, so the
//!    steady-state kernels never repack.
//!
//! The pass is **semantics-preserving at the bit level** for inference:
//! every fused/packed kernel accumulates in the same ascending-`k` order
//! and applies the same bias/activation expressions as the unfused stack
//! (see the determinism notes on [`hpacml_tensor::gemm`]). It is applied
//! automatically by [`crate::serialize::load_model`]; a compiled model is
//! inference-only (its backward pass no longer sees the removed layers).

use crate::model::Sequential;
use hpacml_tensor::quant::Precision;

/// What [`compile_for_inference`] did to a model — surfaced so runtimes
/// and benches can attribute their speedups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileInfo {
    /// Inference-identity layers (Dropout) removed.
    pub removed_identity: usize,
    /// Activation layers folded into the preceding compute layer's epilogue.
    pub fused_activations: usize,
    /// Layers whose weights were pre-packed into panel layouts.
    pub packed_layers: usize,
    /// Layers that built reduced-precision packs (quantize stage).
    pub quantized_layers: usize,
}

/// Per-layer weight precision for the compile pass's quantization stage.
///
/// `target` is the *coarsest* rung the model will serve at; the stage
/// builds that pack plus every finer one (int8 target also builds bf16)
/// so the online-validation demotion ladder int8 → bf16 → f32 moves by a
/// pointer swap, never a repack. Accumulation is always f32 — the policy
/// only changes how many bytes per weight the forward pass streams.
///
/// `max_calib_rows` bounds how many collected input rows the runtime
/// reads from the region db to score the quantized model against the f32
/// one before it serves (`Region::set_precision_policy` in
/// `hpacml-core`); `0` skips calibration scoring entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrecisionPolicy {
    /// Coarsest precision to serve at (the ladder's starting rung).
    pub target: Precision,
    /// Calibration-row budget for db-driven scoring (0 = skip).
    pub max_calib_rows: usize,
}

impl Default for PrecisionPolicy {
    fn default() -> Self {
        PrecisionPolicy {
            target: Precision::F32,
            max_calib_rows: 256,
        }
    }
}

impl PrecisionPolicy {
    /// Policy targeting an arbitrary precision (the parametric form of
    /// [`f32`](Self::f32)/[`bf16`](Self::bf16)/[`int8`](Self::int8)).
    pub fn at(target: Precision) -> Self {
        PrecisionPolicy {
            target,
            ..Default::default()
        }
    }

    /// Full-precision policy — compile behaves exactly as before.
    pub fn f32() -> Self {
        PrecisionPolicy {
            target: Precision::F32,
            ..Default::default()
        }
    }

    /// Serve bf16 weights (2x weight bandwidth).
    pub fn bf16() -> Self {
        PrecisionPolicy {
            target: Precision::Bf16,
            ..Default::default()
        }
    }

    /// Serve int8 weights (4x weight bandwidth), bf16 + f32 rungs ready.
    pub fn int8() -> Self {
        PrecisionPolicy {
            target: Precision::Int8,
            ..Default::default()
        }
    }

    /// Bound the calibration rows read from the region db (0 = skip).
    pub fn with_max_calib_rows(mut self, rows: usize) -> Self {
        self.max_calib_rows = rows;
        self
    }
}

/// Compile a model for inference: drop identities, fuse activations into
/// GEMM epilogues, pre-pack weights. Idempotent; returns what changed.
pub fn compile_for_inference(model: &mut Sequential) -> CompileInfo {
    let mut info = CompileInfo::default();
    let layers = model.layers_mut();

    let before = layers.len();
    layers.retain(|l| !l.inference_identity());
    info.removed_identity = before - layers.len();

    let mut i = 0;
    while i < layers.len() {
        if i + 1 < layers.len() {
            if let Some(act) = layers[i + 1].as_activation() {
                if layers[i].fuse_activation(act) {
                    layers.remove(i + 1);
                    info.fused_activations += 1;
                }
            }
        }
        i += 1;
    }

    for l in layers.iter_mut() {
        if l.prepack() {
            info.packed_layers += 1;
        }
    }
    info
}

/// [`compile_for_inference`] plus a quantization stage: after fusing and
/// packing, each layer that supports reduced precision builds packs for
/// `policy.target` and every finer ladder rung. With an `F32` target this
/// is exactly `compile_for_inference`.
pub fn compile_for_inference_with(model: &mut Sequential, policy: &PrecisionPolicy) -> CompileInfo {
    let mut info = compile_for_inference(model);
    if policy.target != Precision::F32 {
        for l in model.layers_mut().iter_mut() {
            if l.quantize(policy.target) {
                info.quantized_layers += 1;
            }
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, LayerSpec, ModelSpec};
    use hpacml_tensor::Tensor;

    #[test]
    fn mlp_fuses_and_matches_uncompiled_bitwise() {
        let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.25);
        let reference = spec.build(7).unwrap();
        let mut compiled = spec.build(7).unwrap();
        let info = compile_for_inference(&mut compiled);
        // 2 dropouts removed, 2 tanh fused, 3 linears packed.
        assert_eq!(info.removed_identity, 2);
        assert_eq!(info.fused_activations, 2);
        assert_eq!(info.packed_layers, 3);
        assert_eq!(compiled.layer_names(), vec!["linear", "linear", "linear"]);

        let x = Tensor::from_shape_fn([9, 6], |ix| (ix[0] as f32 - ix[1] as f32) * 0.17);
        let a = reference.forward(&x).unwrap();
        let b = compiled.forward(&x).unwrap();
        assert_eq!(a.data(), b.data(), "compilation must not change results");
    }

    #[test]
    fn cnn_fuses_conv_activation_and_matches() {
        let spec = ModelSpec::new(
            vec![2, 8, 8],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 2,
                    out_ch: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 3 * 4 * 4,
                    out_features: 2,
                },
                LayerSpec::Sigmoid,
            ],
        );
        let reference = spec.build(3).unwrap();
        let mut compiled = spec.build(3).unwrap();
        let info = compile_for_inference(&mut compiled);
        assert_eq!(info.fused_activations, 2);
        assert_eq!(info.packed_layers, 2);
        assert_eq!(
            compiled.layer_names(),
            vec!["conv2d", "maxpool2d", "flatten", "linear"]
        );
        let x = Tensor::from_shape_fn([3, 2, 8, 8], |ix| (ix[2] * 8 + ix[3]) as f32 * 0.013 - 0.4);
        assert_eq!(
            reference.forward(&x).unwrap().data(),
            compiled.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn double_activation_fuses_only_once() {
        let spec = ModelSpec::new(
            vec![4],
            vec![
                LayerSpec::Linear {
                    in_features: 4,
                    out_features: 4,
                },
                LayerSpec::ReLU,
                LayerSpec::Tanh,
            ],
        );
        let reference = spec.build(1).unwrap();
        let mut compiled = spec.build(1).unwrap();
        let info = compile_for_inference(&mut compiled);
        assert_eq!(info.fused_activations, 1);
        assert_eq!(compiled.layer_names(), vec!["linear", "tanh"]);
        let x = Tensor::from_shape_fn([5, 4], |ix| ix[1] as f32 * 0.3 - 0.5);
        assert_eq!(
            reference.forward(&x).unwrap().data(),
            compiled.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn compiled_layers_refuse_training() {
        // The fusion pass removed the activation layer; training a fused
        // layer would silently skip its gradient — it must error instead.
        let spec = ModelSpec::mlp(4, &[8], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(4).unwrap();
        compile_for_inference(&mut m);
        let x = Tensor::full([2, 4], 0.5f32);
        assert!(matches!(
            m.forward_train(&x),
            Err(crate::NnError::Train(msg)) if msg.contains("compiled for inference")
        ));
    }

    #[test]
    fn visiting_params_refreshes_packs() {
        // Mutating weights through visit_params (import_weights, snapshot
        // restores) must not leave forwards reading stale panels — and a
        // read-only visit (export_weights) must not silently lose the
        // packed steady state either.
        let spec = ModelSpec::mlp(3, &[6], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(9).unwrap();
        compile_for_inference(&mut m);
        let x = Tensor::full([4, 3], 0.25f32);
        let before = m.forward(&x).unwrap();
        m.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v *= 2.0;
            }
        });
        let after = m.forward(&x).unwrap();
        assert_ne!(
            before.data(),
            after.data(),
            "forward must see the mutated weights, not stale packed panels"
        );
        // Read-only visit keeps the packs (and refreshes them in place).
        let _ = m.export_weights();
        let again = m.forward(&x).unwrap();
        assert_eq!(after.data(), again.data());
    }

    #[test]
    fn quantize_stage_builds_ladder_packs() {
        let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.25);
        // int8 target: every Linear gets int8 + bf16 rungs.
        let mut m = spec.build(7).unwrap();
        let info = compile_for_inference_with(&mut m, &PrecisionPolicy::int8());
        assert_eq!(info.quantized_layers, 3);
        assert_eq!(info.packed_layers, 3);
        // f32 target is exactly the plain pass.
        let mut m3 = spec.build(7).unwrap();
        let info3 = compile_for_inference_with(&mut m3, &PrecisionPolicy::f32());
        assert_eq!(info3.quantized_layers, 0);
        assert_eq!(compile_for_inference(&mut spec.build(7).unwrap()), info3);
    }

    #[test]
    fn quantized_forward_tracks_f32_and_honors_the_ladder() {
        use hpacml_tensor::quant::Precision;
        let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.0);
        let mut m = spec.build(11).unwrap();
        compile_for_inference_with(&mut m, &PrecisionPolicy::int8());
        let x = Tensor::from_shape_fn([9, 6], |ix| (ix[0] as f32 - ix[1] as f32) * 0.17);
        let mut ws = crate::ForwardWorkspace::new();
        let f32_y = ws.forward_at(&m, &x, Precision::F32).unwrap().clone();
        let bf16_y = ws.forward_at(&m, &x, Precision::Bf16).unwrap().clone();
        let int8_y = ws.forward_at(&m, &x, Precision::Int8).unwrap().clone();
        // Quantized serving approximates f32 — close, not equal.
        for ((q, b), f) in int8_y.data().iter().zip(bf16_y.data()).zip(f32_y.data()) {
            assert!((q - f).abs() < 0.1, "int8 drifted: {q} vs {f}");
            assert!((b - f).abs() < 0.05, "bf16 drifted: {b} vs {f}");
        }
        // F32 serving of a quantized model is the plain compiled forward.
        assert_eq!(f32_y.data(), m.forward(&x).unwrap().data());

        // A bf16-target model asked for int8 serves its coarsest rung —
        // bf16 — bit for bit (the ladder fallthrough rule).
        let mut mb = spec.build(11).unwrap();
        compile_for_inference_with(&mut mb, &PrecisionPolicy::bf16());
        let bf16_only = ws.forward_at(&mb, &x, Precision::Int8).unwrap().clone();
        assert_eq!(bf16_only.data(), bf16_y.data());
    }

    #[test]
    fn visiting_params_refreshes_quantized_packs() {
        use hpacml_tensor::quant::Precision;
        let spec = ModelSpec::mlp(3, &[6], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(9).unwrap();
        compile_for_inference_with(&mut m, &PrecisionPolicy::int8());
        let x = Tensor::full([4, 3], 0.25f32);
        let mut ws = crate::ForwardWorkspace::new();
        let before = ws.forward_at(&m, &x, Precision::Int8).unwrap().clone();
        m.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v *= 2.0;
            }
        });
        let after = ws.forward_at(&m, &x, Precision::Int8).unwrap().clone();
        assert_ne!(
            before.data(),
            after.data(),
            "quantized forward must see the mutated weights, not stale panels"
        );
        // And the refreshed pack is the same as packing the new weights.
        let mut fresh = spec.build(9).unwrap();
        fresh.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v *= 2.0;
            }
        });
        compile_for_inference_with(&mut fresh, &PrecisionPolicy::int8());
        let want = ws.forward_at(&fresh, &x, Precision::Int8).unwrap().clone();
        assert_eq!(after.data(), want.data());
    }

    #[test]
    fn compile_is_idempotent() {
        let spec = ModelSpec::mlp(3, &[8], 1, Activation::ReLU, 0.1);
        let mut m = spec.build(2).unwrap();
        let first = compile_for_inference(&mut m);
        assert_eq!(first.fused_activations, 1);
        let second = compile_for_inference(&mut m);
        assert_eq!(second.removed_identity, 0);
        assert_eq!(second.fused_activations, 0);
        // Re-packing is harmless (same panels recomputed).
        assert_eq!(second.packed_layers, first.packed_layers);
    }
}
