//! The inference compile pass: layer fusion + weight pre-packing.
//!
//! A deployed surrogate is immutable — same weights, millions of forward
//! passes — so anything per-forward that a one-time pass can precompute is
//! pure waste on the hot path. [`compile_for_inference`] rewrites a
//! [`Sequential`] in three steps:
//!
//! 1. **drop inference identities** — `Dropout` is a no-op outside
//!    training but still costs a full activation copy per forward;
//! 2. **fuse activations** — `Linear→{ReLU,Tanh,Sigmoid}` and
//!    `Conv2d→{ReLU,Tanh,Sigmoid}` pairs collapse into the compute layer,
//!    whose GEMM epilogue then applies bias *and* activation to each
//!    output tile while it is register/L1-hot (two full-tensor memory
//!    sweeps deleted per pair);
//! 3. **pre-pack weights** — `Linear` packs `Wᵀ` into
//!    [`PackedB`](hpacml_tensor::gemm::PackedB) column panels, `Conv2d`
//!    packs its `[filters, c*kh*kw]` matrix into
//!    [`PackedA`](hpacml_tensor::gemm::PackedA) row blocks, so the
//!    steady-state kernels never repack.
//!
//! The pass is **semantics-preserving at the bit level** for inference:
//! every fused/packed kernel accumulates in the same ascending-`k` order
//! and applies the same bias/activation expressions as the unfused stack
//! (see the determinism notes on [`hpacml_tensor::gemm`]). It is applied
//! automatically by [`crate::serialize::load_model`]; a compiled model is
//! inference-only (its backward pass no longer sees the removed layers).

use crate::model::Sequential;

/// What [`compile_for_inference`] did to a model — surfaced so runtimes
/// and benches can attribute their speedups.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompileInfo {
    /// Inference-identity layers (Dropout) removed.
    pub removed_identity: usize,
    /// Activation layers folded into the preceding compute layer's epilogue.
    pub fused_activations: usize,
    /// Layers whose weights were pre-packed into panel layouts.
    pub packed_layers: usize,
}

/// Compile a model for inference: drop identities, fuse activations into
/// GEMM epilogues, pre-pack weights. Idempotent; returns what changed.
pub fn compile_for_inference(model: &mut Sequential) -> CompileInfo {
    let mut info = CompileInfo::default();
    let layers = model.layers_mut();

    let before = layers.len();
    layers.retain(|l| !l.inference_identity());
    info.removed_identity = before - layers.len();

    let mut i = 0;
    while i < layers.len() {
        if i + 1 < layers.len() {
            if let Some(act) = layers[i + 1].as_activation() {
                if layers[i].fuse_activation(act) {
                    layers.remove(i + 1);
                    info.fused_activations += 1;
                }
            }
        }
        i += 1;
    }

    for l in layers.iter_mut() {
        if l.prepack() {
            info.packed_layers += 1;
        }
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, LayerSpec, ModelSpec};
    use hpacml_tensor::Tensor;

    #[test]
    fn mlp_fuses_and_matches_uncompiled_bitwise() {
        let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.25);
        let reference = spec.build(7).unwrap();
        let mut compiled = spec.build(7).unwrap();
        let info = compile_for_inference(&mut compiled);
        // 2 dropouts removed, 2 tanh fused, 3 linears packed.
        assert_eq!(info.removed_identity, 2);
        assert_eq!(info.fused_activations, 2);
        assert_eq!(info.packed_layers, 3);
        assert_eq!(compiled.layer_names(), vec!["linear", "linear", "linear"]);

        let x = Tensor::from_shape_fn([9, 6], |ix| (ix[0] as f32 - ix[1] as f32) * 0.17);
        let a = reference.forward(&x).unwrap();
        let b = compiled.forward(&x).unwrap();
        assert_eq!(a.data(), b.data(), "compilation must not change results");
    }

    #[test]
    fn cnn_fuses_conv_activation_and_matches() {
        let spec = ModelSpec::new(
            vec![2, 8, 8],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 2,
                    out_ch: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 3 * 4 * 4,
                    out_features: 2,
                },
                LayerSpec::Sigmoid,
            ],
        );
        let reference = spec.build(3).unwrap();
        let mut compiled = spec.build(3).unwrap();
        let info = compile_for_inference(&mut compiled);
        assert_eq!(info.fused_activations, 2);
        assert_eq!(info.packed_layers, 2);
        assert_eq!(
            compiled.layer_names(),
            vec!["conv2d", "maxpool2d", "flatten", "linear"]
        );
        let x = Tensor::from_shape_fn([3, 2, 8, 8], |ix| (ix[2] * 8 + ix[3]) as f32 * 0.013 - 0.4);
        assert_eq!(
            reference.forward(&x).unwrap().data(),
            compiled.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn double_activation_fuses_only_once() {
        let spec = ModelSpec::new(
            vec![4],
            vec![
                LayerSpec::Linear {
                    in_features: 4,
                    out_features: 4,
                },
                LayerSpec::ReLU,
                LayerSpec::Tanh,
            ],
        );
        let reference = spec.build(1).unwrap();
        let mut compiled = spec.build(1).unwrap();
        let info = compile_for_inference(&mut compiled);
        assert_eq!(info.fused_activations, 1);
        assert_eq!(compiled.layer_names(), vec!["linear", "tanh"]);
        let x = Tensor::from_shape_fn([5, 4], |ix| ix[1] as f32 * 0.3 - 0.5);
        assert_eq!(
            reference.forward(&x).unwrap().data(),
            compiled.forward(&x).unwrap().data()
        );
    }

    #[test]
    fn compiled_layers_refuse_training() {
        // The fusion pass removed the activation layer; training a fused
        // layer would silently skip its gradient — it must error instead.
        let spec = ModelSpec::mlp(4, &[8], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(4).unwrap();
        compile_for_inference(&mut m);
        let x = Tensor::full([2, 4], 0.5f32);
        assert!(matches!(
            m.forward_train(&x),
            Err(crate::NnError::Train(msg)) if msg.contains("compiled for inference")
        ));
    }

    #[test]
    fn visiting_params_refreshes_packs() {
        // Mutating weights through visit_params (import_weights, snapshot
        // restores) must not leave forwards reading stale panels — and a
        // read-only visit (export_weights) must not silently lose the
        // packed steady state either.
        let spec = ModelSpec::mlp(3, &[6], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(9).unwrap();
        compile_for_inference(&mut m);
        let x = Tensor::full([4, 3], 0.25f32);
        let before = m.forward(&x).unwrap();
        m.visit_params(&mut |p| {
            for v in p.value.data_mut() {
                *v *= 2.0;
            }
        });
        let after = m.forward(&x).unwrap();
        assert_ne!(
            before.data(),
            after.data(),
            "forward must see the mutated weights, not stale packed panels"
        );
        // Read-only visit keeps the packs (and refreshes them in place).
        let _ = m.export_weights();
        let again = m.forward(&x).unwrap();
        assert_eq!(after.data(), again.data());
    }

    #[test]
    fn compile_is_idempotent() {
        let spec = ModelSpec::mlp(3, &[8], 1, Activation::ReLU, 0.1);
        let mut m = spec.build(2).unwrap();
        let first = compile_for_inference(&mut m);
        assert_eq!(first.fused_activations, 1);
        let second = compile_for_inference(&mut m);
        assert_eq!(second.removed_identity, 0);
        assert_eq!(second.fused_activations, 0);
        // Re-packing is harmless (same panels recomputed).
        assert_eq!(second.packed_layers, first.packed_layers);
    }
}
