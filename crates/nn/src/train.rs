//! Mini-batch training loop with validation tracking and early stopping.

use crate::data::InMemoryDataset;
use crate::loss::Loss;
use crate::model::Sequential;
use crate::optim::{OptimState, Optimizer};
use crate::{NnError, Result};

/// Training hyperparameters — the knobs the paper's inner BO level tunes
/// (learning rate, weight decay, batch size; dropout lives in the spec).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub optimizer: Optimizer,
    pub loss: Loss,
    /// Shuffling/exploration seed.
    pub seed: u64,
    /// Stop after this many epochs without validation improvement (0 = off).
    pub early_stop_patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 50,
            batch_size: 64,
            optimizer: Optimizer::adam(1e-3, 0.0),
            loss: Loss::Mse,
            seed: 0,
            early_stop_patience: 8,
        }
    }
}

/// Loss curves and the best validation point seen.
#[derive(Debug, Clone)]
pub struct History {
    pub train_loss: Vec<f64>,
    pub val_loss: Vec<f64>,
    pub best_val: f64,
    pub best_epoch: usize,
    /// True when training stopped before `epochs` due to patience.
    pub stopped_early: bool,
}

/// Average loss of `model` on `ds` (pure forward, batched).
pub fn evaluate(model: &Sequential, ds: &InMemoryDataset, loss: Loss, batch: usize) -> Result<f64> {
    if ds.is_empty() {
        return Err(NnError::Train("evaluate on empty dataset".into()));
    }
    let mut total = 0.0f64;
    let mut count = 0usize;
    for (x, y) in ds.batches(batch, None) {
        let n = x.dims()[0];
        let pred = model.forward(&x)?;
        let (l, _) = loss.eval(&pred, &y)?;
        total += l * n as f64;
        count += n;
    }
    Ok(total / count.max(1) as f64)
}

/// Train `model` in place. When a validation set is given, tracks the best
/// validation loss, restores the best weights at the end, and applies early
/// stopping with `cfg.early_stop_patience`.
pub fn train(
    model: &mut Sequential,
    train_ds: &InMemoryDataset,
    val_ds: Option<&InMemoryDataset>,
    cfg: &TrainConfig,
) -> Result<History> {
    if train_ds.is_empty() {
        return Err(NnError::Train("training dataset is empty".into()));
    }
    let mut state = OptimState::new(cfg.optimizer);
    let mut history = History {
        train_loss: Vec::with_capacity(cfg.epochs),
        val_loss: Vec::new(),
        best_val: f64::INFINITY,
        best_epoch: 0,
        stopped_early: false,
    };
    let mut best_weights: Option<Vec<Vec<f32>>> = None;
    let mut stale = 0usize;

    for epoch in 0..cfg.epochs {
        let mut total = 0.0f64;
        let mut count = 0usize;
        let shuffle_seed = cfg.seed.wrapping_add(epoch as u64);
        for (x, y) in train_ds.batches(cfg.batch_size, Some(shuffle_seed)) {
            let n = x.dims()[0];
            model.zero_grad();
            let pred = model.forward_train(&x)?;
            let (l, dloss) = cfg.loss.eval(&pred, &y)?;
            if !l.is_finite() {
                return Err(NnError::Train(format!("loss diverged at epoch {epoch}")));
            }
            model.backward(&dloss)?;
            state.step(model);
            total += l * n as f64;
            count += n;
        }
        history.train_loss.push(total / count.max(1) as f64);

        if let Some(val) = val_ds {
            let vl = evaluate(model, val, cfg.loss, cfg.batch_size)?;
            history.val_loss.push(vl);
            if vl < history.best_val {
                history.best_val = vl;
                history.best_epoch = epoch;
                best_weights = Some(model.export_weights());
                stale = 0;
            } else {
                stale += 1;
                if cfg.early_stop_patience > 0 && stale >= cfg.early_stop_patience {
                    history.stopped_early = true;
                    break;
                }
            }
        }
    }

    if let Some(w) = best_weights {
        model.import_weights(&w)?;
    }
    if val_ds.is_none() {
        history.best_val = history.train_loss.last().copied().unwrap_or(f64::INFINITY);
        history.best_epoch = history.train_loss.len().saturating_sub(1);
    }
    Ok(history)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, ModelSpec};
    use hpacml_tensor::Tensor;
    use rand::Rng;

    /// y = sin(2x0) + 0.5·x1 — a smooth target an MLP should nail.
    fn toy_dataset(n: usize, seed: u64) -> InMemoryDataset {
        let mut r = crate::init::rng(seed);
        let mut xd = Vec::with_capacity(n * 2);
        let mut yd = Vec::with_capacity(n);
        for _ in 0..n {
            let a = r.gen_range(-1.5f32..1.5);
            let b = r.gen_range(-1.5f32..1.5);
            xd.push(a);
            xd.push(b);
            yd.push((2.0 * a).sin() + 0.5 * b);
        }
        InMemoryDataset::new(
            Tensor::from_vec(xd, [n, 2]).unwrap(),
            Tensor::from_vec(yd, [n, 1]).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn mlp_learns_smooth_function() {
        let ds = toy_dataset(800, 1);
        let (tr, va) = ds.split(0.8, 2);
        let spec = ModelSpec::mlp(2, &[32, 32], 1, Activation::Tanh, 0.0);
        let mut model = spec.build(3).unwrap();
        let cfg = TrainConfig {
            epochs: 60,
            batch_size: 64,
            optimizer: Optimizer::adam(5e-3, 0.0),
            early_stop_patience: 0,
            ..Default::default()
        };
        let hist = train(&mut model, &tr, Some(&va), &cfg).unwrap();
        assert!(
            hist.best_val < 5e-3,
            "val loss should drop below 5e-3, got {}",
            hist.best_val
        );
        // Loss must actually decrease over training.
        assert!(hist.train_loss.last().unwrap() < &(hist.train_loss[0] * 0.1));
    }

    #[test]
    fn early_stopping_triggers_and_restores_best() {
        let ds = toy_dataset(200, 4);
        let (tr, va) = ds.split(0.7, 5);
        let spec = ModelSpec::mlp(2, &[8], 1, Activation::Tanh, 0.0);
        let mut model = spec.build(6).unwrap();
        // Aggressive LR so validation fluctuates; tiny patience forces a stop.
        let cfg = TrainConfig {
            epochs: 200,
            batch_size: 16,
            optimizer: Optimizer::sgd(0.5, 0.0, 0.0),
            early_stop_patience: 3,
            ..Default::default()
        };
        let hist = train(&mut model, &tr, Some(&va), &cfg).unwrap();
        if hist.stopped_early {
            assert!(hist.val_loss.len() < 200);
        }
        // Restored weights must reproduce the recorded best validation loss.
        let vl = evaluate(&model, &va, Loss::Mse, 16).unwrap();
        assert!(
            (vl - hist.best_val).abs() < 1e-9,
            "restored {vl} vs best {}",
            hist.best_val
        );
    }

    #[test]
    fn train_without_validation_uses_train_loss() {
        let ds = toy_dataset(100, 7);
        let spec = ModelSpec::mlp(2, &[8], 1, Activation::ReLU, 0.0);
        let mut model = spec.build(8).unwrap();
        let cfg = TrainConfig {
            epochs: 5,
            ..Default::default()
        };
        let hist = train(&mut model, &ds, None, &cfg).unwrap();
        assert_eq!(hist.val_loss.len(), 0);
        assert_eq!(hist.train_loss.len(), 5);
        assert!(hist.best_val.is_finite());
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = toy_dataset(10, 9).subset(&[]);
        let spec = ModelSpec::mlp(2, &[4], 1, Activation::ReLU, 0.0);
        let mut model = spec.build(1).unwrap();
        assert!(train(&mut model, &ds, None, &TrainConfig::default()).is_err());
        assert!(evaluate(&model, &ds, Loss::Mse, 4).is_err());
    }

    #[test]
    fn weight_snapshot_roundtrip() {
        let spec = ModelSpec::mlp(2, &[4], 1, Activation::ReLU, 0.0);
        let mut m = spec.build(10).unwrap();
        let w = m.export_weights();
        let mut m2 = spec.build(11).unwrap();
        m2.import_weights(&w).unwrap();
        let x = Tensor::full([3, 2], 0.4f32);
        assert_eq!(
            m.forward(&x).unwrap().data(),
            m2.forward(&x).unwrap().data()
        );
        // Mismatched snapshot rejected.
        let bad = vec![vec![0.0f32; 3]];
        assert!(m2.import_weights(&bad).is_err());
    }
}
