//! The inference engine: lazy model loading with a per-path cache.
//!
//! §IV-B of the paper: "the backend loads the model file if it has not
//! already been loaded", then runs inference through Torch. This is that
//! backend. The global engine is shared by every approx region in the
//! process; loads are counted so tests (and the Fig. 6 harness) can verify
//! caching behaviour.

use crate::serialize::{load_model, SavedModel};
use crate::Result;
use hpacml_faults::fault_point;
use hpacml_faults::retry::RetryPolicy;
use hpacml_tensor::Tensor;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Model cache + inference entry point.
pub struct InferenceEngine {
    // BTreeMap, not HashMap: kernel-layer crates keep every data structure's
    // walk order deterministic (hpacml-lint `no-hash-collections`), and a
    // path-keyed model cache is lookup-dominated anyway.
    cache: RwLock<BTreeMap<PathBuf, Arc<SavedModel>>>,
    loads: AtomicU64,
    /// Transient-failure budget for the disk load (deterministic tick
    /// backoff; see `hpacml_faults::retry`).
    retry: RetryPolicy,
    retries: AtomicU64,
    giveups: AtomicU64,
}

impl InferenceEngine {
    pub fn new() -> Self {
        Self::with_retry(RetryPolicy::default())
    }

    /// An engine with an explicit retry budget for model loads.
    pub fn with_retry(retry: RetryPolicy) -> Self {
        InferenceEngine {
            cache: RwLock::new(BTreeMap::new()),
            loads: AtomicU64::new(0),
            retry,
            retries: AtomicU64::new(0),
            giveups: AtomicU64::new(0),
        }
    }

    /// The process-wide engine.
    pub fn global() -> &'static InferenceEngine {
        static GLOBAL: OnceLock<InferenceEngine> = OnceLock::new();
        GLOBAL.get_or_init(InferenceEngine::new)
    }

    /// Fetch a model, loading and caching it on first use.
    ///
    /// Concurrent callers racing on the same path observe exactly one load:
    /// the miss path re-checks under the write lock before touching disk.
    /// A load that fails transiently (I/O flake) is retried under the
    /// engine's [`RetryPolicy`]; only an exhausted budget surfaces the
    /// error ([`InferenceEngine::giveup_count`] counts those).
    pub fn load(&self, path: impl AsRef<Path>) -> Result<Arc<SavedModel>> {
        let path = path.as_ref();
        if let Some(m) = self.cache.read().get(path) {
            return Ok(Arc::clone(m));
        }
        let mut cache = self.cache.write();
        if let Some(m) = cache.get(path) {
            return Ok(Arc::clone(m));
        }
        let out = self.retry.run(|_| -> Result<SavedModel> {
            fault_point!("nn.load");
            load_model(path)
        });
        self.retries
            .fetch_add(u64::from(out.retries()), Ordering::Relaxed);
        if out.gave_up() {
            self.giveups.fetch_add(1, Ordering::Relaxed);
        }
        let loaded = Arc::new(out.result?);
        self.loads.fetch_add(1, Ordering::Relaxed);
        cache.insert(path.to_path_buf(), Arc::clone(&loaded));
        Ok(loaded)
    }

    /// Run end-to-end inference (normalization included) with the model at
    /// `path` on a batch `x`.
    pub fn infer(&self, path: impl AsRef<Path>, x: &Tensor) -> Result<Tensor> {
        self.load(path)?.infer(x)
    }

    /// Number of distinct model loads performed (cache misses).
    pub fn load_count(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Transient-failure retries performed by [`InferenceEngine::load`]
    /// (attempts beyond each first try).
    pub fn retry_count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Loads that exhausted the retry budget and surfaced an error.
    pub fn giveup_count(&self) -> u64 {
        self.giveups.load(Ordering::Relaxed)
    }

    /// Drop a cached model (e.g. after retraining in a workflow loop).
    pub fn evict(&self, path: impl AsRef<Path>) {
        self.cache.write().remove(path.as_ref());
    }

    /// Drop every cached model.
    pub fn clear(&self) {
        self.cache.write().clear();
    }
}

impl Default for InferenceEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serialize::save_model;
    use crate::spec::{Activation, ModelSpec};

    fn write_model(name: &str, seed: u64) -> PathBuf {
        let dir = std::env::temp_dir().join("hpacml-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let spec = ModelSpec::mlp(2, &[4], 1, Activation::Tanh, 0.0);
        let mut model = spec.build(seed).unwrap();
        save_model(&path, &spec, &mut model, None, None).unwrap();
        path
    }

    #[test]
    fn loads_once_and_caches() {
        let engine = InferenceEngine::new();
        let path = write_model("cached.hml", 1);
        let x = Tensor::full([3, 2], 0.1f32);
        let a = engine.infer(&path, &x).unwrap();
        let b = engine.infer(&path, &x).unwrap();
        assert_eq!(a.data(), b.data());
        assert_eq!(engine.load_count(), 1);
        engine.evict(&path);
        let _ = engine.infer(&path, &x).unwrap();
        assert_eq!(engine.load_count(), 2);
    }

    #[test]
    fn distinct_paths_are_distinct_models() {
        let engine = InferenceEngine::new();
        let p1 = write_model("m1.hml", 1);
        let p2 = write_model("m2.hml", 2);
        let x = Tensor::full([1, 2], 0.7f32);
        let y1 = engine.infer(&p1, &x).unwrap();
        let y2 = engine.infer(&p2, &x).unwrap();
        assert_ne!(y1.data(), y2.data());
        assert_eq!(engine.load_count(), 2);
        engine.clear();
        let _ = engine.infer(&p1, &x).unwrap();
        assert_eq!(engine.load_count(), 3);
    }

    #[test]
    fn missing_file_is_an_error() {
        let engine = InferenceEngine::new();
        assert!(engine.load("/definitely/not/here.hml").is_err());
    }

    #[test]
    fn global_engine_is_singleton() {
        let a = InferenceEngine::global() as *const _;
        let b = InferenceEngine::global() as *const _;
        assert_eq!(a, b);
    }
}
