//! Layers with hand-derived backward passes.
//!
//! Each layer offers two forward entry points: a pure `forward` used by the
//! inference engine (no mutation, shareable across threads) and a caching
//! `forward_train` used by the training loop, whose cached activations feed
//! `backward`.

use crate::{NnError, Result};
use hpacml_tensor::gemm::{self, Act, Epilogue, PackedA, PackedB};
use hpacml_tensor::ops::{self, Conv2dGeom};
use hpacml_tensor::quant::{self, Precision, QPackedB};
use hpacml_tensor::Tensor;
use rand::rngs::SmallRng;
use rand::Rng;

/// A trainable tensor together with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.dims().to_vec());
        Param { value, grad }
    }

    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// A differentiable network layer.
pub trait Layer: Send + Sync {
    fn name(&self) -> &'static str;

    /// Pure forward pass (inference). Must not mutate the layer.
    fn forward(&self, x: &Tensor) -> Result<Tensor>;

    /// Pure forward pass writing into a caller-owned output tensor (resized
    /// in place). Built-in layers override this to be allocation-free once
    /// `out` has capacity — the contract the zero-alloc inference workspace
    /// relies on. The default falls back to [`Layer::forward`] + move.
    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        *out = self.forward(x)?;
        Ok(())
    }

    /// Output dims (batch-inclusive) for a given input dims, without running
    /// the layer. Default: shape-preserving (correct for activations and
    /// dropout; shape-changing layers override).
    fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>> {
        Ok(in_dims.to_vec())
    }

    /// Caching forward pass (training). Default: same as `forward`.
    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.forward(x)
    }

    /// Backward pass: gradient w.r.t. the layer input, accumulating parameter
    /// gradients. Requires a preceding `forward_train`.
    fn backward(&mut self, dy: &Tensor) -> Result<Tensor>;

    /// Visit every trainable parameter (deterministic order).
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Number of scalar parameters.
    fn param_count(&self) -> usize {
        0
    }

    // --- inference-compilation hooks (see `crate::fuse`) -------------------

    /// Is this layer the identity at inference time (Dropout)? The compile
    /// pass removes such layers, deleting a full copy sweep per forward.
    fn inference_identity(&self) -> bool {
        false
    }

    /// If this layer is a pure elementwise activation the GEMM epilogue can
    /// fuse (`ReLU`/`Tanh`/`Sigmoid`), say which.
    fn as_activation(&self) -> Option<Act> {
        None
    }

    /// Offer this layer the activation that follows it, to fold into its own
    /// fused epilogue. Returns `true` if absorbed — the compile pass then
    /// removes the activation layer. Fused layers must produce **bit-equal**
    /// outputs to the unfused pair; only inference-side state may change.
    fn fuse_activation(&mut self, _act: Act) -> bool {
        false
    }

    /// Pre-pack immutable weights into the panel layout the steady-state
    /// inference kernels read (once, at model load). Returns `true` if
    /// anything was packed.
    fn prepack(&mut self) -> bool {
        false
    }

    /// `(a_pack_elems, b_pack_elems, col_elems)` of per-thread GEMM scratch
    /// one forward pass at `in_dims` (batch included) may use — lets
    /// workspaces pre-size the scratch (on every pool thread, via
    /// `hpacml_par::broadcast`) so even a session's first invocation
    /// allocates nothing. `a` covers on-the-fly conv weight packs, `b`
    /// uncompiled `Linear` weight panels, `col` im2col columns.
    fn scratch_hint(&self, _in_dims: &[usize]) -> (usize, usize, usize) {
        (0, 0, 0)
    }

    /// Pure forward pass at a serving precision. Layers that carry
    /// reduced-precision weight packs (see [`Layer::quantize`]) route to
    /// their quantized kernel; everything else — and every layer at
    /// `F32` — falls back to [`Layer::forward_into`]. A layer asked for a
    /// precision it has no pack for serves the next finer one it does
    /// have (int8 → bf16 → f32), so a mixed-precision model is always
    /// well-defined at every ladder rung.
    fn forward_into_at(&self, x: &Tensor, out: &mut Tensor, _prec: Precision) -> Result<()> {
        self.forward_into(x, out)
    }

    /// Build reduced-precision weight packs so the layer can serve at
    /// `target` — and at every finer rung of the demotion ladder up to
    /// f32, since the online-validation controller may demote at any
    /// time. Returns `true` if anything was quantized. `F32` is a no-op
    /// (the f32 panels from [`Layer::prepack`] are that rung).
    fn quantize(&mut self, _target: Precision) -> bool {
        false
    }
}

fn missing_cache(layer: &'static str) -> NnError {
    NnError::Train(format!("{layer}: backward called without forward_train"))
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Fully connected layer: `y = act(x·Wᵀ + b)`, weights stored `[out, in]`.
///
/// Bias — and, once the inference compile pass has fused a following
/// activation into this layer, the activation too — is applied in the GEMM
/// epilogue while each output tile is register-hot. Compiled models also
/// carry the weights pre-packed into [`PackedB`] panels so steady-state
/// forwards never repack.
pub struct Linear {
    pub w: Param,
    pub b: Param,
    /// Panel-packed weights (compile pass; inference only).
    packed: Option<PackedB<f32>>,
    /// Reduced-precision weight panels (quantize pass; inference only).
    /// Both rungs below f32 are kept so the validation-driven demotion
    /// ladder (int8 → bf16 → f32) can move without repacking.
    q_bf16: Option<QPackedB>,
    q_int8: Option<QPackedB>,
    /// Activation fused into the epilogue (compile pass; inference only).
    act: Option<Act>,
    cache_x: Option<Tensor>,
}

impl Linear {
    pub fn new(in_features: usize, out_features: usize, rng: &mut SmallRng) -> Self {
        let w = crate::init::kaiming_uniform(rng, in_features, out_features * in_features);
        let b = crate::init::bias_uniform(rng, in_features, out_features);
        Linear {
            w: Param::new(Tensor::from_vec(w, [out_features, in_features]).expect("init size")),
            b: Param::new(Tensor::from_vec(b, [out_features]).expect("init size")),
            packed: None,
            q_bf16: None,
            q_int8: None,
            act: None,
            cache_x: None,
        }
    }

    pub fn from_params(w: Tensor, b: Tensor) -> Self {
        Linear {
            w: Param::new(w),
            b: Param::new(b),
            packed: None,
            q_bf16: None,
            q_int8: None,
            act: None,
            cache_x: None,
        }
    }

    pub fn in_features(&self) -> usize {
        self.w.value.dims()[1]
    }

    pub fn out_features(&self) -> usize {
        self.w.value.dims()[0]
    }

    /// The activation fused into this layer's epilogue, if any.
    pub fn fused_act(&self) -> Option<Act> {
        self.act
    }

    /// Are the weights pre-packed for the steady-state kernel?
    pub fn is_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// Does this layer carry a reduced-precision pack for `prec`?
    /// (`F32` asks about the plain packed panels.)
    pub fn has_precision(&self, prec: Precision) -> bool {
        match prec {
            Precision::F32 => self.packed.is_some(),
            Precision::Bf16 => self.q_bf16.is_some(),
            Precision::Int8 => self.q_int8.is_some(),
        }
    }

    /// The quantized pack serving requests at `prec`, honoring the
    /// fallthrough rule (a missing int8 pack serves bf16; a missing bf16
    /// pack serves f32 — i.e. `None`).
    fn qpack_for(&self, prec: Precision) -> Option<&QPackedB> {
        match prec {
            Precision::Int8 => self.q_int8.as_ref().or(self.q_bf16.as_ref()),
            Precision::Bf16 => self.q_bf16.as_ref(),
            Precision::F32 => None,
        }
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut y = Tensor::default();
        self.forward_into(x, &mut y)?;
        Ok(y)
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        let epi = Epilogue::col_bias(self.b.value.data()).with_act(self.act);
        match &self.packed {
            Some(p) => gemm::matmul_transb_packed_into(x, p, epi, out)?,
            None => ops::matmul_transb_into(x, &self.w.value, out, epi)?,
        }
        Ok(())
    }

    fn forward_into_at(&self, x: &Tensor, out: &mut Tensor, prec: Precision) -> Result<()> {
        match self.qpack_for(prec) {
            Some(q) => {
                let epi = Epilogue::col_bias(self.b.value.data()).with_act(self.act);
                quant::matmul_transb_qpacked_into(x, q, epi, out)?;
                Ok(())
            }
            None => self.forward_into(x, out),
        }
    }

    fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>> {
        if in_dims.len() != 2 || in_dims[1] != self.in_features() {
            return Err(NnError::BadSpec(format!(
                "linear({}→{}) fed dims {in_dims:?}",
                self.in_features(),
                self.out_features()
            )));
        }
        Ok(vec![in_dims[0], self.out_features()])
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        if self.act.is_some() {
            // The following activation layer was removed by the fusion pass;
            // backward would silently skip its gradient. Compiled models are
            // inference-only — rebuild from the spec to train.
            return Err(NnError::Train(
                "linear: layer was compiled for inference (fused activation); \
                 rebuild the model from its spec to train"
                    .into(),
            ));
        }
        self.cache_x = Some(x.clone());
        self.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_x
            .as_ref()
            .ok_or_else(|| missing_cache("linear"))?;
        // dW[out, in] += dyᵀ[out, N] · x[N, in]
        let dw = ops::matmul_transa(dy, x)?;
        for (g, d) in self.w.grad.data_mut().iter_mut().zip(dw.data()) {
            *g += *d;
        }
        // db[out] += column sums of dy.
        let out = self.out_features();
        for row in dy.data().chunks_exact(out) {
            for (g, d) in self.b.grad.data_mut().iter_mut().zip(row) {
                *g += *d;
            }
        }
        // dx[N, in] = dy[N, out] · W[out, in]
        Ok(ops::matmul(dy, &self.w.value)?)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
        // Callers may have mutated the weights through the visit
        // (`import_weights`, snapshot restores); refresh the panels so a
        // compiled layer never reads stale packs — and never silently loses
        // its packed steady state to a read-only visit like
        // `export_weights`. Training loops visit every step, but compiled
        // layers refuse training, so this repack only runs on occasional
        // administrative visits.
        if self.packed.is_some() {
            self.prepack();
        }
        // Same stale-pack protection for the quantized rungs.
        if self.q_int8.is_some() {
            self.quantize(Precision::Int8);
        } else if self.q_bf16.is_some() {
            self.quantize(Precision::Bf16);
        }
    }

    fn param_count(&self) -> usize {
        self.w.value.numel() + self.b.value.numel()
    }

    fn fuse_activation(&mut self, act: Act) -> bool {
        // One fused activation per layer; a second one must stay a layer.
        if self.act.is_some() {
            return false;
        }
        self.act = Some(act);
        true
    }

    fn prepack(&mut self) -> bool {
        self.packed = Some(PackedB::from_transb(&self.w.value).expect("weights are rank 2"));
        true
    }

    fn quantize(&mut self, target: Precision) -> bool {
        if target == Precision::F32 {
            return false;
        }
        // Build every rung from `target` up: the validation controller
        // may demote int8 → bf16 → f32 at runtime, and each hop must be
        // a pointer swap, not a repack. The f32 rung is the plain packed
        // panels — ensure they exist so demotion lands on the fast path.
        self.q_bf16 = Some(
            QPackedB::from_transb(&self.w.value, Precision::Bf16).expect("weights are rank 2"),
        );
        if target == Precision::Int8 {
            self.q_int8 = Some(
                QPackedB::from_transb(&self.w.value, Precision::Int8).expect("weights are rank 2"),
            );
        } else {
            // A bf16-target model must not keep serving a coarser rung.
            self.q_int8 = None;
        }
        if self.packed.is_none() {
            self.prepack();
        }
        true
    }

    fn scratch_hint(&self, _in_dims: &[usize]) -> (usize, usize, usize) {
        if self.packed.is_some() {
            (0, 0, 0) // steady state never repacks
        } else {
            (
                0,
                PackedB::<f32>::packed_elems(self.in_features(), self.out_features()),
                0,
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Activations
// ---------------------------------------------------------------------------

/// Rectified linear unit.
#[derive(Default)]
pub struct ReLU {
    cache_x: Option<Tensor>,
}

impl Layer for ReLU {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.map(|v| v.max(0.0)))
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        x.map_into(out, |v| v.max(0.0));
        Ok(())
    }

    fn as_activation(&self) -> Option<Act> {
        Some(Act::Relu)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.cache_x = Some(x.clone());
        self.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let x = self.cache_x.as_ref().ok_or_else(|| missing_cache("relu"))?;
        let mut dx = dy.clone();
        for (d, xv) in dx.data_mut().iter_mut().zip(x.data()) {
            if *xv <= 0.0 {
                *d = 0.0;
            }
        }
        Ok(dx)
    }
}

/// Hyperbolic tangent. Uses the same vectorizable `tanh` the fused GEMM
/// epilogue applies ([`hpacml_tensor::Scalar::tanh_activation`]), so a
/// fused `Linear→Tanh` pair and this standalone layer are bit-identical.
#[derive(Default)]
pub struct Tanh {
    cache_y: Option<Tensor>,
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.map(hpacml_tensor::Scalar::tanh_activation))
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        x.map_into(out, hpacml_tensor::Scalar::tanh_activation);
        Ok(())
    }

    fn as_activation(&self) -> Option<Act> {
        Some(Act::Tanh)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = self.forward(x)?;
        self.cache_y = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let y = self.cache_y.as_ref().ok_or_else(|| missing_cache("tanh"))?;
        let mut dx = dy.clone();
        for (d, yv) in dx.data_mut().iter_mut().zip(y.data()) {
            *d *= 1.0 - yv * yv;
        }
        Ok(dx)
    }
}

/// Logistic sigmoid.
#[derive(Default)]
pub struct Sigmoid {
    cache_y: Option<Tensor>,
}

impl Layer for Sigmoid {
    fn name(&self) -> &'static str {
        "sigmoid"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.map(|v| 1.0 / (1.0 + (-v).exp())))
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        x.map_into(out, |v| 1.0 / (1.0 + (-v).exp()));
        Ok(())
    }

    fn as_activation(&self) -> Option<Act> {
        Some(Act::Sigmoid)
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let y = self.forward(x)?;
        self.cache_y = Some(y.clone());
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let y = self
            .cache_y
            .as_ref()
            .ok_or_else(|| missing_cache("sigmoid"))?;
        let mut dx = dy.clone();
        for (d, yv) in dx.data_mut().iter_mut().zip(y.data()) {
            *d *= yv * (1.0 - yv);
        }
        Ok(dx)
    }
}

// ---------------------------------------------------------------------------
// Dropout
// ---------------------------------------------------------------------------

/// Inverted dropout: active only in training; identity at inference.
pub struct Dropout {
    pub p: f32,
    rng: SmallRng,
    cache_mask: Option<Vec<f32>>,
}

impl Dropout {
    pub fn new(p: f32, seed: u64) -> Self {
        Dropout {
            p: p.clamp(0.0, 0.95),
            rng: crate::init::rng(seed),
            cache_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &'static str {
        "dropout"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(x.clone())
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        x.copy_into(out); // inference-time dropout is the identity
        Ok(())
    }

    fn inference_identity(&self) -> bool {
        true
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        if self.p == 0.0 {
            self.cache_mask = None;
            return Ok(x.clone());
        }
        let keep = 1.0 - self.p;
        let mask: Vec<f32> = (0..x.numel())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mut y = x.clone();
        for (v, m) in y.data_mut().iter_mut().zip(&mask) {
            *v *= m;
        }
        self.cache_mask = Some(mask);
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        match &self.cache_mask {
            None => Ok(dy.clone()),
            Some(mask) => {
                let mut dx = dy.clone();
                for (d, m) in dx.data_mut().iter_mut().zip(mask) {
                    *d *= m;
                }
                Ok(dx)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Flatten
// ---------------------------------------------------------------------------

/// Collapse `[N, ...]` to `[N, prod(...)]`.
#[derive(Default)]
pub struct Flatten {
    cache_shape: Option<Vec<usize>>,
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        Ok(x.clone().reshape([n, rest])?)
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        let n = x.dims()[0];
        let rest: usize = x.dims()[1..].iter().product();
        x.copy_into(out);
        out.reshape_in_place(&[n, rest])?;
        Ok(())
    }

    fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>> {
        if in_dims.is_empty() {
            return Err(NnError::BadSpec("flatten fed a scalar".into()));
        }
        Ok(vec![in_dims[0], in_dims[1..].iter().product()])
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        self.cache_shape = Some(x.dims().to_vec());
        self.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let shape = self
            .cache_shape
            .as_ref()
            .ok_or_else(|| missing_cache("flatten"))?;
        Ok(dy.clone().reshape(shape.clone())?)
    }
}

// ---------------------------------------------------------------------------
// Conv2d
// ---------------------------------------------------------------------------

/// 2-D convolution over `[N, C, H, W]`.
///
/// Like [`Linear`], a compiled model carries the weights pre-packed (the
/// `[filters, c*kh*kw]` GEMM `A` operand) and may have a following
/// activation fused into the convolution's epilogue.
pub struct Conv2d {
    pub w: Param,
    pub b: Param,
    pub geom: Conv2dGeom,
    /// Pre-packed weight panels (compile pass; inference only).
    packed: Option<PackedA<f32>>,
    /// Activation fused into the epilogue (compile pass; inference only).
    act: Option<Act>,
    cache_x: Option<Tensor>,
}

impl Conv2d {
    pub fn new(in_ch: usize, out_ch: usize, geom: Conv2dGeom, rng: &mut SmallRng) -> Self {
        let (kh, kw) = geom.kernel;
        let fan_in = in_ch * kh * kw;
        let w = crate::init::kaiming_uniform(rng, fan_in, out_ch * fan_in);
        let b = crate::init::bias_uniform(rng, fan_in, out_ch);
        Conv2d {
            w: Param::new(Tensor::from_vec(w, [out_ch, in_ch, kh, kw]).expect("init size")),
            b: Param::new(Tensor::from_vec(b, [out_ch]).expect("init size")),
            geom,
            packed: None,
            act: None,
            cache_x: None,
        }
    }

    pub fn from_params(w: Tensor, b: Tensor, geom: Conv2dGeom) -> Self {
        Conv2d {
            w: Param::new(w),
            b: Param::new(b),
            geom,
            packed: None,
            act: None,
            cache_x: None,
        }
    }

    fn filters(&self) -> usize {
        self.w.value.dims()[0]
    }

    fn taps(&self) -> usize {
        self.w.value.numel() / self.filters().max(1)
    }

    /// The activation fused into this layer's epilogue, if any.
    pub fn fused_act(&self) -> Option<Act> {
        self.act
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        let mut y = Tensor::default();
        self.forward_into(x, &mut y)?;
        Ok(y)
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        ops::conv2d_fused_into(
            x,
            &self.w.value,
            self.packed.as_ref(),
            self.b.value.data(),
            self.geom,
            self.act,
            out,
        )?;
        Ok(())
    }

    fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>> {
        if in_dims.len() != 4 {
            return Err(NnError::BadSpec(format!("conv2d fed dims {in_dims:?}")));
        }
        let (oh, ow) = self.geom.out_hw(in_dims[2], in_dims[3]);
        Ok(vec![in_dims[0], self.w.value.dims()[0], oh, ow])
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        if self.act.is_some() {
            // See Linear::forward_train — compiled models are inference-only.
            return Err(NnError::Train(
                "conv2d: layer was compiled for inference (fused activation); \
                 rebuild the model from its spec to train"
                    .into(),
            ));
        }
        self.cache_x = Some(x.clone());
        self.forward(x)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_x
            .as_ref()
            .ok_or_else(|| missing_cache("conv2d"))?;
        let (dx, dw, db) = ops::conv2d_backward(x, &self.w.value, dy, self.geom)?;
        for (g, d) in self.w.grad.data_mut().iter_mut().zip(dw.data()) {
            *g += *d;
        }
        for (g, d) in self.b.grad.data_mut().iter_mut().zip(&db) {
            *g += *d;
        }
        Ok(dx)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
        // See Linear::visit_params: refresh rather than drop, so packs are
        // never stale and never silently lost to a read-only visit.
        if self.packed.is_some() {
            self.prepack();
        }
    }

    fn param_count(&self) -> usize {
        self.w.value.numel() + self.b.value.numel()
    }

    fn fuse_activation(&mut self, act: Act) -> bool {
        if self.act.is_some() {
            return false;
        }
        self.act = Some(act);
        true
    }

    fn prepack(&mut self) -> bool {
        self.packed = Some(PackedA::from_rows(
            self.w.value.data(),
            self.filters(),
            self.taps(),
        ));
        true
    }

    fn scratch_hint(&self, in_dims: &[usize]) -> (usize, usize, usize) {
        if in_dims.len() != 4 {
            return (0, 0, 0);
        }
        let (oh, ow) = self.geom.out_hw(in_dims[2], in_dims[3]);
        let l = oh * ow;
        let ckk = self.taps();
        // The GEMM route's inner-parallel branch packs an uncompiled weight
        // into the per-thread A scratch once per forward.
        let worthwhile = ops::conv_gemm_worthwhile(self.filters(), ckk, l);
        let a = if worthwhile && self.packed.is_none() {
            self.filters() * ckk
        } else {
            0
        };
        // The im2col column buffer is per-sample; both the GEMM route and
        // the strided fallback stage through it.
        if worthwhile || self.geom.stride != (1, 1) {
            (a, 0, ckk * l)
        } else {
            (0, 0, 0)
        }
    }
}

// ---------------------------------------------------------------------------
// MaxPool2d
// ---------------------------------------------------------------------------

/// 2-D max pooling over `[N, C, H, W]`.
pub struct MaxPool2d {
    pub geom: Conv2dGeom,
    cache: Option<(Vec<u32>, Vec<usize>)>,
}

impl MaxPool2d {
    pub fn new(geom: Conv2dGeom) -> Self {
        MaxPool2d { geom, cache: None }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&self, x: &Tensor) -> Result<Tensor> {
        Ok(ops::maxpool2d(x, self.geom)?.0)
    }

    fn forward_into(&self, x: &Tensor, out: &mut Tensor) -> Result<()> {
        ops::maxpool2d_into(x, self.geom, out)?;
        Ok(())
    }

    fn out_dims(&self, in_dims: &[usize]) -> Result<Vec<usize>> {
        if in_dims.len() != 4 {
            return Err(NnError::BadSpec(format!("maxpool2d fed dims {in_dims:?}")));
        }
        let (oh, ow) = self.geom.out_hw(in_dims[2], in_dims[3]);
        Ok(vec![in_dims[0], in_dims[1], oh, ow])
    }

    fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let (y, arg) = ops::maxpool2d(x, self.geom)?;
        self.cache = Some((arg, x.dims().to_vec()));
        Ok(y)
    }

    fn backward(&mut self, dy: &Tensor) -> Result<Tensor> {
        let (arg, in_shape) = self
            .cache
            .as_ref()
            .ok_or_else(|| missing_cache("maxpool2d"))?;
        Ok(ops::maxpool2d_backward(dy, arg, in_shape)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;

    fn fd_check_input<L: Layer>(layer: &mut L, x: &Tensor, tol: f64) {
        // Loss = sum of outputs; analytic dx vs central differences.
        let y = layer.forward_train(x).unwrap();
        let dy = Tensor::full(y.dims().to_vec(), 1.0f32);
        let dx = layer.backward(&dy).unwrap();
        let eps = 1e-3f32;
        for flat in (0..x.numel()).step_by((x.numel() / 7).max(1)) {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fp = layer.forward(&xp).unwrap().sum();
            let fm = layer.forward(&xm).unwrap().sum();
            let fd = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (fd - dx.data()[flat] as f64).abs() < tol,
                "input grad at {flat}: fd={fd}, analytic={}",
                dx.data()[flat]
            );
        }
    }

    fn sample_x(n: usize, f: usize, seed: u64) -> Tensor {
        let mut r = rng(seed);
        Tensor::from_shape_fn([n, f], |_| r.gen_range(-1.0f32..1.0))
    }

    #[test]
    fn linear_shapes_and_param_count() {
        let mut l = Linear::new(8, 3, &mut rng(1));
        let y = l.forward(&sample_x(5, 8, 2)).unwrap();
        assert_eq!(y.dims(), &[5, 3]);
        assert_eq!(l.param_count(), 8 * 3 + 3);
        let mut n = 0;
        l.visit_params(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn linear_input_gradient_matches_fd() {
        let mut l = Linear::new(6, 4, &mut rng(3));
        fd_check_input(&mut l, &sample_x(3, 6, 4), 1e-2);
    }

    #[test]
    fn linear_weight_gradient_matches_fd() {
        let mut l = Linear::new(4, 2, &mut rng(5));
        let x = sample_x(3, 4, 6);
        let y = l.forward_train(&x).unwrap();
        let dy = Tensor::full(y.dims().to_vec(), 1.0f32);
        l.backward(&dy).unwrap();
        let eps = 1e-3f32;
        for flat in 0..l.w.value.numel() {
            let orig = l.w.value.data()[flat];
            l.w.value.data_mut()[flat] = orig + eps;
            let fp = l.forward(&x).unwrap().sum();
            l.w.value.data_mut()[flat] = orig - eps;
            let fm = l.forward(&x).unwrap().sum();
            l.w.value.data_mut()[flat] = orig;
            let fd = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (fd - l.w.grad.data()[flat] as f64).abs() < 1e-2,
                "w[{flat}]"
            );
        }
        // Bias gradient of a sum-loss is the batch size.
        for g in l.b.grad.data() {
            assert!((*g - 3.0).abs() < 1e-4);
        }
    }

    #[test]
    fn activations_match_fd() {
        fd_check_input(&mut ReLU::default(), &sample_x(4, 5, 7), 2e-2);
        fd_check_input(&mut Tanh::default(), &sample_x(4, 5, 8), 1e-2);
        fd_check_input(&mut Sigmoid::default(), &sample_x(4, 5, 9), 1e-2);
    }

    #[test]
    fn relu_clamps_negative() {
        let x = Tensor::from_vec(vec![-1.0f32, 0.0, 2.0], [1, 3]).unwrap();
        let y = ReLU::default().forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn dropout_train_scales_and_infer_is_identity() {
        let x = Tensor::full([1, 10_000], 1.0f32);
        let mut d = Dropout::new(0.4, 42);
        let y = d.forward_train(&x).unwrap();
        // Kept entries are scaled by 1/keep; mean stays ~1.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        let zeros = y.data().iter().filter(|v| **v == 0.0).count();
        assert!((zeros as f64 / 10_000.0 - 0.4).abs() < 0.05);
        // Inference path: identity.
        let yi = d.forward(&x).unwrap();
        assert_eq!(yi.data(), x.data());
        // Backward applies the same mask.
        let dx = d.backward(&Tensor::full([1, 10_000], 1.0f32)).unwrap();
        assert_eq!(dx.data().iter().filter(|v| **v == 0.0).count(), zeros);
    }

    #[test]
    fn dropout_p_zero_is_identity_in_train() {
        let x = sample_x(2, 8, 10);
        let mut d = Dropout::new(0.0, 1);
        assert_eq!(d.forward_train(&x).unwrap().data(), x.data());
    }

    #[test]
    fn flatten_roundtrip() {
        let x = Tensor::<f32>::from_shape_fn([2, 3, 4], |ix| (ix[0] + ix[1] + ix[2]) as f32);
        let mut f = Flatten::default();
        let y = f.forward_train(&x).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let back = f.backward(&y).unwrap();
        assert_eq!(back.dims(), &[2, 3, 4]);
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn conv2d_layer_input_gradient_matches_fd() {
        let mut c = Conv2d::new(2, 3, Conv2dGeom::square(3, 1, 1), &mut rng(11));
        let mut r = rng(12);
        let x = Tensor::from_shape_fn([1, 2, 5, 5], |_| r.gen_range(-1.0f32..1.0));
        fd_check_input(&mut c, &x, 3e-2);
        assert_eq!(c.param_count(), 3 * 2 * 9 + 3);
    }

    #[test]
    fn maxpool_layer_backward_routes_gradient() {
        let mut r = rng(13);
        let x = Tensor::from_shape_fn([1, 1, 4, 4], |_| r.gen_range(-1.0f32..1.0));
        let mut p = MaxPool2d::new(Conv2dGeom::square(2, 2, 0));
        let y = p.forward_train(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        let dx = p.backward(&Tensor::full([1, 1, 2, 2], 1.0f32)).unwrap();
        assert_eq!(dx.sum(), 4.0);
    }

    #[test]
    fn backward_without_forward_train_errors() {
        let mut l = Linear::new(2, 2, &mut rng(14));
        let dy = Tensor::zeros([1, 2]);
        assert!(matches!(l.backward(&dy), Err(NnError::Train(_))));
    }
}
