//! Neural-network engine for HPAC-ML surrogates.
//!
//! The paper uses Torch (the C++ PyTorch API) as the inference backend and
//! trains models offline in Python. No Torch binding exists in the offline
//! crate set, so this crate implements the full contract the HPAC-ML runtime
//! and evaluation need:
//!
//! * **inference** — load an opaque model file and run batched forward passes
//!   ([`engine::InferenceEngine`] with per-path model caching, mirroring the
//!   runtime's lazy model loading described in §IV-B);
//! * **training** — layers with hand-derived backward passes, SGD/Adam(W)
//!   optimizers and a mini-batch training loop, so the repo can actually
//!   train the thousands of models the evaluation campaign requires;
//! * **architecture-as-data** — [`spec::ModelSpec`] describes a network as a
//!   value (with static shape inference), which is what the Bayesian
//!   neural-architecture search manipulates;
//! * **model files** — the `.hml` format ([`serialize`]) plays the role of
//!   TorchScript: a language-agnostic on-disk model (spec + weights +
//!   normalization) loaded by path at application run time.

pub mod data;
pub mod engine;
pub mod fuse;
pub mod init;
pub mod layer;
pub mod loss;
pub mod model;
pub mod optim;
pub mod serialize;
pub mod spec;
pub mod train;
pub mod workspace;

pub use data::{InMemoryDataset, Normalizer};
pub use engine::InferenceEngine;
pub use fuse::{compile_for_inference, compile_for_inference_with, CompileInfo, PrecisionPolicy};
pub use layer::Layer;
pub use model::Sequential;
pub use serialize::SavedModel;
pub use spec::{LayerSpec, ModelSpec};
pub use train::{train, History, TrainConfig};
pub use workspace::{ForwardWorkspace, InferWorkspace};

use hpacml_tensor::TensorError;

/// Errors raised by the NN engine.
#[derive(Debug)]
pub enum NnError {
    /// Shape/arity problem surfaced by the tensor layer.
    Tensor(TensorError),
    /// An architecture spec failed shape inference or validation.
    BadSpec(String),
    /// Model (de)serialization failure.
    Serialize(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Training diverged or was misconfigured.
    Train(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadSpec(s) => write!(f, "bad model spec: {s}"),
            NnError::Serialize(s) => write!(f, "model serialization: {s}"),
            NnError::Io(e) => write!(f, "io error: {e}"),
            NnError::Train(s) => write!(f, "training error: {s}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<hpacml_faults::InjectedFault> for NnError {
    fn from(f: hpacml_faults::InjectedFault) -> Self {
        NnError::Io(f.into())
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

impl From<std::io::Error> for NnError {
    fn from(e: std::io::Error) -> Self {
        NnError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
