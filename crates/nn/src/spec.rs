//! Architecture-as-data: model specifications with static shape inference.
//!
//! The nested Bayesian-optimization search (paper §V-C) proposes *model
//! architectures*; this module is the representation it manipulates. A
//! [`ModelSpec`] can be validated (shape inference through every layer),
//! sized (parameter count — the color axis of Figs. 7/8), built into a
//! trainable [`Sequential`], and serialized into `.hml` model files.

use crate::layer::{Conv2d, Dropout, Flatten, Layer, Linear, MaxPool2d, ReLU, Sigmoid, Tanh};
use crate::model::Sequential;
use crate::{NnError, Result};
use hpacml_tensor::ops::{conv_out_dim, Conv2dGeom};

/// Activation selector used in spec builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    ReLU,
    Tanh,
    Sigmoid,
}

/// One layer of a model architecture.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    Linear {
        in_features: usize,
        out_features: usize,
    },
    ReLU,
    Tanh,
    Sigmoid,
    Dropout {
        p: f32,
    },
    Flatten,
    Conv2d {
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    },
    MaxPool2d {
        kernel: usize,
        stride: usize,
    },
}

impl LayerSpec {
    /// Scalar parameter count of this layer.
    pub fn param_count(&self) -> usize {
        match self {
            LayerSpec::Linear {
                in_features,
                out_features,
            } => in_features * out_features + out_features,
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                ..
            } => out_ch * in_ch * kernel * kernel + out_ch,
            _ => 0,
        }
    }

    /// Output shape (batch dim excluded) for the given input shape, or an
    /// error describing the incompatibility.
    pub fn infer(&self, input: &[usize]) -> Result<Vec<usize>> {
        match self {
            LayerSpec::Linear {
                in_features,
                out_features,
            } => {
                if input.len() != 1 || input[0] != *in_features {
                    return Err(NnError::BadSpec(format!(
                        "linear({in_features}→{out_features}) fed shape {input:?}"
                    )));
                }
                Ok(vec![*out_features])
            }
            LayerSpec::ReLU | LayerSpec::Tanh | LayerSpec::Sigmoid | LayerSpec::Dropout { .. } => {
                Ok(input.to_vec())
            }
            LayerSpec::Flatten => Ok(vec![input.iter().product::<usize>().max(1)]),
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                stride,
                pad,
            } => {
                let [c, h, w] = three(input, "conv2d")?;
                if c != *in_ch {
                    return Err(NnError::BadSpec(format!(
                        "conv2d expects {in_ch} channels, input has {c}"
                    )));
                }
                let oh = conv_out_dim(h, *kernel, *stride, *pad);
                let ow = conv_out_dim(w, *kernel, *stride, *pad);
                if oh == 0 || ow == 0 {
                    return Err(NnError::BadSpec(format!(
                        "conv2d(k={kernel}, s={stride}, p={pad}) collapses {h}x{w} to {oh}x{ow}"
                    )));
                }
                Ok(vec![*out_ch, oh, ow])
            }
            LayerSpec::MaxPool2d { kernel, stride } => {
                let [c, h, w] = three(input, "maxpool2d")?;
                let oh = conv_out_dim(h, *kernel, *stride, 0);
                let ow = conv_out_dim(w, *kernel, *stride, 0);
                if oh == 0 || ow == 0 {
                    return Err(NnError::BadSpec(format!(
                        "maxpool2d(k={kernel}, s={stride}) collapses {h}x{w}"
                    )));
                }
                Ok(vec![c, oh, ow])
            }
        }
    }
}

fn three(input: &[usize], what: &str) -> Result<[usize; 3]> {
    if input.len() != 3 {
        return Err(NnError::BadSpec(format!(
            "{what} expects [C, H, W] input, got {input:?}"
        )));
    }
    Ok([input[0], input[1], input[2]])
}

/// A complete architecture: per-sample input shape plus a layer stack.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Shape of one sample (no batch dimension), e.g. `[6]` or `[4, 32, 64]`.
    pub input_shape: Vec<usize>,
    pub layers: Vec<LayerSpec>,
}

impl ModelSpec {
    pub fn new(input_shape: Vec<usize>, layers: Vec<LayerSpec>) -> Self {
        ModelSpec {
            input_shape,
            layers,
        }
    }

    /// Convenience MLP builder: `input → hidden... → output` with the given
    /// activation after every hidden layer and optional dropout.
    pub fn mlp(
        input_dim: usize,
        hidden: &[usize],
        output_dim: usize,
        act: Activation,
        dropout: f32,
    ) -> Self {
        let mut layers = Vec::new();
        let mut prev = input_dim;
        for &h in hidden {
            layers.push(LayerSpec::Linear {
                in_features: prev,
                out_features: h,
            });
            layers.push(match act {
                Activation::ReLU => LayerSpec::ReLU,
                Activation::Tanh => LayerSpec::Tanh,
                Activation::Sigmoid => LayerSpec::Sigmoid,
            });
            if dropout > 0.0 {
                layers.push(LayerSpec::Dropout { p: dropout });
            }
            prev = h;
        }
        layers.push(LayerSpec::Linear {
            in_features: prev,
            out_features: output_dim,
        });
        ModelSpec::new(vec![input_dim], layers)
    }

    /// Shape inference through the whole stack; returns per-layer output
    /// shapes (batch dim excluded). Errors describe the first mismatch.
    pub fn infer_shapes(&self) -> Result<Vec<Vec<usize>>> {
        let mut shapes = Vec::with_capacity(self.layers.len());
        let mut cur = self.input_shape.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            cur = layer.infer(&cur).map_err(|e| match e {
                NnError::BadSpec(s) => NnError::BadSpec(format!("layer {i}: {s}")),
                other => other,
            })?;
            shapes.push(cur.clone());
        }
        Ok(shapes)
    }

    /// Output shape of one sample.
    pub fn output_shape(&self) -> Result<Vec<usize>> {
        Ok(self
            .infer_shapes()?
            .last()
            .cloned()
            .unwrap_or_else(|| self.input_shape.clone()))
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Validate and instantiate with fresh (seeded) weights.
    pub fn build(&self, seed: u64) -> Result<Sequential> {
        self.infer_shapes()?;
        let mut rng = crate::init::rng(seed);
        let mut layers: Vec<Box<dyn Layer>> = Vec::with_capacity(self.layers.len());
        for (i, spec) in self.layers.iter().enumerate() {
            layers.push(match spec {
                LayerSpec::Linear {
                    in_features,
                    out_features,
                } => Box::new(Linear::new(*in_features, *out_features, &mut rng)),
                LayerSpec::ReLU => Box::new(ReLU::default()),
                LayerSpec::Tanh => Box::new(Tanh::default()),
                LayerSpec::Sigmoid => Box::new(Sigmoid::default()),
                LayerSpec::Dropout { p } => {
                    Box::new(Dropout::new(*p, seed.wrapping_add(1 + i as u64)))
                }
                LayerSpec::Flatten => Box::new(Flatten::default()),
                LayerSpec::Conv2d {
                    in_ch,
                    out_ch,
                    kernel,
                    stride,
                    pad,
                } => Box::new(Conv2d::new(
                    *in_ch,
                    *out_ch,
                    Conv2dGeom::square(*kernel, *stride, *pad),
                    &mut rng,
                )),
                LayerSpec::MaxPool2d { kernel, stride } => {
                    Box::new(MaxPool2d::new(Conv2dGeom::square(*kernel, *stride, 0)))
                }
            });
        }
        Ok(Sequential::new(layers))
    }

    /// Human-readable one-line summary, e.g. `6 -> Linear(64) -> ReLU -> Linear(1)`.
    pub fn summary(&self) -> String {
        let mut s = format!("{:?}", self.input_shape);
        for l in &self.layers {
            s.push_str(" -> ");
            match l {
                LayerSpec::Linear { out_features, .. } => {
                    s.push_str(&format!("Linear({out_features})"))
                }
                LayerSpec::ReLU => s.push_str("ReLU"),
                LayerSpec::Tanh => s.push_str("Tanh"),
                LayerSpec::Sigmoid => s.push_str("Sigmoid"),
                LayerSpec::Dropout { p } => s.push_str(&format!("Dropout({p:.2})")),
                LayerSpec::Flatten => s.push_str("Flatten"),
                LayerSpec::Conv2d {
                    out_ch,
                    kernel,
                    stride,
                    pad,
                    ..
                } => s.push_str(&format!("Conv2d({out_ch}, k{kernel}, s{stride}, p{pad})")),
                LayerSpec::MaxPool2d { kernel, stride } => {
                    s.push_str(&format!("MaxPool2d(k{kernel}, s{stride})"))
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_builder_and_inference() {
        let spec = ModelSpec::mlp(6, &[64, 32], 1, Activation::ReLU, 0.1);
        let shapes = spec.infer_shapes().unwrap();
        assert_eq!(shapes.last().unwrap(), &vec![1]);
        assert_eq!(spec.output_shape().unwrap(), vec![1]);
        assert_eq!(
            spec.param_count(),
            (6 * 64 + 64) + (64 * 32 + 32) + (32 + 1)
        );
        let model = spec.build(1).unwrap();
        assert_eq!(model.param_count(), spec.param_count());
    }

    #[test]
    fn cnn_spec_shape_inference() {
        let spec = ModelSpec::new(
            vec![1, 28, 28],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 1,
                    out_ch: 4,
                    kernel: 5,
                    stride: 2,
                    pad: 2,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 4 * 7 * 7,
                    out_features: 2,
                },
            ],
        );
        let shapes = spec.infer_shapes().unwrap();
        assert_eq!(shapes[0], vec![4, 14, 14]);
        assert_eq!(shapes[2], vec![4, 7, 7]);
        assert_eq!(spec.output_shape().unwrap(), vec![2]);
        let model = spec.build(3).unwrap();
        let x = hpacml_tensor::Tensor::zeros([2, 1, 28, 28]);
        assert_eq!(model.forward(&x).unwrap().dims(), &[2, 2]);
    }

    #[test]
    fn bad_linear_width_is_rejected() {
        let spec = ModelSpec::new(
            vec![6],
            vec![
                LayerSpec::Linear {
                    in_features: 6,
                    out_features: 8,
                },
                LayerSpec::Linear {
                    in_features: 9,
                    out_features: 1,
                },
            ],
        );
        let err = spec.infer_shapes().unwrap_err();
        assert!(matches!(err, NnError::BadSpec(s) if s.contains("layer 1")));
    }

    #[test]
    fn collapsing_conv_is_rejected() {
        let spec = ModelSpec::new(
            vec![1, 4, 4],
            vec![LayerSpec::Conv2d {
                in_ch: 1,
                out_ch: 2,
                kernel: 8,
                stride: 1,
                pad: 0,
            }],
        );
        assert!(spec.infer_shapes().is_err());
        assert!(spec.build(0).is_err());
    }

    #[test]
    fn conv_on_flat_input_is_rejected() {
        let spec = ModelSpec::new(
            vec![16],
            vec![LayerSpec::Conv2d {
                in_ch: 1,
                out_ch: 2,
                kernel: 3,
                stride: 1,
                pad: 0,
            }],
        );
        assert!(spec.infer_shapes().is_err());
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let spec = ModelSpec::mlp(4, &[8], 2, Activation::Tanh, 0.0);
        let a = spec.build(7).unwrap();
        let b = spec.build(7).unwrap();
        let x = hpacml_tensor::Tensor::full([3, 4], 0.3f32);
        assert_eq!(a.forward(&x).unwrap().data(), b.forward(&x).unwrap().data());
    }

    #[test]
    fn summary_mentions_layers() {
        let spec = ModelSpec::mlp(4, &[8], 2, Activation::ReLU, 0.5);
        let s = spec.summary();
        assert!(s.contains("Linear(8)") && s.contains("ReLU") && s.contains("Dropout(0.50)"));
    }
}
