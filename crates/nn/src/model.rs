//! Sequential model container.

use crate::layer::{Layer, Param};
use crate::Result;
use hpacml_tensor::Tensor;

/// A stack of layers applied in order — the only topology the paper's search
/// spaces (Table IV) generate.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Sequential { layers }
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    pub fn layers_mut(&mut self) -> &mut Vec<Box<dyn Layer>> {
        &mut self.layers
    }

    /// Pure forward pass (inference).
    ///
    /// Routes through this thread's shared inference workspace: the
    /// per-layer activations ping-pong inside reusable arenas, so repeated
    /// calls allocate only the returned output tensor. Hot loops can hold a
    /// [`crate::workspace::ForwardWorkspace`] and use
    /// [`ForwardWorkspace::forward`](crate::workspace::ForwardWorkspace::forward)
    /// to eliminate that last allocation too.
    pub fn forward(&self, x: &Tensor) -> Result<Tensor> {
        crate::workspace::with_thread_workspace(|ws| Ok(ws.fw.forward(self, x)?.clone()))
    }

    /// Caching forward pass (training).
    pub fn forward_train(&mut self, x: &Tensor) -> Result<Tensor> {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward_train(&cur)?;
        }
        Ok(cur)
    }

    /// Backward pass from the loss gradient; accumulates parameter grads and
    /// returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, dloss: &Tensor) -> Result<Tensor> {
        let mut cur = dloss.clone();
        for layer in self.layers.iter_mut().rev() {
            cur = layer.backward(&cur)?;
        }
        Ok(cur)
    }

    /// Visit every parameter across layers in deterministic order.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Zero every parameter gradient.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total scalar parameter count — the "model size" axis of Figs. 7 and 8.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Layer names, for debugging and serialization sanity checks.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Snapshot every parameter tensor (deterministic order) — used for
    /// early-stopping restores and `.hml` serialization.
    pub fn export_weights(&mut self) -> Vec<Vec<f32>> {
        let mut out = Vec::new();
        self.visit_params(&mut |p| out.push(p.value.data().to_vec()));
        out
    }

    /// Restore parameters from an [`Sequential::export_weights`] snapshot.
    pub fn import_weights(&mut self, weights: &[Vec<f32>]) -> Result<()> {
        let mut idx = 0usize;
        let mut err: Option<String> = None;
        self.visit_params(&mut |p| {
            if err.is_some() {
                return;
            }
            match weights.get(idx) {
                Some(w) if w.len() == p.value.numel() => {
                    p.value.data_mut().copy_from_slice(w);
                }
                Some(w) => {
                    err = Some(format!(
                        "param {idx}: snapshot has {} values, layer expects {}",
                        w.len(),
                        p.value.numel()
                    ))
                }
                None => err = Some(format!("snapshot has only {} params", weights.len())),
            }
            idx += 1;
        });
        if err.is_none() && idx != weights.len() {
            err = Some(format!(
                "snapshot has {} params, model has {idx}",
                weights.len()
            ));
        }
        match err {
            Some(e) => Err(crate::NnError::Serialize(e)),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::layer::{Linear, ReLU, Tanh};
    use rand::Rng;

    fn mlp(seed: u64) -> Sequential {
        let mut r = rng(seed);
        Sequential::new(vec![
            Box::new(Linear::new(4, 8, &mut r)),
            Box::new(Tanh::default()),
            Box::new(Linear::new(8, 8, &mut r)),
            Box::new(ReLU::default()),
            Box::new(Linear::new(8, 2, &mut r)),
        ])
    }

    #[test]
    fn forward_shapes() {
        let m = mlp(1);
        let x = Tensor::zeros([7, 4]);
        assert_eq!(m.forward(&x).unwrap().dims(), &[7, 2]);
        assert_eq!(m.param_count(), (4 * 8 + 8) + (8 * 8 + 8) + (8 * 2 + 2));
        assert_eq!(
            m.layer_names(),
            vec!["linear", "tanh", "linear", "relu", "linear"]
        );
    }

    #[test]
    fn forward_and_forward_train_agree() {
        let mut m = mlp(2);
        let mut r = rng(3);
        let x = Tensor::from_shape_fn([5, 4], |_| r.gen_range(-1.0f32..1.0));
        let a = m.forward(&x).unwrap();
        let b = m.forward_train(&x).unwrap();
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn end_to_end_gradient_matches_fd() {
        let mut m = mlp(4);
        let mut r = rng(5);
        let x = Tensor::from_shape_fn([3, 4], |_| r.gen_range(-1.0f32..1.0));
        let y = m.forward_train(&x).unwrap();
        let dy = Tensor::full(y.dims().to_vec(), 1.0f32);
        m.zero_grad();
        let _ = m.forward_train(&x).unwrap();
        let dx = m.backward(&dy).unwrap();
        let eps = 1e-3f32;
        for flat in 0..x.numel() {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let fd = (m.forward(&xp).unwrap().sum() - m.forward(&xm).unwrap().sum())
                / (2.0 * eps as f64);
            assert!(
                (fd - dx.data()[flat] as f64).abs() < 3e-2,
                "dx[{flat}]: fd={fd} analytic={}",
                dx.data()[flat]
            );
        }
    }

    #[test]
    fn zero_grad_clears_accumulators() {
        let mut m = mlp(6);
        let x = Tensor::full([2, 4], 0.5f32);
        let y = m.forward_train(&x).unwrap();
        m.backward(&Tensor::full(y.dims().to_vec(), 1.0f32))
            .unwrap();
        let mut nonzero = 0;
        m.visit_params(&mut |p| {
            nonzero += p.grad.data().iter().filter(|g| **g != 0.0).count();
        });
        assert!(nonzero > 0);
        m.zero_grad();
        m.visit_params(&mut |p| {
            assert!(p.grad.data().iter().all(|g| *g == 0.0));
        });
    }
}
