//! Regression losses: value and gradient.

use crate::{NnError, Result};
use hpacml_tensor::Tensor;

/// Loss selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loss {
    /// Mean squared error — the training objective for all five benchmarks.
    Mse,
    /// Mean absolute error.
    Mae,
}

impl Loss {
    /// Loss value plus gradient w.r.t. `pred`.
    pub fn eval(self, pred: &Tensor, target: &Tensor) -> Result<(f64, Tensor)> {
        if pred.dims() != target.dims() {
            return Err(NnError::Train(format!(
                "loss: pred {:?} vs target {:?}",
                pred.dims(),
                target.dims()
            )));
        }
        let n = pred.numel().max(1) as f64;
        let mut grad = pred.clone();
        let mut total = 0.0f64;
        match self {
            Loss::Mse => {
                for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
                    let d = (*g - *t) as f64;
                    total += d * d;
                    *g = (2.0 * d / n) as f32;
                }
                Ok((total / n, grad))
            }
            Loss::Mae => {
                for (g, t) in grad.data_mut().iter_mut().zip(target.data()) {
                    let d = (*g - *t) as f64;
                    total += d.abs();
                    *g = (d.signum() / n) as f32;
                }
                Ok((total / n, grad))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_value_and_gradient() {
        let pred = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let target = Tensor::from_vec(vec![1.0f32, 1.0, 1.0, 1.0], [2, 2]).unwrap();
        let (v, g) = Loss::Mse.eval(&pred, &target).unwrap();
        assert!((v - (0.0 + 1.0 + 4.0 + 9.0) / 4.0).abs() < 1e-12);
        assert_eq!(g.data(), &[0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn mae_value_and_gradient() {
        let pred = Tensor::from_vec(vec![2.0f32, -2.0], [2]).unwrap();
        let target = Tensor::from_vec(vec![0.0f32, 0.0], [2]).unwrap();
        let (v, g) = Loss::Mae.eval(&pred, &target).unwrap();
        assert!((v - 2.0).abs() < 1e-12);
        assert_eq!(g.data(), &[0.5, -0.5]);
    }

    #[test]
    fn mse_gradient_matches_fd() {
        let pred = Tensor::from_vec(vec![0.3f32, -0.7, 1.2], [3]).unwrap();
        let target = Tensor::from_vec(vec![0.1f32, 0.4, -0.5], [3]).unwrap();
        let (_, g) = Loss::Mse.eval(&pred, &target).unwrap();
        let eps = 1e-3f32;
        for i in 0..3 {
            let mut pp = pred.clone();
            pp.data_mut()[i] += eps;
            let mut pm = pred.clone();
            pm.data_mut()[i] -= eps;
            let fd = (Loss::Mse.eval(&pp, &target).unwrap().0
                - Loss::Mse.eval(&pm, &target).unwrap().0)
                / (2.0 * eps as f64);
            assert!((fd - g.data()[i] as f64).abs() < 1e-3);
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = Tensor::<f32>::zeros([2, 2]);
        let b = Tensor::<f32>::zeros([4]);
        assert!(Loss::Mse.eval(&a, &b).is_err());
    }
}
