//! Zero-allocation inference workspaces.
//!
//! The steady state of a deployed surrogate is "the same network, the same
//! batch shape, millions of times". [`ForwardWorkspace`] owns a ping-pong
//! pair of activation tensors that are resized in place on every pass, so
//! after the first (warm-up) invocation a forward pass performs **no heap
//! allocation** in the activation path — each layer writes into the opposite
//! arena through [`crate::layer::Layer::forward_into`].
//!
//! [`InferWorkspace`] adds the normalization staging buffer a
//! [`SavedModel`](crate::serialize::SavedModel) needs for end-to-end
//! (raw-to-raw) inference. A process-wide per-thread instance backs the
//! allocating convenience APIs (`Sequential::forward`, `SavedModel::infer`)
//! so every caller benefits without holding a workspace themselves.

use crate::model::Sequential;
use crate::Result;
use hpacml_tensor::quant::Precision;
use hpacml_tensor::Tensor;
use std::cell::RefCell;

/// Ping-pong activation arena for pure forward passes.
#[derive(Default)]
pub struct ForwardWorkspace {
    ping: Tensor,
    pong: Tensor,
}

impl ForwardWorkspace {
    pub fn new() -> Self {
        Self::default()
    }

    /// Run `model` on `x`, returning a mutable reference to the output
    /// activation held inside the workspace. Steady-state allocation-free
    /// once both arenas have grown to the model's widest activation.
    pub fn forward<'a>(&'a mut self, model: &Sequential, x: &Tensor) -> Result<&'a mut Tensor> {
        self.forward_at(model, x, Precision::F32)
    }

    /// [`ForwardWorkspace::forward`] at a serving precision: layers with
    /// reduced-precision packs route through their quantized kernels;
    /// everything else (and `F32`) is the plain forward. Same arenas,
    /// same zero-allocation steady state.
    pub fn forward_at<'a>(
        &'a mut self,
        model: &Sequential,
        x: &Tensor,
        prec: Precision,
    ) -> Result<&'a mut Tensor> {
        let layers = model.layers();
        let Some(first) = layers.first() else {
            x.copy_into(&mut self.ping);
            return Ok(&mut self.ping);
        };
        // The first layer reads the caller's tensor directly — no staging
        // copy of the input batch on the hot path.
        first.forward_into_at(x, &mut self.ping, prec)?;
        let (mut cur, mut nxt) = (&mut self.ping, &mut self.pong);
        for layer in &layers[1..] {
            layer.forward_into_at(cur, nxt, prec)?;
            std::mem::swap(&mut cur, &mut nxt);
        }
        Ok(cur)
    }

    /// Capacity currently held by the two arenas, in elements — lets tests
    /// assert that repeated passes reuse storage instead of growing it.
    pub fn capacity_elems(&self) -> (usize, usize) {
        (self.ping.capacity(), self.pong.capacity())
    }

    /// Pre-size both activation arenas for `model` fed inputs of `in_dims`
    /// (batch dimension included), by walking the layers' static shape
    /// functions. After reserving for the *largest* batch a caller will use
    /// (e.g. a session's `max_batch`), forward passes at **any** smaller
    /// batch reuse the grown arenas — the zero-allocation guarantee of
    /// runtime-batched inference. Also pre-sizes the per-thread GEMM
    /// scratch (conv weight-pack blocks, weight panels for uncompiled
    /// `Linear`s, im2col columns) from the layers' scratch hints — on
    /// **every pool participant**, via `hpacml_par::broadcast`, so neither
    /// this thread's first forward nor a worker's first stolen sample
    /// allocates anything. Returns the widest activation element count, so
    /// callers that swap buffers with the arenas (the runtime's
    /// model-output hand-off) can size those to match.
    pub fn reserve(&mut self, model: &Sequential, in_dims: &[usize]) -> Result<usize> {
        let mut dims = in_dims.to_vec();
        let mut max_elems: usize = dims.iter().product();
        let mut max_rank = dims.len();
        let (mut a_elems, mut b_elems, mut col_elems) = (0usize, 0usize, 0usize);
        for layer in model.layers() {
            let (a, b, c) = layer.scratch_hint(&dims);
            a_elems = a_elems.max(a);
            b_elems = b_elems.max(b);
            col_elems = col_elems.max(c);
            dims = layer.out_dims(&dims)?;
            max_elems = max_elems.max(dims.iter().product());
            max_rank = max_rank.max(dims.len());
        }
        if a_elems > 0 || b_elems > 0 || col_elems > 0 {
            hpacml_par::broadcast(|_| {
                hpacml_tensor::gemm::reserve_scratch::<f32>(a_elems, b_elems, col_elems);
            });
        }
        // Reserve at the widest rank the pass will use, so the in-place
        // per-layer reshapes never regrow a shape vector either.
        let mut reserve_dims = vec![1usize; max_rank.max(1)];
        *reserve_dims.last_mut().expect("non-empty") = max_elems;
        if self.ping.capacity() < max_elems || self.ping.rank() < max_rank {
            self.ping.resize(&reserve_dims);
        }
        if self.pong.capacity() < max_elems || self.pong.rank() < max_rank {
            self.pong.resize(&reserve_dims);
        }
        Ok(max_elems)
    }
}

/// Workspace for end-to-end [`SavedModel`](crate::serialize::SavedModel)
/// inference: normalization staging plus the forward arena.
#[derive(Default)]
pub struct InferWorkspace {
    pub(crate) staged: Tensor,
    pub(crate) fw: ForwardWorkspace,
}

impl InferWorkspace {
    pub fn new() -> Self {
        Self::default()
    }
}

thread_local! {
    static THREAD_WS: RefCell<InferWorkspace> = RefCell::new(InferWorkspace::new());
}

/// Run `f` with this thread's shared inference workspace. The allocating
/// one-shot APIs route through this so repeated calls on one thread reuse
/// the same arenas.
pub(crate) fn with_thread_workspace<R>(f: impl FnOnce(&mut InferWorkspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        // Reentrant call (e.g. inference from inside another forward's
        // instrumentation): fall back to a fresh workspace rather than
        // panicking on the RefCell.
        Err(_) => f(&mut InferWorkspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, LayerSpec, ModelSpec};

    #[test]
    fn workspace_forward_matches_allocating_forward() {
        let spec = ModelSpec::mlp(6, &[16, 8], 2, Activation::Tanh, 0.1);
        let model = spec.build(3).unwrap();
        let x = Tensor::from_shape_fn([5, 6], |ix| (ix[0] as f32 - ix[1] as f32) * 0.21);
        let reference = model.forward(&x).unwrap();
        let mut ws = ForwardWorkspace::new();
        for _ in 0..3 {
            let y = ws.forward(&model, &x).unwrap();
            assert_eq!(y.dims(), reference.dims());
            assert_eq!(y.data(), reference.data());
        }
    }

    #[test]
    fn workspace_forward_matches_on_cnn() {
        let spec = ModelSpec::new(
            vec![2, 8, 8],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 2,
                    out_ch: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 3 * 4 * 4,
                    out_features: 2,
                },
                LayerSpec::Sigmoid,
            ],
        );
        let model = spec.build(9).unwrap();
        let x = Tensor::from_shape_fn([2, 2, 8, 8], |ix| (ix[2] * 8 + ix[3]) as f32 * 0.013);
        let reference = model.forward(&x).unwrap();
        let mut ws = ForwardWorkspace::new();
        let y = ws.forward(&model, &x).unwrap();
        assert_eq!(y.data(), reference.data());
    }

    #[test]
    fn arenas_are_reused_across_batches() {
        let spec = ModelSpec::mlp(4, &[32], 1, Activation::ReLU, 0.0);
        let model = spec.build(1).unwrap();
        let mut ws = ForwardWorkspace::new();
        let big = Tensor::full([16, 4], 0.5f32);
        ws.forward(&model, &big).unwrap();
        let warm = ws.capacity_elems();
        // Smaller batch reuses the grown arenas; sizes shrink logically but
        // capacity is retained by Vec semantics (asserted indirectly: no
        // panic, outputs correct, and a repeat big batch needs no regrowth).
        let small = Tensor::full([2, 4], 0.5f32);
        let y_small = ws.forward(&model, &small).unwrap().clone();
        assert_eq!(y_small.dims(), &[2, 1]);
        ws.forward(&model, &big).unwrap();
        assert_eq!(ws.capacity_elems(), warm);
    }

    #[test]
    fn empty_model_is_identity() {
        let model = Sequential::new(vec![]);
        let x = Tensor::full([3, 2], 7.0f32);
        let mut ws = ForwardWorkspace::new();
        assert_eq!(ws.forward(&model, &x).unwrap().data(), x.data());
    }
}
