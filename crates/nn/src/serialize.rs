//! `.hml` model files — the reproduction's TorchScript.
//!
//! A saved model is self-contained: architecture spec, trained weights, and
//! the input/output normalizers fitted during training, so a deployed model
//! maps *raw application values* to *raw application values*. The HPAC-ML
//! runtime loads these by path (the `model("...")` clause).
//!
//! Layout (little-endian):
//!
//! ```text
//! magic "HMLMODEL", version u8 = 2
//! prec    : u8 (v2+ only — Precision tag; v1 files are implicitly f32)
//! spec    : rank:u32, input_dims:u64*, n_layers:u32, layer*
//! layer   : tag:u8 + per-variant fields (u64 ints / f32 floats)
//! norm_in : present:u8 [axis:u8, len:u32, mean:f32*, std:f32*]
//! norm_out: same
//! weights : n:u32, { len:u64, f32* }*
//! ```
//!
//! Weights are always stored at full f32 precision; the precision byte
//! only records the *serving* target. The quantized packs are rebuilt
//! deterministically from the f32 weights at load/compile time (bf16
//! round-to-nearest-even and int8 abs-max scales are pure functions of
//! the weights), so a model file never bakes in quantization error twice
//! and older readers are only ever one byte away from compatibility.

use crate::data::{NormAxis, Normalizer};
use crate::fuse::PrecisionPolicy;
use crate::model::Sequential;
use crate::spec::{LayerSpec, ModelSpec};
use crate::workspace::{with_thread_workspace, InferWorkspace};
use crate::{NnError, Result};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use hpacml_tensor::quant::Precision;
use hpacml_tensor::Tensor;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"HMLMODEL";
const VERSION: u8 = 2;
/// The previous format version (no precision byte, implicitly f32) —
/// still accepted by [`load_model`].
const VERSION_V1: u8 = 1;

impl std::fmt::Debug for SavedModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SavedModel")
            .field("spec", &self.spec.summary())
            .field("params", &self.param_count())
            .field("precision", &self.precision)
            .field("in_norm", &self.in_norm.is_some())
            .field("out_norm", &self.out_norm.is_some())
            .finish()
    }
}

/// A deserialized, inference-ready model.
pub struct SavedModel {
    pub spec: ModelSpec,
    pub model: Sequential,
    pub in_norm: Option<Normalizer>,
    pub out_norm: Option<Normalizer>,
    /// Serving precision target (the coarsest ladder rung this model was
    /// saved/quantized for). `F32` for v1 files and unquantized models.
    pub precision: Precision,
}

impl SavedModel {
    /// End-to-end inference on raw application-space data: normalize input,
    /// run the network, denormalize output.
    ///
    /// Routes through this thread's shared [`InferWorkspace`], so repeated
    /// calls reuse the activation arenas; only the returned output tensor is
    /// allocated. Hot loops that want the last allocation gone should hold a
    /// workspace and call [`SavedModel::infer_with`] directly.
    pub fn infer(&self, x: &Tensor) -> Result<Tensor> {
        with_thread_workspace(|ws| Ok(self.infer_with(ws, x)?.clone()))
    }

    /// End-to-end inference into a caller-owned workspace. Steady-state
    /// allocation-free: normalization stages into `ws`, the forward pass
    /// ping-pongs inside `ws`, and denormalization happens in place on the
    /// returned output buffer.
    pub fn infer_with<'w>(&self, ws: &'w mut InferWorkspace, x: &Tensor) -> Result<&'w mut Tensor> {
        self.infer_with_at(ws, x, self.precision)
    }

    /// [`SavedModel::infer_with`] at an explicit serving precision —
    /// the hook the validation-driven demotion ladder uses to move
    /// between int8/bf16/f32 without touching the model. Layers missing
    /// a pack for `prec` serve the next finer one they have.
    pub fn infer_with_at<'w>(
        &self,
        ws: &'w mut InferWorkspace,
        x: &Tensor,
        prec: Precision,
    ) -> Result<&'w mut Tensor> {
        let y = match &self.in_norm {
            Some(n) => {
                n.transform_into(x, &mut ws.staged);
                ws.fw.forward_at(&self.model, &ws.staged, prec)?
            }
            None => ws.fw.forward_at(&self.model, x, prec)?,
        };
        if let Some(n) = &self.out_norm {
            n.inverse_in_place(y);
        }
        Ok(y)
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.spec.param_count()
    }

    /// Pre-size `ws` for inference on inputs of `in_dims` (batch dimension
    /// included): the normalization staging buffer, both forward arenas and
    /// the calling thread's per-layer GEMM scratch (weight-pack panels,
    /// im2col columns — see [`crate::ForwardWorkspace::reserve`] for the
    /// pool-worker caveat) grow once, so every later
    /// [`SavedModel::infer_with`] call at that batch — or any smaller one —
    /// performs zero heap allocation.
    /// Compiled sessions call this with their `max_batch` input shape at
    /// warm-up. Returns the widest activation element count (see
    /// [`crate::ForwardWorkspace::reserve`]).
    pub fn reserve_workspace(&self, ws: &mut InferWorkspace, in_dims: &[usize]) -> Result<usize> {
        let numel: usize = in_dims.iter().product();
        if self.in_norm.is_some() && ws.staged.capacity() < numel {
            ws.staged.resize(&[numel]);
        }
        ws.fw.reserve(&self.model, in_dims)
    }

    /// Compile the contained network for inference: drop inference-identity
    /// layers, fuse `Linear`/`Conv2d` → activation pairs into GEMM epilogues
    /// and pre-pack the (immutable) weights into panel layouts — see
    /// [`crate::fuse`]. Bit-preserving for inference; applied automatically
    /// by [`load_model`], so every model resolved through the engine runs
    /// the steady-state kernels. A compiled model is inference-only.
    pub fn compile(&mut self) -> crate::fuse::CompileInfo {
        crate::fuse::compile_for_inference_with(
            &mut self.model,
            &PrecisionPolicy {
                target: self.precision,
                ..Default::default()
            },
        )
    }

    /// Quantize the (already compiled) model for serving at `target`:
    /// builds reduced-precision weight packs on every layer that supports
    /// them and records the target as the model's serving precision.
    /// Returns the number of layers quantized. `F32` reverts the serving
    /// precision without touching existing packs.
    pub fn quantize(&mut self, target: Precision) -> usize {
        self.precision = target;
        if target == Precision::F32 {
            return 0;
        }
        let mut n = 0;
        for l in self.model.layers_mut().iter_mut() {
            if l.quantize(target) {
                n += 1;
            }
        }
        n
    }
}

/// Serialize a trained model (plus normalizers) to `path` at the default
/// f32 serving precision.
pub fn save_model(
    path: impl AsRef<Path>,
    spec: &ModelSpec,
    model: &mut Sequential,
    in_norm: Option<&Normalizer>,
    out_norm: Option<&Normalizer>,
) -> Result<()> {
    save_model_with_precision(path, spec, model, in_norm, out_norm, Precision::F32)
}

/// [`save_model`] with an explicit serving-precision target. Weights are
/// still stored at f32 (see the module docs); the byte only tells loaders
/// which ladder rung to quantize for.
pub fn save_model_with_precision(
    path: impl AsRef<Path>,
    spec: &ModelSpec,
    model: &mut Sequential,
    in_norm: Option<&Normalizer>,
    out_norm: Option<&Normalizer>,
    precision: Precision,
) -> Result<()> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(precision.tag());
    encode_spec(&mut buf, spec);
    encode_norm(&mut buf, in_norm);
    encode_norm(&mut buf, out_norm);
    let weights = model.export_weights();
    buf.put_u32_le(weights.len() as u32);
    for w in &weights {
        buf.put_u64_le(w.len() as u64);
        for v in w {
            buf.put_f32_le(*v);
        }
    }
    if let Some(dir) = path.as_ref().parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&buf)?;
    f.flush()?;
    Ok(())
}

/// Load a `.hml` model from disk and rebuild the network with its weights.
pub fn load_model(path: impl AsRef<Path>) -> Result<SavedModel> {
    let mut raw = Vec::new();
    std::fs::File::open(path.as_ref())?.read_to_end(&mut raw)?;
    let mut buf = Bytes::from(raw);
    let mut magic = [0u8; 8];
    if buf.remaining() < 9 {
        return Err(NnError::Serialize("file too short".into()));
    }
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(NnError::Serialize("not an .hml model (bad magic)".into()));
    }
    let version = buf.get_u8();
    if version != VERSION && version != VERSION_V1 {
        return Err(NnError::Serialize(format!(
            "unsupported .hml version {version}"
        )));
    }
    // v1 files predate the precision byte and are implicitly f32.
    let precision = if version >= 2 {
        let tag = need_u8(&mut buf)?;
        Precision::from_tag(tag)
            .ok_or_else(|| NnError::Serialize(format!("bad precision tag {tag}")))?
    } else {
        Precision::F32
    };
    let spec = decode_spec(&mut buf)?;
    let in_norm = decode_norm(&mut buf)?;
    let out_norm = decode_norm(&mut buf)?;
    let n = need_u32(&mut buf)? as usize;
    let mut weights = Vec::with_capacity(n);
    for _ in 0..n {
        let len = need_u64(&mut buf)? as usize;
        if buf.remaining() < len * 4 {
            return Err(NnError::Serialize("truncated weight payload".into()));
        }
        let mut w = Vec::with_capacity(len);
        for _ in 0..len {
            w.push(buf.get_f32_le());
        }
        weights.push(w);
    }
    // Build with an arbitrary seed, then overwrite every parameter.
    let mut model = spec.build(0)?;
    model.import_weights(&weights)?;
    let mut saved = SavedModel {
        spec,
        model,
        in_norm,
        out_norm,
        precision,
    };
    // Models loaded from disk are inference models: compile once here
    // (fusion + weight pre-packing + quantization at the recorded
    // serving precision) so every forward pass downstream — engine cache
    // hits, compiled sessions, batched invokes — runs the steady-state
    // kernels without ever repacking.
    saved.compile();
    Ok(saved)
}

fn encode_spec(buf: &mut BytesMut, spec: &ModelSpec) {
    buf.put_u32_le(spec.input_shape.len() as u32);
    for d in &spec.input_shape {
        buf.put_u64_le(*d as u64);
    }
    buf.put_u32_le(spec.layers.len() as u32);
    for l in &spec.layers {
        match l {
            LayerSpec::Linear {
                in_features,
                out_features,
            } => {
                buf.put_u8(0);
                buf.put_u64_le(*in_features as u64);
                buf.put_u64_le(*out_features as u64);
            }
            LayerSpec::ReLU => buf.put_u8(1),
            LayerSpec::Tanh => buf.put_u8(2),
            LayerSpec::Sigmoid => buf.put_u8(3),
            LayerSpec::Dropout { p } => {
                buf.put_u8(4);
                buf.put_f32_le(*p);
            }
            LayerSpec::Flatten => buf.put_u8(5),
            LayerSpec::Conv2d {
                in_ch,
                out_ch,
                kernel,
                stride,
                pad,
            } => {
                buf.put_u8(6);
                for v in [in_ch, out_ch, kernel, stride, pad] {
                    buf.put_u64_le(*v as u64);
                }
            }
            LayerSpec::MaxPool2d { kernel, stride } => {
                buf.put_u8(7);
                buf.put_u64_le(*kernel as u64);
                buf.put_u64_le(*stride as u64);
            }
        }
    }
}

fn decode_spec(buf: &mut Bytes) -> Result<ModelSpec> {
    let rank = need_u32(buf)? as usize;
    if rank > 8 {
        return Err(NnError::Serialize(format!("implausible input rank {rank}")));
    }
    let mut input_shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        input_shape.push(need_u64(buf)? as usize);
    }
    let n = need_u32(buf)? as usize;
    let mut layers = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = need_u8(buf)?;
        layers.push(match tag {
            0 => LayerSpec::Linear {
                in_features: need_u64(buf)? as usize,
                out_features: need_u64(buf)? as usize,
            },
            1 => LayerSpec::ReLU,
            2 => LayerSpec::Tanh,
            3 => LayerSpec::Sigmoid,
            4 => LayerSpec::Dropout { p: need_f32(buf)? },
            5 => LayerSpec::Flatten,
            6 => LayerSpec::Conv2d {
                in_ch: need_u64(buf)? as usize,
                out_ch: need_u64(buf)? as usize,
                kernel: need_u64(buf)? as usize,
                stride: need_u64(buf)? as usize,
                pad: need_u64(buf)? as usize,
            },
            7 => LayerSpec::MaxPool2d {
                kernel: need_u64(buf)? as usize,
                stride: need_u64(buf)? as usize,
            },
            other => return Err(NnError::Serialize(format!("bad layer tag {other}"))),
        });
    }
    Ok(ModelSpec::new(input_shape, layers))
}

fn encode_norm(buf: &mut BytesMut, norm: Option<&Normalizer>) {
    match norm {
        None => buf.put_u8(0),
        Some(n) => {
            buf.put_u8(1);
            buf.put_u8(n.axis.tag());
            buf.put_u32_le(n.mean.len() as u32);
            for v in &n.mean {
                buf.put_f32_le(*v);
            }
            for v in &n.std {
                buf.put_f32_le(*v);
            }
        }
    }
}

fn decode_norm(buf: &mut Bytes) -> Result<Option<Normalizer>> {
    match need_u8(buf)? {
        0 => Ok(None),
        1 => {
            let axis = NormAxis::from_tag(need_u8(buf)?)?;
            let len = need_u32(buf)? as usize;
            if buf.remaining() < len * 8 {
                return Err(NnError::Serialize("truncated normalizer".into()));
            }
            let mut mean = Vec::with_capacity(len);
            for _ in 0..len {
                mean.push(buf.get_f32_le());
            }
            let mut std = Vec::with_capacity(len);
            for _ in 0..len {
                std.push(buf.get_f32_le());
            }
            Ok(Some(Normalizer { axis, mean, std }))
        }
        other => Err(NnError::Serialize(format!("bad normalizer tag {other}"))),
    }
}

fn need_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(NnError::Serialize("truncated file".into()));
    }
    Ok(buf.get_u8())
}

fn need_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(NnError::Serialize("truncated file".into()));
    }
    Ok(buf.get_u32_le())
}

fn need_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(NnError::Serialize("truncated file".into()));
    }
    Ok(buf.get_u64_le())
}

fn need_f32(buf: &mut Bytes) -> Result<f32> {
    if buf.remaining() < 4 {
        return Err(NnError::Serialize("truncated file".into()));
    }
    Ok(buf.get_f32_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Activation;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("hpacml-nn-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn mlp_roundtrip_preserves_predictions() {
        let spec = ModelSpec::mlp(3, &[16, 8], 2, Activation::Tanh, 0.2);
        let mut model = spec.build(5).unwrap();
        let x = Tensor::from_shape_fn([4, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.3);
        let before = model.forward(&x).unwrap();

        let in_norm = Normalizer::fit(&x, NormAxis::PerFeature).unwrap();
        let path = tmp("mlp.hml");
        save_model(&path, &spec, &mut model, Some(&in_norm), None).unwrap();

        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.spec, spec);
        assert_eq!(loaded.param_count(), spec.param_count());
        assert_eq!(loaded.in_norm, Some(in_norm.clone()));
        assert_eq!(loaded.out_norm, None);
        // Raw forward (no norm) must match exactly.
        let after = loaded.model.forward(&x).unwrap();
        assert_eq!(before.data(), after.data());
        // infer() applies the input normalizer.
        let normed = loaded.model.forward(&in_norm.transform(&x)).unwrap();
        assert_eq!(loaded.infer(&x).unwrap().data(), normed.data());
    }

    #[test]
    fn cnn_roundtrip() {
        let spec = ModelSpec::new(
            vec![2, 8, 8],
            vec![
                LayerSpec::Conv2d {
                    in_ch: 2,
                    out_ch: 3,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                LayerSpec::ReLU,
                LayerSpec::MaxPool2d {
                    kernel: 2,
                    stride: 2,
                },
                LayerSpec::Flatten,
                LayerSpec::Linear {
                    in_features: 3 * 4 * 4,
                    out_features: 2,
                },
            ],
        );
        let mut model = spec.build(9).unwrap();
        let x = Tensor::from_shape_fn([2, 2, 8, 8], |ix| (ix[2] * 8 + ix[3]) as f32 * 0.01);
        let before = model.forward(&x).unwrap();
        let path = tmp("cnn.hml");
        save_model(&path, &spec, &mut model, None, None).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.model.forward(&x).unwrap().data(), before.data());
    }

    #[test]
    fn output_norm_applied_on_infer() {
        let spec = ModelSpec::mlp(1, &[], 1, Activation::ReLU, 0.0);
        let mut model = spec.build(1).unwrap();
        let out_norm = Normalizer {
            axis: NormAxis::PerFeature,
            mean: vec![100.0],
            std: vec![10.0],
        };
        let path = tmp("outnorm.hml");
        save_model(&path, &spec, &mut model, None, Some(&out_norm)).unwrap();
        let loaded = load_model(&path).unwrap();
        let x = Tensor::full([1, 1], 0.5f32);
        let raw = loaded.model.forward(&x).unwrap().data()[0];
        let scaled = loaded.infer(&x).unwrap().data()[0];
        assert!((scaled - (raw * 10.0 + 100.0)).abs() < 1e-5);
    }

    #[test]
    fn v1_files_still_load_as_f32() {
        // Hand-write a v-previous (version 1) byte stream with the same
        // private encoders: no precision byte, implicitly f32. Models
        // saved before the version bump must keep loading bit-for-bit.
        let spec = ModelSpec::mlp(3, &[8], 1, Activation::Tanh, 0.0);
        let mut model = spec.build(6).unwrap();
        let x = Tensor::from_shape_fn([4, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.11);
        let before = model.forward(&x).unwrap();

        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION_V1);
        encode_spec(&mut buf, &spec);
        encode_norm(&mut buf, None);
        encode_norm(&mut buf, None);
        let weights = model.export_weights();
        buf.put_u32_le(weights.len() as u32);
        for w in &weights {
            buf.put_u64_le(w.len() as u64);
            for v in w {
                buf.put_f32_le(*v);
            }
        }
        let path = tmp("v1_compat.hml");
        std::fs::write(&path, &buf).unwrap();

        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.precision, Precision::F32);
        assert_eq!(loaded.model.forward(&x).unwrap().data(), before.data());
    }

    #[test]
    fn precision_tag_round_trips_and_quantizes_on_load() {
        let spec = ModelSpec::mlp(4, &[16], 2, Activation::Tanh, 0.0);
        let mut model = spec.build(8).unwrap();
        let path = tmp("int8.hml");
        save_model_with_precision(&path, &spec, &mut model, None, None, Precision::Int8).unwrap();
        let loaded = load_model(&path).unwrap();
        assert_eq!(loaded.precision, Precision::Int8);

        let x = Tensor::from_shape_fn([5, 4], |ix| (ix[0] * 4 + ix[1]) as f32 * 0.07 - 0.5);
        let mut ws = InferWorkspace::new();
        // The model's default serving route is its recorded precision...
        let qy = loaded.infer_with(&mut ws, &x).unwrap().clone();
        let qy2 = loaded
            .infer_with_at(&mut ws, &x, Precision::Int8)
            .unwrap()
            .clone();
        assert_eq!(qy.data(), qy2.data());
        // ...and every finer ladder rung is available and close to f32.
        let by = loaded
            .infer_with_at(&mut ws, &x, Precision::Bf16)
            .unwrap()
            .clone();
        let fy = loaded
            .infer_with_at(&mut ws, &x, Precision::F32)
            .unwrap()
            .clone();
        for ((q, b), f) in qy.data().iter().zip(by.data()).zip(fy.data()) {
            assert!((q - f).abs() < 0.1, "int8 drifted: {q} vs {f}");
            assert!((b - f).abs() < 0.05, "bf16 drifted: {b} vs {f}");
        }
    }

    #[test]
    fn bad_precision_tag_rejected() {
        let spec = ModelSpec::mlp(2, &[4], 1, Activation::ReLU, 0.0);
        let mut model = spec.build(2).unwrap();
        let path = tmp("badprec.hml");
        save_model(&path, &spec, &mut model, None, None).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[9] = 0xEE; // the v2 precision byte
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load_model(&path),
            Err(NnError::Serialize(msg)) if msg.contains("precision tag")
        ));
    }

    #[test]
    fn corrupt_files_rejected() {
        let path = tmp("bad.hml");
        std::fs::write(&path, b"NOTMODEL").unwrap();
        assert!(load_model(&path).is_err());
        std::fs::write(&path, b"HM").unwrap();
        assert!(load_model(&path).is_err());
        // Truncated real model.
        let spec = ModelSpec::mlp(2, &[4], 1, Activation::ReLU, 0.0);
        let mut model = spec.build(2).unwrap();
        let good = tmp("good.hml");
        save_model(&good, &spec, &mut model, None, None).unwrap();
        let bytes = std::fs::read(&good).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(load_model(&path).is_err());
    }
}
