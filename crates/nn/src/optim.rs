//! Optimizers: SGD with momentum and Adam with decoupled weight decay.
//!
//! The paper's hyperparameter space (Table V) tunes learning rate and weight
//! decay; decoupled decay (AdamW-style) is used so weight decay acts
//! identically for both optimizers.

use crate::model::Sequential;

/// Optimizer selector plus shared hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    Sgd {
        lr: f32,
        momentum: f32,
        weight_decay: f32,
    },
    Adam {
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    },
}

impl Optimizer {
    pub fn sgd(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Optimizer::Sgd {
            lr,
            momentum,
            weight_decay,
        }
    }

    /// Adam with the conventional betas.
    pub fn adam(lr: f32, weight_decay: f32) -> Self {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
        }
    }

    pub fn lr(&self) -> f32 {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr,
        }
    }

    pub fn set_lr(&mut self, new_lr: f32) {
        match self {
            Optimizer::Sgd { lr, .. } | Optimizer::Adam { lr, .. } => *lr = new_lr,
        }
    }
}

/// Per-parameter optimizer state, allocated lazily on the first step.
pub struct OptimState {
    opt: Optimizer,
    /// SGD: momentum buffer. Adam: first moment.
    m: Vec<Vec<f32>>,
    /// Adam: second moment.
    v: Vec<Vec<f32>>,
    /// Adam: step counter for bias correction.
    t: u64,
}

impl OptimState {
    pub fn new(opt: Optimizer) -> Self {
        OptimState {
            opt,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    pub fn optimizer(&self) -> Optimizer {
        self.opt
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.opt.set_lr(lr);
    }

    /// Apply one update step from the accumulated gradients, then leave the
    /// gradients untouched (caller zeroes them per batch).
    pub fn step(&mut self, model: &mut Sequential) {
        self.t += 1;
        let t = self.t;
        let opt = self.opt;
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |p| {
            let n = p.value.numel();
            if m.len() <= idx {
                m.push(vec![0.0; n]);
                v.push(vec![0.0; n]);
            }
            let values = p.value.data_mut();
            let grads = p.grad.data();
            match opt {
                Optimizer::Sgd {
                    lr,
                    momentum,
                    weight_decay,
                } => {
                    let mbuf = &mut m[idx];
                    for i in 0..n {
                        // Decoupled weight decay.
                        let g = grads[i];
                        mbuf[i] = momentum * mbuf[i] + g;
                        values[i] -= lr * (mbuf[i] + weight_decay * values[i]);
                    }
                }
                Optimizer::Adam {
                    lr,
                    beta1,
                    beta2,
                    eps,
                    weight_decay,
                } => {
                    let bc1 = 1.0 - beta1.powi(t as i32);
                    let bc2 = 1.0 - beta2.powi(t as i32);
                    let mbuf = &mut m[idx];
                    let vbuf = &mut v[idx];
                    for i in 0..n {
                        let g = grads[i];
                        mbuf[i] = beta1 * mbuf[i] + (1.0 - beta1) * g;
                        vbuf[i] = beta2 * vbuf[i] + (1.0 - beta2) * g * g;
                        let mhat = mbuf[i] / bc1;
                        let vhat = vbuf[i] / bc2;
                        values[i] -= lr * (mhat / (vhat.sqrt() + eps) + weight_decay * values[i]);
                    }
                }
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::rng;
    use crate::layer::Linear;
    use crate::loss::Loss;
    use hpacml_tensor::Tensor;
    use rand::Rng;

    /// Fit y = 2x + 1 with a single linear layer.
    fn fit(opt: Optimizer, steps: usize) -> f64 {
        let mut model = Sequential::new(vec![Box::new(Linear::new(1, 1, &mut rng(3)))]);
        let mut state = OptimState::new(opt);
        let mut r = rng(4);
        let mut last = f64::MAX;
        for _ in 0..steps {
            let xs: Vec<f32> = (0..32).map(|_| r.gen_range(-1.0f32..1.0)).collect();
            let ys: Vec<f32> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
            let x = Tensor::from_vec(xs, [32, 1]).unwrap();
            let y = Tensor::from_vec(ys, [32, 1]).unwrap();
            model.zero_grad();
            let pred = model.forward_train(&x).unwrap();
            let (loss, dloss) = Loss::Mse.eval(&pred, &y).unwrap();
            model.backward(&dloss).unwrap();
            state.step(&mut model);
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        assert!(fit(Optimizer::sgd(0.1, 0.9, 0.0), 200) < 1e-4);
    }

    #[test]
    fn adam_converges_on_linear_problem() {
        assert!(fit(Optimizer::adam(0.05, 0.0), 300) < 1e-4);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // Pure decay: zero gradient, positive decay — weights must shrink.
        let mut model = Sequential::new(vec![Box::new(Linear::new(4, 4, &mut rng(5)))]);
        let before: f64 = {
            let mut s = 0.0;
            model.visit_params(&mut |p| {
                s += p
                    .value
                    .data()
                    .iter()
                    .map(|x| (*x as f64).powi(2))
                    .sum::<f64>()
            });
            s
        };
        let mut state = OptimState::new(Optimizer::sgd(0.1, 0.0, 0.5));
        model.zero_grad();
        for _ in 0..10 {
            state.step(&mut model);
        }
        let after: f64 = {
            let mut s = 0.0;
            model.visit_params(&mut |p| {
                s += p
                    .value
                    .data()
                    .iter()
                    .map(|x| (*x as f64).powi(2))
                    .sum::<f64>()
            });
            s
        };
        // 10 steps of lr*wd = 0.05 decay: squared norm shrinks by 0.95^20 ≈ 0.36.
        assert!(after < before * 0.45, "before={before} after={after}");
        assert!(
            after > before * 0.25,
            "decay should not overshoot: {after} vs {before}"
        );
    }

    #[test]
    fn set_lr_updates() {
        let mut o = Optimizer::adam(0.01, 0.0);
        o.set_lr(0.1);
        assert_eq!(o.lr(), 0.1);
    }
}
