//! Counting-allocator proof that the **compiled** inference path — fused
//! activations, pre-packed weight panels, im2col-through-GEMM convolution —
//! keeps the zero-allocation steady state, with the packing buffers owned
//! by the model and the per-thread scratch (never the forward pass).
//!
//! Same thread-local counting `#[global_allocator]` technique as
//! `alloc_free_inference.rs`, which continues to cover the *uncompiled*
//! fallback paths untouched.

use hpacml_nn::spec::{Activation, LayerSpec, ModelSpec};
use hpacml_nn::ForwardWorkspace;
use hpacml_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    let _ = TL_TRACKING.try_with(|t| {
        if t.get() {
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: a pass-through `GlobalAlloc`: every method delegates to `System`
// under the caller's own contract, and the thread-local counting on the side
// never allocates (const-initialized cells) and never touches the layout.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System.alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `layout` is forwarded unchanged from our caller.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same ptr/layout contract as `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc` via the method above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System.realloc`, to which this delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = TL_ALLOCS.with(|c| c.get());
    TL_TRACKING.with(|t| t.set(true));
    f();
    TL_TRACKING.with(|t| t.set(false));
    let after = TL_ALLOCS.with(|c| c.get());
    after - before
}

#[test]
fn compiled_mlp_with_packed_weights_is_allocation_free() {
    let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.2);
    let mut model = spec.build(3).unwrap();
    let info = hpacml_nn::compile_for_inference(&mut model);
    assert!(info.packed_layers >= 3 && info.fused_activations >= 2);
    let x = Tensor::from_shape_fn([16, 6], |ix| (ix[0] * 3 + ix[1]) as f32 * 0.01);
    let mut ws = ForwardWorkspace::new();
    ws.forward(&model, &x).unwrap(); // warm-up grows the arenas once
    let allocs = allocations_during(|| {
        for _ in 0..500 {
            ws.forward(&model, &x).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "compiled forward must reuse packed weights and arenas"
    );
}

/// The conv GEMM route stages im2col columns in this thread's grow-only
/// scratch; after `ForwardWorkspace::reserve`, even the *first* forward on
/// this thread is allocation-free — including the strided convolution that
/// used to allocate its column matrix per sample. (Pool workers drafted
/// into larger batches warm their own scratch once; the counting allocator
/// here tracks the calling thread, which is also the only executor at
/// batch 1.)
#[test]
fn compiled_cnn_gemm_route_is_allocation_free_after_reserve() {
    let spec = ModelSpec::new(
        vec![4, 24, 48],
        vec![
            LayerSpec::Conv2d {
                in_ch: 4,
                out_ch: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Tanh,
            LayerSpec::Conv2d {
                in_ch: 4,
                out_ch: 4,
                kernel: 3,
                stride: 2,
                pad: 1,
            },
            LayerSpec::ReLU,
        ],
    );
    let mut model = spec.build(5).unwrap();
    let info = hpacml_nn::compile_for_inference(&mut model);
    assert_eq!(info.fused_activations, 2);
    let x = Tensor::full([1usize, 4, 24, 48], 0.2f32);
    let mut ws = ForwardWorkspace::new();
    ws.reserve(&model, x.dims()).unwrap(); // sizes arenas *and* im2col scratch
    hpacml_par::pool::global(); // process-wide pool init is not per-forward cost
    let allocs = allocations_during(|| {
        for _ in 0..100 {
            ws.forward(&model, &x).unwrap();
        }
    });
    assert_eq!(
        allocs, 0,
        "conv im2col/GEMM route must reuse the thread scratch from the first pass"
    );
}

/// Compiled and uncompiled forwards are bit-identical — fusion and packing
/// are pure layout/schedule changes, never numeric ones.
#[test]
fn compiled_forward_matches_uncompiled_bitwise() {
    let spec = ModelSpec::new(
        vec![2, 10, 10],
        vec![
            LayerSpec::Conv2d {
                in_ch: 2,
                out_ch: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Sigmoid,
            LayerSpec::Flatten,
            LayerSpec::Linear {
                in_features: 3 * 10 * 10,
                out_features: 4,
            },
            LayerSpec::ReLU,
            LayerSpec::Dropout { p: 0.3 },
            LayerSpec::Linear {
                in_features: 4,
                out_features: 1,
            },
        ],
    );
    let reference = spec.build(11).unwrap();
    let mut compiled = spec.build(11).unwrap();
    hpacml_nn::compile_for_inference(&mut compiled);
    for batch in [1usize, 2, 7] {
        let x = Tensor::from_shape_fn([batch, 2, 10, 10], |ix| {
            ((ix[0] + 1) * (ix[2] * 10 + ix[3])) as f32 * 0.004 - 0.3
        });
        assert_eq!(
            reference.forward(&x).unwrap().data(),
            compiled.forward(&x).unwrap().data(),
            "batch {batch}"
        );
    }
}
