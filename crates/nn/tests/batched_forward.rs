//! The leading batch dimension is a pure stacking axis: a forward pass over
//! `n` samples must be **bit-identical** to the `n` per-sample forward
//! passes concatenated, for every layer kind (Linear, Conv2d, MaxPool2d,
//! activations, Flatten) and for end-to-end `SavedModel` inference with
//! normalizers. This is the invariant that lets the runtime coalesce many
//! region invocations into one forward pass without changing any result.

use hpacml_nn::spec::{Activation, LayerSpec, ModelSpec};
use hpacml_nn::{ForwardWorkspace, InferWorkspace};
use hpacml_tensor::Tensor;

fn batched_matches_per_sample(spec: &ModelSpec, n: usize, seed: u64) {
    let model = spec.build(seed).unwrap();
    let per_sample: usize = spec.input_shape.iter().product();
    let data: Vec<f32> = (0..n * per_sample)
        .map(|k| ((k * 37 + 11) % 101) as f32 * 0.013 - 0.5)
        .collect();

    let mut batched_dims = vec![n];
    batched_dims.extend_from_slice(&spec.input_shape);
    let xb = Tensor::from_vec(data.clone(), batched_dims).unwrap();
    let yb = model.forward(&xb).unwrap();

    let mut sample_dims = vec![1];
    sample_dims.extend_from_slice(&spec.input_shape);
    let out_per = yb.numel() / n;
    for i in 0..n {
        let xi = Tensor::from_vec(
            data[i * per_sample..(i + 1) * per_sample].to_vec(),
            sample_dims.clone(),
        )
        .unwrap();
        let yi = model.forward(&xi).unwrap();
        assert_eq!(yi.numel(), out_per);
        assert_eq!(
            &yb.data()[i * out_per..(i + 1) * out_per],
            yi.data(),
            "sample {i} differs between batched and per-sample forward"
        );
    }
}

#[test]
fn mlp_batch_is_stacked_per_sample_bitwise() {
    let spec = ModelSpec::mlp(6, &[32, 16], 2, Activation::Tanh, 0.0);
    batched_matches_per_sample(&spec, 7, 3);
}

#[test]
fn cnn_batch_is_stacked_per_sample_bitwise() {
    let spec = ModelSpec::new(
        vec![2, 8, 8],
        vec![
            LayerSpec::Conv2d {
                in_ch: 2,
                out_ch: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::ReLU,
            LayerSpec::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
            LayerSpec::Linear {
                in_features: 3 * 4 * 4,
                out_features: 2,
            },
            LayerSpec::Sigmoid,
        ],
    );
    batched_matches_per_sample(&spec, 5, 9);
}

/// Reserving the workspace for the largest batch keeps arena capacity flat
/// for every smaller batch — the max_batch sizing contract sessions rely on.
#[test]
fn reserve_for_max_batch_serves_smaller_batches_without_growth() {
    let spec = ModelSpec::mlp(4, &[64, 32], 1, Activation::ReLU, 0.0);
    let model = spec.build(1).unwrap();
    let max_batch = 64usize;

    let mut ws = ForwardWorkspace::new();
    ws.reserve(&model, &[max_batch, 4]).unwrap();
    let reserved = ws.capacity_elems();
    assert!(reserved.0 >= max_batch * 64 && reserved.1 >= max_batch * 64);

    for n in [1usize, 3, 17, 64] {
        let x = Tensor::full([n, 4], 0.25f32);
        let y = ws.forward(&model, &x).unwrap();
        assert_eq!(y.dims(), &[n, 1]);
        assert_eq!(
            ws.capacity_elems(),
            reserved,
            "batch {n} must not grow the reserved arenas"
        );
    }
}

/// End-to-end SavedModel inference (normalize → forward → denormalize) keeps
/// the batched/per-sample equivalence, through a reserved workspace.
#[test]
fn saved_model_infer_batches_bitwise_through_reserved_workspace() {
    let dir = std::env::temp_dir().join("hpacml-nn-batched");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("batched.hml");

    let spec = ModelSpec::mlp(3, &[16], 2, Activation::Tanh, 0.0);
    let mut model = spec.build(5).unwrap();
    let fit = Tensor::from_shape_fn([32, 3], |ix| (ix[0] as f32 - ix[1] as f32) * 0.21);
    let in_norm = hpacml_nn::Normalizer::fit(&fit, hpacml_nn::data::NormAxis::PerFeature).unwrap();
    hpacml_nn::serialize::save_model(&path, &spec, &mut model, Some(&in_norm), None).unwrap();
    let saved = hpacml_nn::serialize::load_model(&path).unwrap();

    let n = 9usize;
    let data: Vec<f32> = (0..n * 3).map(|k| (k as f32).sin()).collect();
    let mut ws = InferWorkspace::new();
    saved.reserve_workspace(&mut ws, &[n, 3]).unwrap();
    let xb = Tensor::from_vec(data.clone(), [n, 3]).unwrap();
    let yb = saved.infer_with(&mut ws, &xb).unwrap().clone();

    for i in 0..n {
        let xi = Tensor::from_vec(data[i * 3..(i + 1) * 3].to_vec(), [1, 3]).unwrap();
        let yi = saved.infer(&xi).unwrap();
        assert_eq!(&yb.data()[i * 2..(i + 1) * 2], yi.data(), "sample {i}");
    }
}
