//! Counting-allocator proof of the zero-allocation steady state: after a
//! warm-up pass, repeated `SavedModel::infer_with` calls through one
//! `InferWorkspace` perform **no** heap allocation in the activation path.
//!
//! The counter is a `#[global_allocator]` that tallies allocations *on the
//! calling thread only* (const-initialized thread-locals, so the bookkeeping
//! itself never allocates), which makes the counts immune to the test
//! harness's other threads.

use hpacml_nn::spec::{Activation, LayerSpec, ModelSpec};
use hpacml_nn::{ForwardWorkspace, InferWorkspace};
use hpacml_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

struct CountingAlloc;

thread_local! {
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_TRACKING: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracking() {
    // `try_with` so allocations during thread teardown (TLS destructors)
    // never panic inside the allocator.
    let _ = TL_TRACKING.try_with(|t| {
        if t.get() {
            let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
        }
    });
}

// SAFETY: a pass-through `GlobalAlloc`: every method delegates to `System`
// under the caller's own contract, and the thread-local counting on the side
// never allocates (const-initialized cells) and never touches the layout.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System.alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `layout` is forwarded unchanged from our caller.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same ptr/layout contract as `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc` via the method above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System.realloc`, to which this delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracking();
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count heap allocations performed by the current thread while running `f`.
fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = TL_ALLOCS.with(|c| c.get());
    TL_TRACKING.with(|t| t.set(true));
    f();
    TL_TRACKING.with(|t| t.set(false));
    let after = TL_ALLOCS.with(|c| c.get());
    after - before
}

const ITERS: u64 = 1000;

#[test]
fn mlp_inference_steady_state_is_allocation_free() {
    // Small model so the matmuls stay on the inline (non-pool) path.
    let spec = ModelSpec::mlp(4, &[16, 8], 2, Activation::Tanh, 0.1);
    let model = spec.build(3).unwrap();
    let saved = hpacml_nn::SavedModel {
        spec,
        model,
        in_norm: None,
        out_norm: None,
        precision: hpacml_tensor::Precision::F32,
    };
    let x = Tensor::from_shape_fn([8, 4], |ix| (ix[0] * 4 + ix[1]) as f32 * 0.01);
    let mut ws = InferWorkspace::new();
    // Warm-up: grows the arenas once.
    let reference = saved.infer_with(&mut ws, &x).unwrap().clone();
    let allocs = allocations_during(|| {
        for _ in 0..ITERS {
            let y = saved.infer_with(&mut ws, &x).unwrap();
            assert_eq!(y.data()[0], reference.data()[0]);
        }
    });
    assert!(
        allocs < ITERS,
        "steady-state inference allocated {allocs} times over {ITERS} iterations \
         (>= 1 per call) — the activation path must reuse the workspace arenas"
    );
    // In practice the count is exactly zero; record that stronger fact too
    // so an intentional relaxation has to touch this test.
    assert_eq!(allocs, 0, "expected exactly zero steady-state allocations");
}

#[test]
fn forward_workspace_reuses_arenas_across_batch_sizes() {
    let spec = ModelSpec::mlp(6, &[32], 1, Activation::ReLU, 0.0);
    let model = spec.build(5).unwrap();
    let mut ws = ForwardWorkspace::new();
    let big = Tensor::full([16, 6], 0.4f32);
    let small = Tensor::full([4, 6], 0.4f32);
    // Warm with the largest shape; smaller and equal shapes then fit.
    ws.forward(&model, &big).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..ITERS {
            ws.forward(&model, &small).unwrap();
            ws.forward(&model, &big).unwrap();
        }
    });
    assert_eq!(allocs, 0, "alternating batch sizes must still reuse arenas");
}

#[test]
fn normalized_inference_is_also_allocation_free() {
    let spec = ModelSpec::mlp(3, &[8], 1, Activation::Sigmoid, 0.0);
    let model = spec.build(11).unwrap();
    let norm = |len: usize| hpacml_nn::Normalizer {
        axis: hpacml_nn::data::NormAxis::PerFeature,
        mean: vec![0.5; len],
        std: vec![2.0; len],
    };
    let saved = hpacml_nn::SavedModel {
        spec,
        model,
        in_norm: Some(norm(3)),
        out_norm: Some(norm(1)),
        precision: hpacml_tensor::Precision::F32,
    };
    let x = Tensor::full([6, 3], 0.7f32);
    let mut ws = InferWorkspace::new();
    saved.infer_with(&mut ws, &x).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..ITERS {
            saved.infer_with(&mut ws, &x).unwrap();
        }
    });
    assert_eq!(allocs, 0, "normalization staging must reuse its buffer");
}

/// CNN layers route through `conv2d_into`/`maxpool2d_into`; the stride-1
/// direct convolution path is allocation-free too.
#[test]
fn cnn_stride1_inference_is_allocation_free() {
    let spec = ModelSpec::new(
        vec![2, 8, 8],
        vec![
            LayerSpec::Conv2d {
                in_ch: 2,
                out_ch: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::ReLU,
            LayerSpec::MaxPool2d {
                kernel: 2,
                stride: 2,
            },
            LayerSpec::Flatten,
            LayerSpec::Linear {
                in_features: 3 * 4 * 4,
                out_features: 2,
            },
        ],
    );
    let model = spec.build(7).unwrap();
    let x = Tensor::full([1, 2, 8, 8], 0.3f32);
    let mut ws = ForwardWorkspace::new();
    ws.forward(&model, &x).unwrap();
    let allocs = allocations_during(|| {
        for _ in 0..200 {
            ws.forward(&model, &x).unwrap();
        }
    });
    assert_eq!(allocs, 0, "stride-1 CNN forward must not allocate");
}
