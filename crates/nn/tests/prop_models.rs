//! Property-based tests for the NN engine: serialization fidelity and
//! architecture invariants over randomly generated specs.

use hpacml_nn::data::{NormAxis, Normalizer};
use hpacml_nn::serialize::{load_model, save_model};
use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_tensor::Tensor;
use proptest::prelude::*;

fn mlp_spec() -> impl Strategy<Value = ModelSpec> {
    (
        1usize..8,                                   // input dim
        proptest::collection::vec(1usize..24, 0..3), // hidden widths
        1usize..4,                                   // output dim
        0u8..3,                                      // activation
        0u32..80,                                    // dropout percent
    )
        .prop_map(|(inp, hidden, out, act, dp)| {
            let act = match act {
                0 => Activation::ReLU,
                1 => Activation::Tanh,
                _ => Activation::Sigmoid,
            };
            ModelSpec::mlp(inp, &hidden, out, act, dp as f32 / 100.0)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Saving and loading a model must preserve its forward function exactly
    /// (bit-for-bit: weights are stored losslessly).
    #[test]
    fn hml_roundtrip_preserves_forward(spec in mlp_spec(), seed in 0u64..1000, tag in 0u32..1_000_000) {
        let mut model = spec.build(seed).unwrap();
        let input_dim = spec.input_shape[0];
        let x = Tensor::from_shape_fn([3, input_dim], |ix| {
            ((ix[0] * 7 + ix[1] * 3) % 11) as f32 * 0.17 - 0.8
        });
        let before = model.forward(&x).unwrap();

        let dir = std::env::temp_dir().join("hpacml-nn-prop");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("m{tag}.hml"));
        save_model(&path, &spec, &mut model, None, None).unwrap();
        let loaded = load_model(&path).unwrap();
        prop_assert_eq!(loaded.spec, spec.clone());
        let after = loaded.model.forward(&x).unwrap();
        prop_assert_eq!(before.data(), after.data());
        let _ = std::fs::remove_file(&path);
    }

    /// Parameter counts computed from the spec must match the built model,
    /// and shape inference must match actual forward shapes.
    #[test]
    fn spec_metadata_matches_reality(spec in mlp_spec(), seed in 0u64..1000) {
        let model = spec.build(seed).unwrap();
        prop_assert_eq!(model.param_count(), spec.param_count());
        let out_shape = spec.output_shape().unwrap();
        let x = Tensor::zeros([2, spec.input_shape[0]]);
        let y = model.forward(&x).unwrap();
        prop_assert_eq!(y.dims()[0], 2);
        prop_assert_eq!(&y.dims()[1..], out_shape.as_slice());
    }

    /// Normalizer transform/inverse roundtrip over random data.
    #[test]
    fn normalizer_roundtrips(
        rows in 2usize..20,
        cols in 1usize..6,
        scale in 1.0f32..1000.0,
    ) {
        let x = Tensor::from_shape_fn([rows, cols], |ix| {
            ((ix[0] * 31 + ix[1] * 17) % 23) as f32 * scale - scale
        });
        let norm = Normalizer::fit(&x, NormAxis::PerFeature).unwrap();
        let t = norm.transform(&x);
        let back = norm.inverse(&t);
        let err = back.max_abs_diff(&x).unwrap();
        prop_assert!(err < scale as f64 * 1e-3, "roundtrip error {err}");
    }

    /// Training must strictly reduce loss on a trivially learnable problem
    /// regardless of the seed.
    #[test]
    fn one_linear_step_reduces_loss(seed in 0u64..200) {
        use hpacml_nn::layer::Linear;
        use hpacml_nn::loss::Loss;
        use hpacml_nn::optim::{OptimState, Optimizer};
        use hpacml_nn::Sequential;

        let mut model = Sequential::new(vec![Box::new(Linear::new(
            2,
            1,
            &mut hpacml_nn::init::rng(seed),
        ))]);
        let x = Tensor::from_vec(vec![0.5, -0.3, -0.2, 0.8, 0.1, 0.4, -0.6, -0.9], [4, 2]).unwrap();
        let y = Tensor::from_vec(vec![1.0, -1.0, 0.5, -0.5], [4, 1]).unwrap();
        let mut st = OptimState::new(Optimizer::sgd(0.05, 0.0, 0.0));
        let mut losses = Vec::new();
        for _ in 0..8 {
            model.zero_grad();
            let pred = model.forward_train(&x).unwrap();
            let (l, dl) = Loss::Mse.eval(&pred, &y).unwrap();
            model.backward(&dl).unwrap();
            st.step(&mut model);
            losses.push(l);
        }
        prop_assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "{losses:?}"
        );
    }
}
