//! N threads racing `InferenceEngine::global()` on the same model path must
//! observe exactly one load (the engine re-checks under the write lock), and
//! every thread must see the same model instance.
//!
//! This file holds only this test so the global engine's load counter is not
//! perturbed by unrelated tests in the same process.

use hpacml_nn::spec::{Activation, ModelSpec};
use hpacml_nn::InferenceEngine;
use hpacml_tensor::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn global_engine_loads_same_path_exactly_once_across_threads() {
    let dir = std::env::temp_dir().join("hpacml-engine-concurrency");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("race.hml");
    let spec = ModelSpec::mlp(3, &[8], 2, Activation::Tanh, 0.0);
    let mut model = spec.build(99).unwrap();
    hpacml_nn::serialize::save_model(&path, &spec, &mut model, None, None).unwrap();

    let engine = InferenceEngine::global();
    engine.clear(); // drop anything earlier code in this process cached
    let loads_before = engine.load_count();

    let threads = 16;
    let go = Arc::new(AtomicBool::new(false));
    let x = Tensor::full([4, 3], 0.2f32);
    let outputs: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let go = Arc::clone(&go);
                let path = path.clone();
                let x = x.clone();
                scope.spawn(move || {
                    // Spin so every thread hits `load` as simultaneously as
                    // the scheduler allows.
                    while !go.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    let model = InferenceEngine::global().load(&path).unwrap();
                    model.infer(&x).unwrap().data().to_vec()
                })
            })
            .collect();
        go.store(true, Ordering::Release);
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    assert_eq!(
        engine.load_count() - loads_before,
        1,
        "racing threads must observe exactly one model load"
    );
    for out in &outputs[1..] {
        assert_eq!(out, &outputs[0], "all threads must see the same weights");
    }
}
