//! Counting-allocator proof that the **parallel** forward path — the
//! work-stealing dispatch, per-thread pack/im2col scratch, and both conv
//! parallel routes — keeps the zero-allocation steady state.
//!
//! Unlike `alloc_free_compiled.rs` (thread-local counter, calling thread
//! only), the counter here is **process-global**: an allocation on any
//! pool worker while tracking is on fails the test. That is the point —
//! the dispatcher publishes jobs into preallocated slots and every
//! participant's scratch is warmed by the broadcast reserve, so after
//! warm-up no thread anywhere allocates.

use hpacml_nn::spec::{Activation, LayerSpec, ModelSpec};
use hpacml_nn::ForwardWorkspace;
use hpacml_par::{with_pool, Pool};
use hpacml_tensor::Tensor;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct CountingAlloc;

static TRACKING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: a pass-through `GlobalAlloc`: every method delegates to `System`
// under the caller's own contract; the side counters are lock-free statics
// that never allocate and never touch the layout.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout contract as `System.alloc`, to which this delegates.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded unchanged from our caller.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: same ptr/layout contract as `System.dealloc`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` came from `System.alloc` via the method above.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: same contract as `System.realloc`, to which this delegates.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if TRACKING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout`/`new_size` are forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Count allocations performed **anywhere in the process** during `f`.
fn global_allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    TRACKING.store(true, Ordering::SeqCst);
    f();
    TRACKING.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::Relaxed) - before
}

/// The bench MLP (w128 at batch 1024), forwarded on a 7-worker pool: the
/// row-parallel GEMM dispatch must be allocation-free on every thread.
#[test]
fn parallel_mlp_forward_is_globally_allocation_free() {
    let spec = ModelSpec::mlp(6, &[128, 64], 1, Activation::ReLU, 0.0);
    let mut model = spec.build(3).unwrap();
    hpacml_nn::compile_for_inference(&mut model);
    let x = Tensor::from_shape_fn([1024, 6], |ix| (ix[0] * 7 + ix[1]) as f32 * 0.001 - 0.5);
    let pool = Pool::new(7);
    with_pool(&pool, || {
        let mut ws = ForwardWorkspace::new();
        // Warm-up: arenas + broadcast scratch reserve + one full forward
        // (first dispatch touches every worker's thread-locals).
        ws.reserve(&model, x.dims()).unwrap();
        ws.forward(&model, &x).unwrap();
        let allocs = global_allocations_during(|| {
            for _ in 0..20 {
                ws.forward(&model, &x).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "parallel MLP steady state must not allocate on any thread"
        );
    });
    let stats = pool.stats();
    assert!(stats.jobs > 0, "the forward must actually have dispatched");
}

fn cnn_spec() -> ModelSpec {
    ModelSpec::new(
        vec![4, 24, 48],
        vec![
            LayerSpec::Conv2d {
                in_ch: 4,
                out_ch: 4,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            LayerSpec::Tanh,
            LayerSpec::Conv2d {
                in_ch: 4,
                out_ch: 4,
                kernel: 3,
                stride: 2,
                pad: 1,
            },
            LayerSpec::ReLU,
        ],
    )
}

/// Batch 8 on a 7-worker pool saturates it → the sample-parallel conv
/// route, where every worker stages im2col in its own scratch. The
/// broadcast reserve must have warmed all of them.
#[test]
fn conv_sample_parallel_route_is_globally_allocation_free() {
    let mut model = cnn_spec().build(5).unwrap();
    hpacml_nn::compile_for_inference(&mut model);
    let x = Tensor::from_shape_fn([8, 4, 24, 48], |ix| {
        ((ix[0] + 1) * (ix[2] * 48 + ix[3])) as f32 * 0.002 - 0.4
    });
    let pool = Pool::new(7);
    with_pool(&pool, || {
        let mut ws = ForwardWorkspace::new();
        ws.reserve(&model, x.dims()).unwrap();
        ws.forward(&model, &x).unwrap();
        let allocs = global_allocations_during(|| {
            for _ in 0..10 {
                ws.forward(&model, &x).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "sample-parallel conv steady state must not allocate on any thread"
        );
    });
}

/// Batch 2 on a 7-worker pool starves the sample axis → the intra-sample
/// route (parallel im2col fill + row-parallel GEMM). Run it *uncompiled*
/// so the weight also packs into the per-thread A scratch each forward —
/// the most allocation-prone variant of the new route.
#[test]
fn conv_intra_sample_route_is_globally_allocation_free() {
    let model = cnn_spec().build(7).unwrap(); // uncompiled: packs per forward
    let x = Tensor::from_shape_fn([2, 4, 24, 48], |ix| {
        ((ix[1] + 1) * (ix[2] * 48 + ix[3])) as f32 * 0.003 - 0.2
    });
    let pool = Pool::new(7);
    with_pool(&pool, || {
        let mut ws = ForwardWorkspace::new();
        ws.reserve(&model, x.dims()).unwrap();
        ws.forward(&model, &x).unwrap();
        let allocs = global_allocations_during(|| {
            for _ in 0..10 {
                ws.forward(&model, &x).unwrap();
            }
        });
        assert_eq!(
            allocs, 0,
            "intra-sample conv steady state must not allocate on any thread"
        );
    });
}
