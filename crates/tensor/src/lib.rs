//! Dense n-dimensional tensors and zero-copy strided views for HPAC-ML.
//!
//! This crate is the reproduction's stand-in for the tensor layer the paper
//! gets from Torch: owned dense tensors for the NN engine, plus strided
//! *views* over application memory that the data bridge (Fig. 4 of the paper)
//! wraps around benchmark arrays without copying. Gather (view → dense) and
//! scatter (dense → view) are the two memory-concretization primitives the
//! bridge is built on.
//!
//! Compute kernels (matmul, im2col convolution, pooling) run on the
//! [`hpacml_par`] pool, the same substrate the accurate benchmark kernels run
//! on, so surrogate-vs-accurate timings compare like for like.

pub mod gemm;
pub mod linalg;
pub mod ops;
pub mod quant;
pub mod scalar;
pub mod shape;
pub mod tensor;
pub mod view;

pub use gemm::{Act, Bias, Epilogue, PackedA, PackedB};
pub use quant::{Precision, QPackedB};
pub use scalar::Scalar;
pub use shape::Shape;
pub use tensor::Tensor;
pub use view::{gather_chunks_raw, scatter_chunks_raw, View, ViewMut};

/// Errors raised by tensor construction and shape manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements implied by the shape does not match the data.
    ShapeDataMismatch { expected: usize, actual: usize },
    /// Reshape target has a different element count.
    ReshapeMismatch { from: Vec<usize>, to: Vec<usize> },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange { axis: usize, rank: usize },
    /// Concatenation inputs disagree on non-concat dimensions.
    ConcatShapeMismatch(String),
    /// A view would read or write outside the underlying buffer.
    ViewOutOfBounds(String),
    /// Dimension mismatch in a binary op (matmul, zip, ...).
    DimMismatch(String),
    /// A linear-algebra routine failed (e.g. Cholesky of a non-SPD matrix).
    Numerical(String),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeDataMismatch { expected, actual } => {
                write!(f, "shape expects {expected} elements but data has {actual}")
            }
            TensorError::ReshapeMismatch { from, to } => {
                write!(
                    f,
                    "cannot reshape {from:?} into {to:?}: element counts differ"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::ConcatShapeMismatch(s) => write!(f, "concat shape mismatch: {s}"),
            TensorError::ViewOutOfBounds(s) => write!(f, "view out of bounds: {s}"),
            TensorError::DimMismatch(s) => write!(f, "dimension mismatch: {s}"),
            TensorError::Numerical(s) => write!(f, "numerical error: {s}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
