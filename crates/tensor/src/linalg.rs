//! Small dense linear algebra (f64) for the Gaussian-process layer of the
//! Bayesian-optimization search: Cholesky factorization and triangular solves.

use crate::{Result, TensorError};

/// In-place Cholesky factorization of a symmetric positive-definite matrix
/// stored row-major in `a` (n×n). On success the lower triangle holds L with
/// `A = L·Lᵀ`; the strict upper triangle is zeroed.
pub fn cholesky(a: &mut [f64], n: usize) -> Result<()> {
    if a.len() != n * n {
        return Err(TensorError::DimMismatch(format!(
            "cholesky: buffer {} vs n*n {}",
            a.len(),
            n * n
        )));
    }
    for j in 0..n {
        // Diagonal.
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(TensorError::Numerical(format!(
                "cholesky: non-positive pivot {d:.3e} at row {j} (matrix not SPD)"
            )));
        }
        let djj = d.sqrt();
        a[j * n + j] = djj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / djj;
        }
        // Zero the strict upper triangle for cleanliness.
        for i in 0..j {
            a[i * n + j] = 0.0;
        }
    }
    Ok(())
}

/// Solve `L·x = b` for lower-triangular L (forward substitution), in place.
pub fn solve_lower(l: &[f64], n: usize, b: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
}

/// Solve `Lᵀ·x = b` for lower-triangular L (back substitution), in place.
pub fn solve_lower_transpose(l: &[f64], n: usize, b: &mut [f64]) {
    debug_assert_eq!(l.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[k * n + i] * b[k];
        }
        b[i] = s / l[i * n + i];
    }
}

/// Solve `A·x = b` for SPD `A` via Cholesky; `a` is consumed as scratch.
pub fn solve_spd(a: &mut [f64], n: usize, b: &mut [f64]) -> Result<()> {
    cholesky(a, n)?;
    solve_lower(a, n, b);
    solve_lower_transpose(a, n, b);
    Ok(())
}

/// log-determinant of an SPD matrix given its Cholesky factor L.
pub fn logdet_from_cholesky(l: &[f64], n: usize) -> f64 {
    (0..n).map(|i| l[i * n + i].ln()).sum::<f64>() * 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Vec<f64> {
        // A = M·Mᵀ + n·I is SPD for any M.
        let mut s = seed;
        let mut m = vec![0.0f64; n * n];
        for v in m.iter_mut() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
        }
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = if i == j { n as f64 } else { 0.0 };
                for k in 0..n {
                    acc += m[i * n + k] * m[j * n + k];
                }
                a[i * n + j] = acc;
            }
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let n = 8;
        let a = spd(n, 7);
        let mut l = a.clone();
        cholesky(&mut l, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut recon = 0.0;
                for k in 0..n {
                    recon += l[i * n + k] * l[j * n + k];
                }
                assert!((recon - a[i * n + j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&mut a, 2),
            Err(TensorError::Numerical(_))
        ));
    }

    #[test]
    fn solve_spd_solves() {
        let n = 12;
        let a = spd(n, 13);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) * 0.5 - 2.0).collect();
        // b = A·x
        let mut b = vec![0.0f64; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[i * n + j] * x_true[j];
            }
        }
        let mut scratch = a.clone();
        solve_spd(&mut scratch, n, &mut b).unwrap();
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8);
        }
    }

    #[test]
    fn triangular_solves_are_inverses() {
        let n = 6;
        let mut l = spd(n, 17);
        cholesky(&mut l, n).unwrap();
        let orig: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let mut b = orig.clone();
        solve_lower(&l, n, &mut b);
        // Multiply back: L·b should give orig.
        for i in (0..n).rev() {
            let mut s = 0.0;
            for k in 0..=i {
                s += l[i * n + k] * b[k];
            }
            assert!((s - orig[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn logdet_matches_product_of_pivots() {
        let n = 5;
        let mut l = spd(n, 23);
        cholesky(&mut l, n).unwrap();
        let ld = logdet_from_cholesky(&l, n);
        let direct: f64 = (0..n).map(|i| l[i * n + i]).product::<f64>().powi(2).ln();
        assert!((ld - direct).abs() < 1e-9);
    }
}
