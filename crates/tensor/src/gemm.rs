//! Cache-blocked, register-tiled GEMM with packed operand panels and fused
//! epilogues — the compute core of the inference hot path.
//!
//! # Why this module exists
//!
//! The naive kernels in [`crate::ops`] compute each output element with a
//! single-accumulator dot product. That loop carries a dependency on the
//! accumulator, so the CPU retires at best one add per float-add latency —
//! a few percent of machine peak — and every `Linear` layer then makes two
//! *more* full sweeps over its output for bias and activation. This module
//! restructures the same arithmetic into the classic BLIS-style hierarchy:
//!
//! * **register tile** ([`MR`] × [`NR`]): the micro-kernel keeps an
//!   `MR × NR` accumulator block in registers and sweeps the shared `k`
//!   dimension once. The `MR * NR` accumulator chains are independent, so
//!   the autovectorizer turns the inner loop into wide mul/add (or FMA,
//!   where the target contracts) with enough instruction-level parallelism
//!   to hide the floating-point latency;
//! * **panel packing** ([`PackedB`] / [`PackedA`]): the `B` operand is
//!   repacked into `NR`-wide column panels laid out contiguously in the
//!   `k` direction, so every micro-kernel step loads one cache line
//!   instead of gathering a strided column. Inference weights never
//!   change, so layers pack **once at model load** and steady-state
//!   forwards never repack;
//! * **cache blocking** ([`KC`]): the `k` dimension is walked in `KC`-deep
//!   slabs so the active `B` panel stays L1-resident for large problems;
//! * **fused epilogue** ([`Epilogue`]): β/bias/activation are applied to
//!   each output tile while it is still register/L1-hot, deleting the
//!   separate full-tensor bias and activation sweeps.
//!
//! # Determinism
//!
//! Every output element is accumulated in **fixed ascending-`k` order**
//! with one accumulator chain per element, exactly like the naive
//! reference kernel (`acc = acc + a*b`, no `mul_add`). Tiling only changes
//! *which elements* are computed together, never the order of additions
//! within an element, and `KC` slabs resume the same chain (partials are
//! stored and reloaded exactly — f32/f64 round-trips are lossless). The
//! result is therefore **bit-identical** across:
//!
//! * thread counts (parallelism splits rows/samples, never the `k` sum),
//! * blocking parameters (`KC`, stripe sizes — see
//!   [`matmul_transb_packed_into_kc`]),
//! * packed vs. unpacked operands, fused vs. unfused epilogues, and
//! * the batch size a row happens to be computed under — the invariant
//!   the runtime's dynamic batching relies on.
//!
//! # Blocking parameters
//!
//! | const | value | role |
//! |-------|-------|------|
//! | [`MR`]  | 8   | rows per register tile (accumulator block height) |
//! | [`NR`]  | 16  | columns per register tile and per packed panel |
//! | [`KC`]  | 256 | k-depth per cache slab (`NR*KC` B-panel ≤ 16 KiB f32) |
//!
//! [`par_rows_per_block`] is the one shared heuristic that converts these
//! into parallel task sizes for every kernel in the crate.

use crate::scalar::Scalar;
use crate::tensor::Tensor;
use crate::{Result, TensorError};
use std::cell::RefCell;

/// Rows per register tile: height of the accumulator block held in
/// registers by the micro-kernel.
pub const MR: usize = 8;

/// Columns per register tile **and** width of one packed `B` panel. The
/// micro-kernel's unit of SIMD work is an `NR`-wide row.
pub const NR: usize = 16;

/// `k`-depth of one cache slab. One `B` panel slab is `NR * KC` elements
/// (16 KiB at f32), sized to stay L1-resident while a C stripe is swept.
pub const KC: usize = 256;

// ---------------------------------------------------------------------------
// Parallel blocking heuristic (shared by matmul / conv / gemm)
// ---------------------------------------------------------------------------

/// Parallelism threshold: below this many multiply-adds a kernel runs
/// inline on the calling thread — dispatch overhead would dominate.
///
/// Measured basis (re-tuned against the work-stealing pool on the
/// `bench_json` shapes): one pool dispatch costs on the order of a few
/// microseconds (publish + wake + barrier), and the micro-kernel sustains
/// a few multiply-adds per cycle, so ~32 Ki multiply-adds (≈ 10 µs of
/// work) is the break-even point below which the dispatch itself would be
/// a measurable fraction of the kernel.
pub const PAR_FLOPS_MIN: usize = 1 << 15;

/// Multiply-adds targeted per parallel task. Tasks much smaller than this
/// pay per-claim overhead (an atomic compare-exchange each); much larger
/// ones defeat stealing — a straggler's whole task is indivisible, so the
/// tail latency is one task. `PAR_FLOPS_MIN * 8` ≈ 262 Ki multiply-adds
/// keeps the MLP bench layer (`m=1024, n=128, k=128` → 16 rows/task, 64
/// tasks) fine-grained enough that 8 participants each claim ~8 tasks and
/// the steal path can level any imbalance.
pub const PAR_TASK_FLOPS: usize = PAR_FLOPS_MIN * 8;

/// Lower bound on tasks per participant when a problem is row-abundant:
/// with at least this many claimable tasks per thread, the work-stealing
/// cursor can rebalance a straggler without the tail dominating. 4 keeps
/// per-claim overhead under a percent at [`PAR_TASK_FLOPS`] task sizes.
pub const PAR_TASKS_PER_THREAD: usize = 4;

/// The one block-size heuristic shared by every row-parallel kernel
/// (GEMM stripes, the legacy matmul family, convolution sample blocks):
/// how many of the `m` output rows of an `[m, n]` result (each costing
/// `n * k` multiply-adds) one parallel task should own. Always in `1..=m`.
///
/// Two forces: the *flops* term targets [`PAR_TASK_FLOPS`] multiply-adds
/// per task (dispatch amortization), and the *balance* term caps a task
/// at `m / (threads * PAR_TASKS_PER_THREAD)` rows so that even
/// flops-light, row-heavy problems split into enough tasks for every
/// participant of the current pool to claim several. The thread count
/// only moves *where stripe boundaries fall*, never how any output
/// element accumulates its `k`-sum, so results stay bitwise identical
/// across pool sizes (pinned by `gemm_determinism`).
///
/// Keeping matmul, conv and GEMM on this single function means their task
/// granularities cannot drift apart as the constants are tuned.
pub fn par_rows_per_block(m: usize, n: usize, k: usize) -> usize {
    let flops_rows = (PAR_TASK_FLOPS / (n * k).max(1)).max(1);
    let threads = hpacml_par::current_parallelism();
    let balance_rows = m.div_ceil(threads * PAR_TASKS_PER_THREAD).max(MR);
    flops_rows.min(balance_rows).clamp(1, m.max(1))
}

/// Is an `[m, n] = [m, k] · [k, n]` problem big enough to leave the
/// calling thread? (Single-row problems never are: rows are the parallel
/// axis.)
pub fn par_worthwhile(m: usize, n: usize, k: usize) -> bool {
    m > 1 && m * n * k >= PAR_FLOPS_MIN
}

/// The shared "cores in use" heuristic: does an outer parallel loop over
/// `outer` independent items already saturate the current pool? When it
/// does, inner kernels should run inline (sample-level parallelism wins);
/// when it does not — small batches on a wide pool — the forward path
/// drops to intra-GEMM row parallelism instead. A pure function of the
/// item count and the pool width, so whether a sample was computed inside
/// a big batch or alone never changes which math runs on its data.
pub fn outer_saturates(outer: usize) -> bool {
    outer >= hpacml_par::current_parallelism()
}

// ---------------------------------------------------------------------------
// Epilogue
// ---------------------------------------------------------------------------

/// Activation functions the epilogue can fuse. The formulas are exactly
/// the ones the `nn` activation layers use, so a fused
/// `Linear→activation` pair is bit-identical to the unfused stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// `max(v, 0)`
    Relu,
    /// `tanh(v)` via [`Scalar::tanh_activation`] (vectorizable rational
    /// approximation for `f32`; see [`crate::scalar::fast_tanh_f32`])
    Tanh,
    /// `1 / (1 + e^-v)`
    Sigmoid,
}

impl Act {
    /// Apply the activation to one value.
    #[inline(always)]
    pub fn apply<T: Scalar>(self, v: T) -> T {
        match self {
            Act::Relu => v.maximum(T::ZERO),
            Act::Tanh => v.tanh_activation(),
            Act::Sigmoid => T::ONE / (T::ONE + (-v).exp()),
        }
    }
}

/// Which axis a fused bias broadcasts along.
#[derive(Debug, Clone, Copy)]
pub enum Bias<'a, T> {
    /// No bias term.
    None,
    /// `c[i, j] += bias[j]` — one bias per output column (Linear layers,
    /// where columns are output features).
    Col(&'a [T]),
    /// `c[i, j] += bias[i]` — one bias per output row (convolution GEMM,
    /// where rows are filters).
    Row(&'a [T]),
}

/// Fused epilogue: what happens to each output tile after its `k`-sum
/// finishes, while it is still register-hot. Order is always
/// `acc → (+bias) → activation`, matching the unfused layer stack
/// (`matmul` then `add_bias_rows` then activation map) bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct Epilogue<'a, T> {
    pub bias: Bias<'a, T>,
    pub act: Option<Act>,
}

impl<'a, T> Epilogue<'a, T> {
    /// Plain overwrite: `c = a·b`.
    pub fn none() -> Self {
        Epilogue {
            bias: Bias::None,
            act: None,
        }
    }

    /// `c = a·b + bias[col]`.
    pub fn col_bias(bias: &'a [T]) -> Self {
        Epilogue {
            bias: Bias::Col(bias),
            act: None,
        }
    }

    /// `c = a·b + bias[row]`.
    pub fn row_bias(bias: &'a [T]) -> Self {
        Epilogue {
            bias: Bias::Row(bias),
            act: None,
        }
    }

    /// Append an optional activation to whatever this epilogue does.
    pub fn with_act(mut self, act: Option<Act>) -> Self {
        self.act = act;
        self
    }
}

// ---------------------------------------------------------------------------
// Packed operands
// ---------------------------------------------------------------------------

/// The `B` operand of `C[m,n] = A[m,k] · B[k,n]`, repacked into `NR`-wide
/// column panels: panel `p` holds columns `p*NR .. p*NR+NR` laid out
/// `k`-major (`data[(p*k + kk)*NR + j]`), zero-padded past column `n`.
/// Each micro-kernel step then loads one contiguous `NR`-vector.
///
/// Inference weights are immutable, so `Linear` layers build one of these
/// **once at model load** and every forward pass reuses it.
#[derive(Debug, Clone, Default)]
pub struct PackedB<T: Scalar> {
    k: usize,
    n: usize,
    data: Vec<T>,
}

impl<T: Scalar> PackedB<T> {
    pub fn new() -> Self {
        PackedB {
            k: 0,
            n: 0,
            data: Vec::new(),
        }
    }

    /// Logical dims of the packed matrix: `[k, n]`.
    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of `NR`-wide panels (last one possibly zero-padded).
    pub fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Elements a pack of `[k, n]` needs — for workspace pre-sizing.
    pub fn packed_elems(k: usize, n: usize) -> usize {
        n.div_ceil(NR) * k * NR
    }

    fn prepare(&mut self, k: usize, n: usize) {
        self.k = k;
        self.n = n;
        let need = Self::packed_elems(k, n);
        // Grow-only, in place: steady-state repacks are allocation-free.
        if self.data.len() < need {
            self.data.resize(need, T::ZERO);
        }
    }

    /// Pack from row-major `[k, n]` storage (columns of `B` as stored).
    pub fn pack_cols_into(&mut self, b: &[T], k: usize, n: usize) {
        assert_eq!(b.len(), k * n, "PackedB::pack_cols_into: bad B length");
        self.prepare(k, n);
        for p in 0..self.panels() {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &mut self.data[p * k * NR..(p + 1) * k * NR];
            for (kk, row) in panel.chunks_exact_mut(NR).enumerate() {
                let src = &b[kk * n + j0..kk * n + j0 + w];
                row[..w].copy_from_slice(src);
                for v in &mut row[w..] {
                    *v = T::ZERO;
                }
            }
        }
    }

    /// Pack from row-major `[n, k]` storage — the `Bᵀ` ("transb") layout
    /// `Linear` weights use (`w[out, in]`, logical `B = wᵀ`).
    pub fn pack_rows_into(&mut self, bt: &[T], n: usize, k: usize) {
        assert_eq!(bt.len(), n * k, "PackedB::pack_rows_into: bad B length");
        self.prepare(k, n);
        for p in 0..self.panels() {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &mut self.data[p * k * NR..(p + 1) * k * NR];
            for (kk, row) in panel.chunks_exact_mut(NR).enumerate() {
                for (j, v) in row.iter_mut().enumerate() {
                    *v = if j < w {
                        bt[(j0 + j) * k + kk]
                    } else {
                        T::ZERO
                    };
                }
            }
        }
    }

    /// Pack a rank-2 tensor stored in transb layout `[n, k]`.
    pub fn from_transb(t: &Tensor<T>) -> Result<Self> {
        if t.rank() != 2 {
            return Err(TensorError::DimMismatch(format!(
                "PackedB::from_transb: expected rank 2, got {:?}",
                t.dims()
            )));
        }
        let (n, k) = (t.dims()[0], t.dims()[1]);
        let mut p = PackedB::new();
        p.pack_rows_into(t.data(), n, k);
        Ok(p)
    }

    /// One panel's `k`-major data (`k * NR` elements), offset to slab `k0`.
    #[inline]
    fn panel_slab(&self, p: usize, k0: usize) -> &[T] {
        &self.data[p * self.k * NR + k0 * NR..(p + 1) * self.k * NR]
    }
}

/// The `A` operand, repacked by `MR`-row blocks: full blocks are stored
/// `k`-major interleaved (`data[(blk*k + kk)*MR + i]`) so the micro-kernel
/// reads its `MR` broadcast values from one cache line; the `m % MR`
/// remainder rows are appended row-major and processed by the single-row
/// kernel. `Conv2d` weights (`[filters, c*kh*kw]`) pre-pack into this at
/// model load.
#[derive(Debug, Clone, Default)]
pub struct PackedA<T: Scalar> {
    m: usize,
    k: usize,
    blocks: usize,
    data: Vec<T>,
}

impl<T: Scalar> PackedA<T> {
    pub fn new() -> Self {
        PackedA {
            m: 0,
            k: 0,
            blocks: 0,
            data: Vec::new(),
        }
    }

    pub fn m(&self) -> usize {
        self.m
    }

    pub fn k(&self) -> usize {
        self.k
    }

    /// Pack from row-major `[m, k]` storage.
    pub fn pack_rows_into(&mut self, a: &[T], m: usize, k: usize) {
        assert_eq!(a.len(), m * k, "PackedA::pack_rows_into: bad A length");
        self.m = m;
        self.k = k;
        self.blocks = m / MR;
        if self.data.len() < m * k {
            self.data.resize(m * k, T::ZERO);
        }
        for blk in 0..self.blocks {
            let dst = &mut self.data[blk * k * MR..(blk + 1) * k * MR];
            for (kk, row) in dst.chunks_exact_mut(MR).enumerate() {
                for (i, v) in row.iter_mut().enumerate() {
                    *v = a[(blk * MR + i) * k + kk];
                }
            }
        }
        // Remainder rows verbatim.
        let rem0 = self.blocks * MR;
        self.data[rem0 * k..m * k].copy_from_slice(&a[rem0 * k..]);
    }

    /// Pack a row-major `[m, k]` tensor view (any rank collapsed by caller).
    pub fn from_rows(data: &[T], m: usize, k: usize) -> Self {
        let mut p = PackedA::new();
        p.pack_rows_into(data, m, k);
        p
    }

    #[inline]
    fn block_slab(&self, blk: usize, k0: usize) -> &[T] {
        &self.data[blk * self.k * MR + k0 * MR..(blk + 1) * self.k * MR]
    }

    /// The row-major remainder region from `row` to the end (`row` must be
    /// past the packed blocks) — multi-row remainder tiles read across
    /// consecutive rows with stride `k`.
    #[inline]
    fn rem_rows(&self, row: usize) -> &[T] {
        debug_assert!(row >= self.blocks * MR && row < self.m);
        &self.data[row * self.k..self.m * self.k]
    }
}

// ---------------------------------------------------------------------------
// Operand sources
// ---------------------------------------------------------------------------

/// Where the `A` operand comes from.
#[derive(Clone, Copy)]
pub enum ASource<'a, T: Scalar> {
    /// Row-major `[m, k]` slice, read in place (no packing sweep).
    Rows(&'a [T]),
    /// Pre-packed `MR`-row blocks (see [`PackedA`]).
    Packed(&'a PackedA<T>),
}

/// Where the `B` operand comes from.
#[derive(Clone, Copy)]
pub enum BSource<'a, T: Scalar> {
    /// Row-major `[k, n]` slice, read in place. Panel loads are contiguous
    /// here too (a `B` row *is* `n` consecutive columns); the ragged last
    /// panel falls back to a per-column scalar loop.
    Cols(&'a [T]),
    /// Pre-packed `NR`-wide zero-padded panels (see [`PackedB`]).
    Packed(&'a PackedB<T>),
}

// ---------------------------------------------------------------------------
// Micro-kernel
// ---------------------------------------------------------------------------

/// The register-tiled micro-kernel: `M × NR` accumulator tile over a
/// `klen`-deep slab.
///
/// * `a[kk * a_kk + i * a_i]` is `A[row0+i, k0+kk]` — strides cover packed
///   (`a_kk = MR, a_i = 1`), row-major (`a_kk = 1, a_i = k`) and
///   single-row (`a_kk = 1, a_i = 0`) layouts with one body.
/// * `b[kk * b_kk + j]` is `B[k0+kk, j0+j]`, contiguous over `j` in both
///   packed (`b_kk = NR`) and row-major (`b_kk = n`) layouts.
/// * `accumulate` resumes a previous slab's partials from `c`;
///   `finish` applies the epilogue (only on the last slab).
///
/// Every `acc[i][j]` is one add-chain in ascending `kk` — the determinism
/// contract of the module.
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
#[inline(never)] // keep the hot loop a small, standalone optimization unit:
                 // inlined into the (large) macro-kernel, LLVM runs out of unroll budget,
                 // spills the accumulator tile to the stack and never vectorizes it.
fn micro_tile<T: Scalar, const M: usize>(
    a: &[T],
    a_kk: usize,
    a_i: usize,
    b: &[T],
    b_kk: usize,
    klen: usize,
    c: &mut [T],
    ldc: usize,
    cols: usize,
    accumulate: bool,
    finish: Option<(&Epilogue<'_, T>, usize, usize)>,
) {
    let mut acc = [[T::ZERO; NR]; M];
    if accumulate {
        for (i, arow) in acc.iter_mut().enumerate() {
            for (j, v) in arow.iter_mut().enumerate().take(cols) {
                *v = c[i * ldc + j];
            }
        }
    }
    for kk in 0..klen {
        let brow = &b[kk * b_kk..kk * b_kk + NR];
        let abase = kk * a_kk;
        for (i, arow) in acc.iter_mut().enumerate() {
            let av = a[abase + i * a_i];
            for (j, v) in arow.iter_mut().enumerate() {
                // One chain per element; mul+add (not mul_add) so targets
                // without FMA autovectorize instead of calling libm, and
                // the sum matches the naive reference bit for bit.
                *v += av * brow[j];
            }
        }
    }
    if let Some((epi, row0, col0)) = finish {
        finish_tile::<T, M>(&mut acc, epi, row0, col0, cols);
    }
    for (i, arow) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + cols].copy_from_slice(&arow[..cols]);
    }
}

/// Apply the fused epilogue to one register tile — shared by the f32/f64
/// micro-kernel above and the quantized micro-kernels in [`crate::quant`],
/// so every precision runs the *same* float expression after its `k`-sum.
///
/// Branch-free full-width passes over the register tile: the
/// bias/activation selectors are matched once per row, never per element,
/// so each pass vectorizes like the k-loop. Padding lanes past `cols`
/// compute garbage and are clipped by the caller's store.
#[inline(always)]
pub(crate) fn finish_tile<T: Scalar, const M: usize>(
    acc: &mut [[T; NR]; M],
    epi: &Epilogue<'_, T>,
    row0: usize,
    col0: usize,
    cols: usize,
) {
    for (i, arow) in acc.iter_mut().enumerate() {
        match epi.bias {
            Bias::None => {}
            Bias::Col(bias) if cols == NR => {
                let bs = &bias[col0..col0 + NR];
                for (v, b) in arow.iter_mut().zip(bs) {
                    *v += *b;
                }
            }
            Bias::Col(bias) => {
                for (j, v) in arow.iter_mut().enumerate().take(cols) {
                    *v += bias[col0 + j];
                }
            }
            Bias::Row(bias) => {
                let rb = bias[row0 + i];
                for v in arow.iter_mut() {
                    *v += rb;
                }
            }
        }
        match epi.act {
            None => {}
            Some(Act::Relu) => {
                for v in arow.iter_mut() {
                    *v = v.maximum(T::ZERO);
                }
            }
            Some(Act::Tanh) => {
                for v in arow.iter_mut() {
                    *v = v.tanh_activation();
                }
            }
            Some(Act::Sigmoid) => {
                for v in arow.iter_mut() {
                    *v = T::ONE / (T::ONE + (-*v).exp());
                }
            }
        }
    }
}

/// Scalar fallback for the ragged last panel of an unpacked `B`: one
/// ascending-`k` chain per element, bit-identical to [`micro_tile`].
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn tail_cols<T: Scalar>(
    aval: impl Fn(usize, usize) -> T, // (i, kk) -> A[row0+i, k0+kk]
    rows: usize,
    b: &[T], // B slab base: b[kk * n + j] = B[k0+kk, j]
    n: usize,
    jr: std::ops::Range<usize>,
    klen: usize,
    c: &mut [T],
    ldc: usize,
    accumulate: bool,
    finish: Option<(&Epilogue<'_, T>, usize)>, // (epi, row0); col index is j itself
) {
    for i in 0..rows {
        for j in jr.clone() {
            let mut acc = if accumulate { c[i * ldc + j] } else { T::ZERO };
            for kk in 0..klen {
                acc += aval(i, kk) * b[kk * n + j];
            }
            if let Some((epi, row0)) = finish {
                acc = match epi.bias {
                    Bias::None => acc,
                    Bias::Col(bias) => acc + bias[j],
                    Bias::Row(bias) => acc + bias[row0 + i],
                };
                if let Some(act) = epi.act {
                    acc = act.apply(acc);
                }
            }
            c[i * ldc + j] = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Macro-kernel / driver
// ---------------------------------------------------------------------------

/// `C[m, n] = epilogue(A · B)` over raw slices, parallelized over row
/// stripes with the default [`KC`] slab depth. See [`gemm_into_kc`].
pub fn gemm_into<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: ASource<'_, T>,
    b: BSource<'_, T>,
    epi: Epilogue<'_, T>,
    c: &mut [T],
) {
    gemm_into_kc(m, n, k, a, b, epi, c, KC)
}

/// [`gemm_into`] with an explicit cache-slab depth — the tuning/testing
/// hook behind the determinism guarantee ("results do not depend on
/// `kc`"). `c` must be a row-major `[m, n]` slice; every element is
/// overwritten. Panics on operand/size mismatches (callers validate
/// shapes; the tensor-level wrappers return errors instead).
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
pub fn gemm_into_kc<T: Scalar>(
    m: usize,
    n: usize,
    k: usize,
    a: ASource<'_, T>,
    b: BSource<'_, T>,
    epi: Epilogue<'_, T>,
    c: &mut [T],
    kc: usize,
) {
    assert_eq!(c.len(), m * n, "gemm: bad C length");
    match a {
        ASource::Rows(ad) => assert_eq!(ad.len(), m * k, "gemm: bad A length"),
        ASource::Packed(pa) => {
            assert_eq!((pa.m(), pa.k()), (m, k), "gemm: PackedA dims mismatch")
        }
    }
    match b {
        BSource::Cols(bd) => assert_eq!(bd.len(), k * n, "gemm: bad B length"),
        BSource::Packed(pb) => {
            assert_eq!((pb.k(), pb.n()), (k, n), "gemm: PackedB dims mismatch")
        }
    }
    if let Bias::Col(bias) = epi.bias {
        assert_eq!(bias.len(), n, "gemm: col bias length");
    }
    if let Bias::Row(bias) = epi.bias {
        assert_eq!(bias.len(), m, "gemm: row bias length");
    }
    if m == 0 || n == 0 {
        return;
    }
    let kc = kc.max(1);

    // Row stripes are the parallel axis; align the grain to MR rows so
    // every stripe starts on a register-tile boundary.
    if par_worthwhile(m, n, k) {
        let rows = par_rows_per_block(m, n, k).div_ceil(MR) * MR;
        hpacml_par::par_chunks_mut(c, rows * n, |start, stripe| {
            stripe_body(start / n, stripe, m, n, k, a, b, &epi, kc);
        });
    } else {
        stripe_body(0, c, m, n, k, a, b, &epi, kc);
    }
}

/// Compute one C row-stripe (`row0 ..` covering `stripe.len() / n` rows),
/// walking `k` in `kc`-deep slabs and `n` in `NR`-wide panels.
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
fn stripe_body<T: Scalar>(
    row0: usize,
    stripe: &mut [T],
    _m: usize,
    n: usize,
    k: usize,
    a: ASource<'_, T>,
    b: BSource<'_, T>,
    epi: &Epilogue<'_, T>,
    kc: usize,
) {
    let rows = stripe.len() / n;
    let slabs = k.div_ceil(kc).max(1); // k == 0 still runs one epilogue pass
    for slab in 0..slabs {
        let k0 = slab * kc;
        let klen = kc.min(k - k0);
        let accumulate = slab > 0;
        let last = slab + 1 == slabs;

        let mut r = 0;
        // Full MR-row register tiles. Stripes start MR-aligned by
        // construction, so `row0 + r` is always a block boundary here.
        while rows - r >= MR {
            let row = row0 + r;
            let (ab, a_kk, a_i): (&[T], usize, usize) = match a {
                ASource::Rows(ad) => (&ad[row * k + k0..], 1, k),
                ASource::Packed(pa) => {
                    // `row + MR <= m` here, and PackedA blocks cover the
                    // first `m - m % MR` rows, so this block is always in
                    // the packed region.
                    debug_assert!(row / MR < pa.blocks);
                    (pa.block_slab(row / MR, k0), MR, 1)
                }
            };
            panel_sweep::<T, MR>(
                ab,
                a_kk,
                a_i,
                b,
                n,
                k0,
                klen,
                &mut stripe[r * n..(r + MR) * n],
                row,
                accumulate,
                last.then_some(epi),
            );
            r += MR;
        }
        // Remainder rows (< MR): step down through 4/2/1-row tiles so even
        // small-m problems (e.g. a 4-filter convolution) keep several
        // independent accumulator chains in flight. Per-row arithmetic is
        // identical at every tile height, so the decomposition never
        // changes results.
        while r < rows {
            let row = row0 + r;
            let left = rows - r;
            let (ab, a_i): (&[T], usize) = match a {
                ASource::Rows(ad) => (&ad[row * k + k0..], k),
                ASource::Packed(pa) => (&pa.rem_rows(row)[k0..], pa.k),
            };
            let step = if left >= 4 {
                panel_sweep::<T, 4>(
                    ab,
                    1,
                    a_i,
                    b,
                    n,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 4) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                4
            } else if left >= 2 {
                panel_sweep::<T, 2>(
                    ab,
                    1,
                    a_i,
                    b,
                    n,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 2) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                2
            } else {
                panel_sweep::<T, 1>(
                    ab,
                    1,
                    0,
                    b,
                    n,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 1) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                1
            };
            r += step;
        }
    }
}

/// Sweep the `NR`-wide column panels of one `M`-row block.
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
fn panel_sweep<T: Scalar, const M: usize>(
    a: &[T],
    a_kk: usize,
    a_i: usize,
    b: BSource<'_, T>,
    n: usize,
    k0: usize,
    klen: usize,
    c: &mut [T], // M rows, ldc == n
    row0: usize,
    accumulate: bool,
    epi: Option<&Epilogue<'_, T>>,
) {
    match b {
        BSource::Packed(pb) => {
            for p in 0..pb.panels() {
                let j0 = p * NR;
                let cols = NR.min(n - j0);
                micro_tile::<T, M>(
                    a,
                    a_kk,
                    a_i,
                    pb.panel_slab(p, k0),
                    NR,
                    klen,
                    &mut c[j0..],
                    n,
                    cols,
                    accumulate,
                    epi.map(|e| (e, row0, j0)),
                );
            }
        }
        BSource::Cols(bd) => {
            let slab = &bd[k0 * n..];
            let full = n / NR;
            for p in 0..full {
                let j0 = p * NR;
                micro_tile::<T, M>(
                    a,
                    a_kk,
                    a_i,
                    &slab[j0..],
                    n,
                    klen,
                    &mut c[j0..],
                    n,
                    NR,
                    accumulate,
                    epi.map(|e| (e, row0, j0)),
                );
            }
            if full * NR < n {
                tail_cols(
                    |i, kk| a[kk * a_kk + i * a_i],
                    M,
                    slab,
                    n,
                    full * NR..n,
                    klen,
                    c,
                    n,
                    accumulate,
                    epi.map(|e| (e, row0)),
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor-level entry points
// ---------------------------------------------------------------------------

/// `C[m, n] = epilogue(A[m, k] · Bᵀ)` against a pre-packed `B` — the
/// steady-state `Linear` layer kernel: weights packed once at model load,
/// bias and activation fused into the output tiles. `c` is resized in
/// place (allocation-free once it has capacity).
pub fn matmul_transb_packed_into<T: Scalar>(
    a: &Tensor<T>,
    bp: &PackedB<T>,
    epi: Epilogue<'_, T>,
    c: &mut Tensor<T>,
) -> Result<()> {
    matmul_transb_packed_into_kc(a, bp, epi, c, KC)
}

/// [`matmul_transb_packed_into`] with an explicit cache-slab depth (the
/// documented determinism/tuning hook).
pub fn matmul_transb_packed_into_kc<T: Scalar>(
    a: &Tensor<T>,
    bp: &PackedB<T>,
    epi: Epilogue<'_, T>,
    c: &mut Tensor<T>,
    kc: usize,
) -> Result<()> {
    if a.rank() != 2 {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transb_packed: lhs expected rank 2, got {:?}",
            a.dims()
        )));
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != bp.k() {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transb_packed: lhs is [{m}, {k}], packed rhs is [{}, {}]",
            bp.n(),
            bp.k()
        )));
    }
    let n = bp.n();
    c.resize(&[m, n]);
    gemm_into_kc(
        m,
        n,
        k,
        ASource::Rows(a.data()),
        BSource::Packed(bp),
        epi,
        c.data_mut(),
        kc,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Per-thread pack/im2col scratch
// ---------------------------------------------------------------------------

/// Reusable per-thread staging buffers for kernels whose operands are not
/// pre-packed: a [`PackedA`] for on-the-fly weight packing on the conv
/// inner-parallel route, a [`PackedB`] for on-the-fly weight packing
/// (training-time and uncompiled-model `Linear` forwards) and a column
/// buffer for im2col convolution. One instance lives per thread (see
/// [`WithScratch`]), so parallel kernels never contend on — or repack —
/// another thread's panels. Grow-only, so steady-state use is
/// allocation-free.
#[derive(Default)]
pub struct GemmScratch<T: Scalar> {
    pub packed_a: PackedA<T>,
    pub packed_b: PackedB<T>,
    pub col: Vec<T>,
}

impl<T: Scalar> GemmScratch<T> {
    /// Pre-size the buffers (elements) so even a first use allocates
    /// nothing. Grow-only.
    pub fn reserve(&mut self, a_elems: usize, b_elems: usize, col_elems: usize) {
        if self.packed_a.data.len() < a_elems {
            self.packed_a.data.resize(a_elems, T::ZERO);
        }
        if self.packed_b.data.len() < b_elems {
            self.packed_b.data.resize(b_elems, T::ZERO);
        }
        if self.col.len() < col_elems {
            self.col.resize(col_elems, T::ZERO);
        }
    }
}

/// Access to this thread's [`GemmScratch`]. Implemented for the concrete
/// scalar types (thread-locals cannot be generic); kernels that need
/// scratch bound `T: Scalar + WithScratch`.
pub trait WithScratch: Scalar {
    fn with_gemm_scratch<R>(f: impl FnOnce(&mut GemmScratch<Self>) -> R) -> R;
}

macro_rules! impl_with_scratch {
    ($t:ty, $tls:ident) => {
        thread_local! {
            static $tls: RefCell<GemmScratch<$t>> = RefCell::new(GemmScratch::default());
        }
        impl WithScratch for $t {
            fn with_gemm_scratch<R>(f: impl FnOnce(&mut GemmScratch<Self>) -> R) -> R {
                $tls.with(|cell| match cell.try_borrow_mut() {
                    Ok(mut s) => f(&mut s),
                    // Reentrant use (a kernel invoked from inside another
                    // kernel's scratch scope): fall back to a fresh scratch
                    // rather than panicking on the RefCell.
                    Err(_) => f(&mut GemmScratch::default()),
                })
            }
        }
    };
}

impl_with_scratch!(f32, GEMM_SCRATCH_F32);
impl_with_scratch!(f64, GEMM_SCRATCH_F64);

/// Pre-size the calling thread's [`GemmScratch`] — the workspace-reserve
/// hook sessions use so their first forward pass is already allocation-free.
/// Sessions broadcast this across the pool (`hpacml_par::broadcast`) so
/// every worker's per-thread scratch is warm before the first dispatch.
pub fn reserve_scratch<T: WithScratch>(a_elems: usize, b_elems: usize, col_elems: usize) {
    T::with_gemm_scratch(|s| s.reserve(a_elems, b_elems, col_elems));
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The naive reference: one accumulator per element, ascending k —
    /// the order contract the tiled kernel must reproduce bit for bit.
    fn reference(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        bt: &[f32], // [n, k] transb layout
        epi: &Epilogue<'_, f32>,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * bt[j * k + kk];
                }
                acc = match epi.bias {
                    Bias::None => acc,
                    Bias::Col(b) => acc + b[j],
                    Bias::Row(b) => acc + b[i],
                };
                if let Some(act) = epi.act {
                    acc = act.apply(acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    fn lcg(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    #[test]
    fn packed_gemm_bitwise_matches_reference_over_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 7, 30),
            (3, 4, 5),
            (8, 16, 16),
            (9, 3, 17),
            (17, 9, 23),
            (64, 33, 48),
            (70, 64, 64),
        ] {
            let a = Tensor::from_vec(lcg(m as u64 * 31 + 1, m * k), [m, k]).unwrap();
            let bt = Tensor::from_vec(lcg(n as u64 * 17 + 2, n * k), [n, k]).unwrap();
            let bias_c = lcg(99, n);
            let bp = PackedB::from_transb(&bt).unwrap();
            for (name, epi) in [
                ("none", Epilogue::none()),
                ("bias", Epilogue::col_bias(&bias_c)),
                (
                    "bias+relu",
                    Epilogue::col_bias(&bias_c).with_act(Some(Act::Relu)),
                ),
                (
                    "bias+tanh",
                    Epilogue::col_bias(&bias_c).with_act(Some(Act::Tanh)),
                ),
                (
                    "bias+sigmoid",
                    Epilogue::col_bias(&bias_c).with_act(Some(Act::Sigmoid)),
                ),
            ] {
                let mut c = Tensor::zeros([0usize; 2]);
                matmul_transb_packed_into(&a, &bp, epi, &mut c).unwrap();
                let want = reference(m, n, k, a.data(), bt.data(), &epi);
                assert_eq!(c.data(), &want[..], "({m},{k},{n}) epilogue {name}");
            }
        }
    }

    #[test]
    fn kc_slabs_do_not_change_results() {
        let (m, k, n) = (13usize, 37usize, 29usize);
        let a = Tensor::from_vec(lcg(5, m * k), [m, k]).unwrap();
        let bt = Tensor::from_vec(lcg(6, n * k), [n, k]).unwrap();
        let bp = PackedB::from_transb(&bt).unwrap();
        let bias = lcg(7, n);
        let epi = Epilogue::col_bias(&bias).with_act(Some(Act::Tanh));
        let mut base = Tensor::zeros([0usize; 2]);
        matmul_transb_packed_into_kc(&a, &bp, epi, &mut base, 1).unwrap();
        for kc in [2usize, 3, 8, 16, 64, 4096] {
            let mut c = Tensor::zeros([0usize; 2]);
            matmul_transb_packed_into_kc(&a, &bp, epi, &mut c, kc).unwrap();
            assert_eq!(c.data(), base.data(), "kc={kc}");
        }
    }

    #[test]
    fn unpacked_cols_b_matches_packed() {
        // Conv-style: B given row-major [k, n] with a ragged tail panel.
        let (m, k, n) = (5usize, 12usize, 37usize);
        let a = lcg(11, m * k);
        let b_cols = lcg(12, k * n);
        let bias_r = lcg(13, m);
        let mut pb = PackedB::new();
        pb.pack_cols_into(&b_cols, k, n);
        let epi = Epilogue::row_bias(&bias_r).with_act(Some(Act::Relu));
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm_into(
            m,
            n,
            k,
            ASource::Rows(&a),
            BSource::Cols(&b_cols),
            epi,
            &mut c1,
        );
        gemm_into(
            m,
            n,
            k,
            ASource::Rows(&a),
            BSource::Packed(&pb),
            epi,
            &mut c2,
        );
        assert_eq!(c1, c2);
    }

    #[test]
    fn packed_a_matches_rows_a() {
        for &(m, k, n) in &[(4usize, 36usize, 50usize), (19, 8, 33), (8, 5, 16)] {
            let a = lcg(21, m * k);
            let b_cols = lcg(22, k * n);
            let pa = PackedA::from_rows(&a, m, k);
            let mut c1 = vec![0.0f32; m * n];
            let mut c2 = vec![0.0f32; m * n];
            let epi = Epilogue::none().with_act(Some(Act::Sigmoid));
            gemm_into(
                m,
                n,
                k,
                ASource::Rows(&a),
                BSource::Cols(&b_cols),
                epi,
                &mut c1,
            );
            gemm_into(
                m,
                n,
                k,
                ASource::Packed(&pa),
                BSource::Cols(&b_cols),
                epi,
                &mut c2,
            );
            assert_eq!(c1, c2, "({m},{k},{n})");
        }
    }

    #[test]
    fn k_zero_is_pure_epilogue() {
        let bias = vec![1.5f32, -2.0];
        let mut c = vec![9.0f32; 2 * 2];
        gemm_into(
            2,
            2,
            0,
            ASource::Rows(&[]),
            BSource::Cols(&[]),
            Epilogue::col_bias(&bias).with_act(Some(Act::Relu)),
            &mut c,
        );
        assert_eq!(c, vec![1.5, 0.0, 1.5, 0.0]);
    }

    #[test]
    fn block_heuristic_is_sane() {
        assert_eq!(par_rows_per_block(0, 10, 10), 1);
        // Invariants over a grid of shapes: always in 1..=m, and monotone
        // non-increasing in the per-row cost n*k.
        for &m in &[1usize, 7, 8, 64, 1024, 100_000] {
            let mut prev = usize::MAX;
            for &nk in &[1usize, 16, 128, 1024, 16_384, 262_144, 1 << 24] {
                let rows = par_rows_per_block(m, nk, 1);
                assert!((1..=m.max(1)).contains(&rows), "m={m} nk={nk} rows={rows}");
                assert!(rows <= prev, "m={m}: rows must not grow with n*k");
                prev = rows;
            }
        }
        // Bigger per-row cost => fewer (or equal) rows per task.
        assert!(par_rows_per_block(1024, 512, 512) <= par_rows_per_block(1024, 16, 16));
        // Row-heavy, flops-light problems still split into at least one
        // task per participant so the stealing cursor has work to level.
        let threads = hpacml_par::current_parallelism();
        let rows = par_rows_per_block(100_000, 4, 4);
        assert!(100_000usize.div_ceil(rows) >= threads);
        assert!(!par_worthwhile(1, 4096, 4096));
        assert!(par_worthwhile(64, 64, 64));
        // Saturation heuristic is a pure threshold at the pool width.
        assert!(!outer_saturates(threads - 1) || threads == 1);
        assert!(outer_saturates(threads));
        assert!(outer_saturates(threads + 5));
    }

    #[test]
    fn scratch_reserve_grows_once() {
        reserve_scratch::<f32>(512, 1024, 2048);
        f32::with_gemm_scratch(|s| {
            assert!(s.packed_a.data.len() >= 512);
            assert!(s.packed_b.data.len() >= 1024);
            assert!(s.col.len() >= 2048);
        });
    }
}
