//! Owned, contiguous, row-major tensors.

use crate::scalar::Scalar;
use crate::shape::Shape;
use crate::view::{View, ViewMut};
use crate::{Result, TensorError};

/// An owned dense tensor with row-major layout.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor<T: Scalar = f32> {
    data: Vec<T>,
    shape: Shape,
}

impl<T: Scalar> Tensor<T> {
    /// Build from raw data; `data.len()` must equal `shape.numel()`.
    pub fn from_vec(data: Vec<T>, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if data.len() != shape.numel() {
            return Err(TensorError::ShapeDataMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { data, shape })
    }

    /// All-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![T::ZERO; shape.numel()],
            shape,
        }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        Tensor {
            data: vec![value; shape.numel()],
            shape,
        }
    }

    /// Build element-by-element from a function of the multi-index.
    pub fn from_shape_fn(shape: impl Into<Shape>, f: impl FnMut(&[usize]) -> T) -> Self {
        let shape = shape.into();
        let mut f = f;
        let data = shape.indices().map(|idx| f(&idx)).collect();
        Tensor { data, shape }
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Elements the backing storage can hold without reallocating — what the
    /// inference workspaces reserve up front and tests assert stays flat.
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn data(&self) -> &[T] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element access by multi-index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> T {
        self.data[self.shape.offset_of(index)]
    }

    /// Mutable element access by multi-index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut T {
        let off = self.shape.offset_of(index);
        &mut self.data[off]
    }

    /// Reshape this tensor in place to `dims`, growing or shrinking the
    /// backing storage as needed. Existing element values are preserved only
    /// up to `min(old, new)` elements; callers are expected to overwrite the
    /// contents. In steady state (same or smaller numel, same rank) this
    /// performs no heap allocation, which is what the inference workspaces
    /// rely on.
    pub fn resize(&mut self, dims: &[usize]) {
        self.shape.set_dims(dims);
        self.data.resize(self.shape.numel(), T::ZERO);
    }

    /// Reshape in place without touching the data; the new dims must describe
    /// the same element count. Allocation-free when the rank fits the shape's
    /// existing capacity.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let numel: usize = dims.iter().product();
        if numel != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: dims.to_vec(),
            });
        }
        self.shape.set_dims(dims);
        Ok(())
    }

    /// Write `f` applied to every element of `self` into `out`, resizing
    /// `out` to match. Allocation-free once `out` has capacity.
    pub fn map_into(&self, out: &mut Tensor<T>, f: impl Fn(T) -> T) {
        out.resize(self.dims());
        for (o, x) in out.data.iter_mut().zip(&self.data) {
            *o = f(*x);
        }
    }

    /// Copy `self` verbatim into `out`, resizing `out` to match.
    pub fn copy_into(&self, out: &mut Tensor<T>) {
        out.resize(self.dims());
        out.data.copy_from_slice(&self.data);
    }

    /// Reinterpret as a new shape with the same element count. O(1).
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self> {
        let shape = shape.into();
        if shape.numel() != self.data.len() {
            return Err(TensorError::ReshapeMismatch {
                from: self.shape.dims().to_vec(),
                to: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            data: self.data,
            shape,
        })
    }

    /// Collapse to rank 2 `[rows, cols]` where `cols` is the product of the
    /// last `keep_last` dims. Used to feed sweep×feature tensors to MLPs.
    pub fn flatten_to_2d(self, keep_last: usize) -> Result<Self> {
        let rank = self.rank();
        if keep_last > rank {
            return Err(TensorError::AxisOutOfRange {
                axis: keep_last,
                rank,
            });
        }
        let cols: usize = self.dims()[rank - keep_last..].iter().product();
        let rows: usize = self.dims()[..rank - keep_last].iter().product();
        self.reshape([rows, cols.max(1)])
    }

    /// A read-only view of the full tensor.
    pub fn view(&self) -> View<'_, T> {
        View::full(&self.data, self.shape.clone())
    }

    /// A mutable view of the full tensor.
    pub fn view_mut(&mut self) -> ViewMut<'_, T> {
        let shape = self.shape.clone();
        ViewMut::full(&mut self.data, shape)
    }

    /// Apply `f` to every element, in place.
    pub fn map_inplace(&mut self, f: impl Fn(T) -> T + Sync) {
        if self.data.len() >= 1 << 16 {
            hpacml_par::par_map_inplace(&mut self.data, 4096, |_, x| f(x));
        } else {
            for x in &mut self.data {
                *x = f(*x);
            }
        }
    }

    /// New tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(T) -> T + Sync) -> Tensor<T> {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|x| x.to_f64()).sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.sum() / self.data.len() as f64
    }

    /// Convert the element type.
    pub fn cast<U: Scalar>(&self) -> Tensor<U> {
        Tensor {
            data: self.data.iter().map(|x| U::from_f64(x.to_f64())).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Concatenate along `axis`. All inputs must agree on every other dim.
    pub fn concat(parts: &[&Tensor<T>], axis: usize) -> Result<Tensor<T>> {
        if parts.is_empty() {
            return Err(TensorError::ConcatShapeMismatch("no inputs".into()));
        }
        let rank = parts[0].rank();
        if axis >= rank {
            return Err(TensorError::AxisOutOfRange { axis, rank });
        }
        for p in parts {
            if p.rank() != rank {
                return Err(TensorError::ConcatShapeMismatch(format!(
                    "rank {} vs {}",
                    p.rank(),
                    rank
                )));
            }
            for d in 0..rank {
                if d != axis && p.dims()[d] != parts[0].dims()[d] {
                    return Err(TensorError::ConcatShapeMismatch(format!(
                        "dim {d}: {} vs {}",
                        p.dims()[d],
                        parts[0].dims()[d]
                    )));
                }
            }
        }
        let cat_dim: usize = parts.iter().map(|p| p.dims()[axis]).sum();
        let mut out_dims = parts[0].dims().to_vec();
        out_dims[axis] = cat_dim;
        let out_shape = Shape::new(out_dims);

        // Copy in "outer × slice" blocks: everything before `axis` is the
        // outer loop; `axis` and everything after form contiguous runs.
        let outer: usize = parts[0].dims()[..axis].iter().product();
        let inner: usize = parts[0].dims()[axis + 1..].iter().product();
        let mut data = Vec::with_capacity(out_shape.numel());
        for o in 0..outer {
            for p in parts {
                let run = p.dims()[axis] * inner;
                let start = o * run;
                data.extend_from_slice(&p.data[start..start + run]);
            }
        }
        Ok(Tensor {
            data,
            shape: out_shape,
        })
    }

    /// Max |a - b| over all elements; errors on shape mismatch.
    pub fn max_abs_diff(&self, other: &Tensor<T>) -> Result<f64> {
        if self.shape != other.shape {
            return Err(TensorError::DimMismatch(format!(
                "{} vs {}",
                self.shape, other.shape
            )));
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max))
    }
}

impl<T: Scalar> Default for Tensor<T> {
    /// An empty rank-1 tensor — the natural seed for workspace arenas that
    /// grow on first use via [`Tensor::resize`].
    fn default() -> Self {
        Tensor {
            data: Vec::new(),
            shape: Shape::new([0usize]),
        }
    }
}

impl<T: Scalar> std::ops::Index<&[usize]> for Tensor<T> {
    type Output = T;
    fn index(&self, index: &[usize]) -> &T {
        &self.data[self.shape.offset_of(index)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_len() {
        assert!(Tensor::from_vec(vec![1.0f32; 6], [2, 3]).is_ok());
        assert!(matches!(
            Tensor::from_vec(vec![1.0f32; 5], [2, 3]),
            Err(TensorError::ShapeDataMismatch { .. })
        ));
    }

    #[test]
    fn zeros_full_and_at() {
        let t = Tensor::<f32>::zeros([2, 2]);
        assert_eq!(t.at(&[1, 1]), 0.0);
        let t = Tensor::full([2, 2], 7.0f32);
        assert_eq!(t.at(&[0, 1]), 7.0);
    }

    #[test]
    fn from_shape_fn_indexes_correctly() {
        let t = Tensor::<f64>::from_shape_fn([3, 4], |ix| (ix[0] * 10 + ix[1]) as f64);
        assert_eq!(t.at(&[2, 3]), 23.0);
        assert_eq!(t.at(&[0, 0]), 0.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..6).map(|i| i as f32).collect(), [2, 3]).unwrap();
        let r = t.reshape([3, 2]).unwrap();
        assert_eq!(r.at(&[2, 1]), 5.0);
        assert!(Tensor::<f32>::zeros([2, 3]).reshape([4, 2]).is_err());
    }

    #[test]
    fn flatten_to_2d_shapes() {
        let t = Tensor::<f32>::zeros([4, 5, 6]);
        let f = t.flatten_to_2d(1).unwrap();
        assert_eq!(f.dims(), &[20, 6]);
        let t = Tensor::<f32>::zeros([4, 5, 6]);
        let f = t.flatten_to_2d(2).unwrap();
        assert_eq!(f.dims(), &[4, 30]);
    }

    #[test]
    fn concat_last_axis() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        let b = Tensor::from_vec(vec![5.0f32, 6.0], [2, 1]).unwrap();
        let c = Tensor::concat(&[&a, &b], 1).unwrap();
        assert_eq!(c.dims(), &[2, 3]);
        assert_eq!(c.data(), &[1.0, 2.0, 5.0, 3.0, 4.0, 6.0]);
    }

    #[test]
    fn concat_first_axis() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], [1, 2]).unwrap();
        let b = Tensor::from_vec(vec![3.0f32, 4.0], [1, 2]).unwrap();
        let c = Tensor::concat(&[&a, &b], 0).unwrap();
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn concat_rejects_mismatch() {
        let a = Tensor::<f32>::zeros([2, 2]);
        let b = Tensor::<f32>::zeros([3, 1]);
        assert!(Tensor::concat(&[&a, &b], 1).is_err());
    }

    #[test]
    fn resize_reuses_capacity_and_reshape_in_place_checks() {
        let mut t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]).unwrap();
        let cap = t.data.capacity();
        t.resize(&[3, 2]);
        assert_eq!(t.dims(), &[3, 2]);
        t.resize(&[1, 4]);
        assert_eq!(t.numel(), 4);
        assert_eq!(t.data.capacity(), cap, "shrinking must not reallocate");
        assert!(t.reshape_in_place(&[4, 1]).is_ok());
        assert!(t.reshape_in_place(&[5]).is_err());
    }

    #[test]
    fn map_into_and_copy_into() {
        let t = Tensor::from_vec(vec![1.0f32, -2.0], [2]).unwrap();
        let mut out = Tensor::zeros([7]);
        t.map_into(&mut out, |x| x * 3.0);
        assert_eq!(out.dims(), &[2]);
        assert_eq!(out.data(), &[3.0, -6.0]);
        let mut c = Tensor::zeros([0]);
        t.copy_into(&mut c);
        assert_eq!(c.data(), t.data());
    }

    #[test]
    fn map_and_mean() {
        let t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], [4]).unwrap();
        let m = t.map(|x| x * 2.0);
        assert_eq!(m.data(), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(m.mean(), 5.0);
    }

    #[test]
    fn cast_roundtrip() {
        let t = Tensor::from_vec(vec![1.5f32, -2.5], [2]).unwrap();
        let d: Tensor<f64> = t.cast();
        assert_eq!(d.data(), &[1.5, -2.5]);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(vec![1.0f32, 2.0], [2]).unwrap();
        let b = Tensor::from_vec(vec![1.5f32, 1.0], [2]).unwrap();
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
        let c = Tensor::<f32>::zeros([3]);
        assert!(a.max_abs_diff(&c).is_err());
    }
}
