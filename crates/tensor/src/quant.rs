//! Reduced-precision weight storage for the inference GEMM: bf16 and
//! int8-symmetric packed panels with **f32 accumulation everywhere**.
//!
//! # Why this module exists
//!
//! The fused multicore GEMM made MLP inference memory-bandwidth-bound at
//! the weight stream: every forward pass walks the whole packed weight
//! panel once, and for models larger than the last-level cache that walk
//! is a DRAM read. Halving (bf16) or quartering (int8) the bytes per
//! weight therefore converts directly into forward-pass speedup, on any
//! host — including single-core ones, where there is no parallel lever
//! left to pull.
//!
//! # Determinism
//!
//! The quantized kernels preserve the module-wide bitwise-determinism
//! contract (see [`crate::gemm`]): each stored weight maps to **one
//! canonical f32** (`bf16_decode`, or `int8 as f32 * scale`) before it
//! enters the accumulator chain, and every output element is still a
//! single ascending-`k` f32 add-chain (`acc += a * dequant(b)`, no
//! `mul_add`). Dequantization is a pure per-element function of the
//! packed panel — independent of thread count, `KC` blocking, stripe
//! boundaries and batch size — so quantized results are a pure function
//! of the quantized panel, not the schedule. The epilogue is shared with
//! the f32 kernel (`gemm::finish_tile`) so bias/activation math
//! is the same float expression at every precision.
//!
//! # Encodings
//!
//! * **bf16**: the top 16 bits of the f32 representation, encoded with
//!   round-to-nearest-even and stored as `u16`. Decode is a lossless
//!   shift back into the high half of an f32 — exactly representable, no
//!   arithmetic.
//! * **int8 symmetric**: per-output-channel scale `absmax / 127` (abs-max
//!   over that channel's weights), `q = round(w / scale)` clamped to
//!   `±127` (`f32::round`, half-away-from-zero — deterministic, no FPU
//!   mode dependence). Decode is `q as f32 * scale`. Zero maps to zero
//!   exactly, so panel padding decodes to `0.0` at both precisions.

use crate::gemm::{finish_tile, par_rows_per_block, par_worthwhile, Bias, Epilogue, KC, NR};
use crate::tensor::Tensor;
use crate::{Result, TensorError};

use crate::gemm::MR;

// ---------------------------------------------------------------------------
// Precision tags
// ---------------------------------------------------------------------------

/// Weight storage precision for inference. Accumulation is always f32;
/// the tag only selects how packed weights are stored and decoded.
///
/// Ordered coarsest-first so that `Int8 < Bf16 < F32` reads as "less
/// precise < more precise" — the demotion ladder walks toward `F32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Precision {
    /// int8 symmetric, per-output-channel scales (4x weight bandwidth).
    Int8,
    /// bfloat16 round-to-nearest-even (2x weight bandwidth).
    Bf16,
    /// Full f32 storage — the existing kernels, byte-exact baseline.
    F32,
}

impl Precision {
    /// Stable serialization tag (model files, wire formats).
    pub fn tag(self) -> u8 {
        match self {
            Precision::F32 => 0,
            Precision::Bf16 => 1,
            Precision::Int8 => 2,
        }
    }

    /// Inverse of [`Precision::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Precision::F32),
            1 => Some(Precision::Bf16),
            2 => Some(Precision::Int8),
            _ => None,
        }
    }

    /// Human-readable name (bench keys, logs).
    pub fn name(self) -> &'static str {
        match self {
            Precision::F32 => "f32",
            Precision::Bf16 => "bf16",
            Precision::Int8 => "int8",
        }
    }
}

impl std::fmt::Display for Precision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

// ---------------------------------------------------------------------------
// Scalar codecs
// ---------------------------------------------------------------------------

/// Encode an f32 as bf16 (top 16 bits) with round-to-nearest-even.
/// NaN payloads are truncated but kept NaN (quiet bit forced).
#[inline(always)]
pub fn bf16_encode(v: f32) -> u16 {
    let bits = v.to_bits();
    if v.is_nan() {
        // Truncation could zero a signaling NaN's payload into an
        // infinity; force a quiet-NaN bit instead.
        return ((bits >> 16) as u16) | 0x0040;
    }
    let round = 0x7FFF + ((bits >> 16) & 1);
    (bits.wrapping_add(round) >> 16) as u16
}

/// Decode a bf16 back to f32 — exact (bf16 values are a subset of f32).
#[inline(always)]
pub fn bf16_decode(q: u16) -> f32 {
    f32::from_bits((q as u32) << 16)
}

/// Symmetric int8 scale for a channel with the given abs-max. An all-zero
/// channel gets scale `1.0` so decode still maps `0 -> 0.0` exactly.
#[inline]
pub fn int8_scale(absmax: f32) -> f32 {
    if absmax == 0.0 {
        1.0
    } else {
        absmax / 127.0
    }
}

/// Quantize one weight against its channel scale. `f32::round` is
/// half-away-from-zero — a deterministic scalar op, no FPU rounding-mode
/// dependence — and the clamp keeps the encoding symmetric (`-128` unused).
#[inline(always)]
pub fn int8_quantize(v: f32, scale: f32) -> i8 {
    (v / scale).round().clamp(-127.0, 127.0) as i8
}

/// Decode one int8 weight: the canonical f32 the accumulator chain sees.
#[inline(always)]
pub fn int8_dequantize(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

// ---------------------------------------------------------------------------
// Quantized packed B panels
// ---------------------------------------------------------------------------

/// Reduced-precision storage behind a [`QPackedB`].
#[derive(Debug, Clone)]
enum QData {
    Bf16(Vec<u16>),
    Int8(Vec<i8>),
}

/// The `B` operand of a `Linear` forward (`C = A · Bᵀ`), packed exactly
/// like [`crate::gemm::PackedB`] — `NR`-wide column panels, `k`-major,
/// zero-padded past column `n` — but stored at reduced precision plus a
/// per-column f32 scale table (all `1.0` for bf16; per-output-channel
/// `absmax/127` for int8, padded with `1.0`).
///
/// Weights are immutable at inference, so layers build one of these once
/// at compile/quantize time and steady-state forwards only ever read it.
#[derive(Debug, Clone)]
pub struct QPackedB {
    k: usize,
    n: usize,
    /// Per-column dequant scales, padded to `panels() * NR` with `1.0`.
    scales: Vec<f32>,
    data: QData,
}

impl QPackedB {
    /// Logical dims of the packed matrix: `[k, n]`.
    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of `NR`-wide panels (last one possibly zero-padded).
    pub fn panels(&self) -> usize {
        self.n.div_ceil(NR)
    }

    /// Storage precision of this pack.
    pub fn precision(&self) -> Precision {
        match self.data {
            QData::Bf16(_) => Precision::Bf16,
            QData::Int8(_) => Precision::Int8,
        }
    }

    /// Per-output-channel dequant scales (first `n` entries meaningful).
    pub fn scales(&self) -> &[f32] {
        &self.scales[..self.n]
    }

    /// Bytes of packed weight storage — the bandwidth the forward pass
    /// actually streams (bench reporting).
    pub fn packed_bytes(&self) -> usize {
        match &self.data {
            QData::Bf16(d) => d.len() * 2,
            QData::Int8(d) => d.len(),
        }
    }

    /// Pack a rank-2 transb tensor `[n, k]` (the `Linear` weight layout
    /// `w[out, in]`) at the given precision. `F32` has no quantized pack —
    /// callers keep using [`crate::gemm::PackedB`] for it.
    pub fn from_transb(t: &Tensor<f32>, prec: Precision) -> Result<Self> {
        if t.rank() != 2 {
            return Err(TensorError::DimMismatch(format!(
                "QPackedB::from_transb: expected rank 2, got {:?}",
                t.dims()
            )));
        }
        if prec == Precision::F32 {
            return Err(TensorError::DimMismatch(
                "QPackedB::from_transb: F32 uses the unquantized PackedB".into(),
            ));
        }
        let (n, k) = (t.dims()[0], t.dims()[1]);
        let bt = t.data();
        let panels = n.div_ceil(NR);
        let mut scales = vec![1.0f32; panels * NR];
        let data = match prec {
            Precision::Bf16 => {
                let mut d = vec![0u16; panels * k * NR];
                for p in 0..panels {
                    let j0 = p * NR;
                    let w = NR.min(n - j0);
                    let panel = &mut d[p * k * NR..(p + 1) * k * NR];
                    for (kk, row) in panel.chunks_exact_mut(NR).enumerate() {
                        for (j, v) in row.iter_mut().enumerate().take(w) {
                            *v = bf16_encode(bt[(j0 + j) * k + kk]);
                        }
                    }
                }
                QData::Bf16(d)
            }
            Precision::Int8 => {
                // Per-output-channel abs-max scales: output channel j is
                // row j of the transb weight matrix = packed column j.
                for (j, s) in scales.iter_mut().enumerate().take(n) {
                    let ch = &bt[j * k..(j + 1) * k];
                    let absmax = ch.iter().fold(0.0f32, |m, v| m.max(v.abs()));
                    *s = int8_scale(absmax);
                }
                let mut d = vec![0i8; panels * k * NR];
                for p in 0..panels {
                    let j0 = p * NR;
                    let w = NR.min(n - j0);
                    let panel = &mut d[p * k * NR..(p + 1) * k * NR];
                    for (kk, row) in panel.chunks_exact_mut(NR).enumerate() {
                        for (j, v) in row.iter_mut().enumerate().take(w) {
                            *v = int8_quantize(bt[(j0 + j) * k + kk], scales[j0 + j]);
                        }
                    }
                }
                QData::Int8(d)
            }
            Precision::F32 => unreachable!(),
        };
        Ok(QPackedB { k, n, scales, data })
    }

    /// The canonical f32 a stored weight decodes to: `dequant(j, kk)` for
    /// output channel `j`, input `kk` — the exact value the accumulator
    /// chain sees. Test/calibration oracle, not a hot path.
    pub fn dequant(&self, j: usize, kk: usize) -> f32 {
        assert!(j < self.n && kk < self.k, "QPackedB::dequant: out of range");
        let p = j / NR;
        let idx = (p * self.k + kk) * NR + (j % NR);
        match &self.data {
            QData::Bf16(d) => bf16_decode(d[idx]),
            QData::Int8(d) => int8_dequantize(d[idx], self.scales[j]),
        }
    }

    /// Worst-case int8 round-trip error in scale units:
    /// `max |w - dequant(quant(w))| / scale` over all weights. For a
    /// correct symmetric quantizer this is ≤ 0.5 (half a quantization
    /// step); bf16 packs report the analogous bound in ulps-at-bf16,
    /// which round-to-nearest-even also keeps ≤ 0.5. Bench/audit hook.
    pub fn max_abs_scale_err(&self, t: &Tensor<f32>) -> f32 {
        let (n, k) = (self.n, self.k);
        assert_eq!(t.dims(), &[n, k], "max_abs_scale_err: dims mismatch");
        let bt = t.data();
        let mut worst = 0.0f32;
        for j in 0..n {
            for kk in 0..k {
                let w = bt[j * k + kk];
                let dq = self.dequant(j, kk);
                let step = match self.data {
                    QData::Bf16(_) => {
                        // One bf16 ulp at w's magnitude: 7 explicit
                        // mantissa bits → spacing 2^-7 of the binade base.
                        let e = f32::from_bits(w.to_bits() & 0x7F80_0000);
                        if e == 0.0 {
                            f32::MIN_POSITIVE
                        } else {
                            e * (1.0 / 128.0)
                        }
                    }
                    QData::Int8(_) => self.scales[j],
                };
                worst = worst.max((w - dq).abs() / step);
            }
        }
        worst
    }

    /// One row stripe of the quantized GEMM, dispatched to the dtype's
    /// monomorphized body.
    // allow: GEMM kernel plumbing — see micro_tile_q.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn stripe(
        &self,
        row0: usize,
        stripe: &mut [f32],
        n: usize,
        k: usize,
        a: &[f32],
        epi: &Epilogue<'_, f32>,
        kc: usize,
    ) {
        match &self.data {
            QData::Bf16(d) => {
                stripe_body_q::<DeqBf16>(row0, stripe, n, k, a, d, &self.scales, epi, kc)
            }
            QData::Int8(d) => {
                stripe_body_q::<DeqInt8>(row0, stripe, n, k, a, d, &self.scales, epi, kc)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dequantizing micro/macro-kernel
// ---------------------------------------------------------------------------

/// In-register dequantization: how one stored weight becomes the single
/// canonical f32 the accumulator chain consumes.
trait Dequant {
    type Q: Copy + Send + Sync;
    fn decode(q: Self::Q, scale: f32) -> f32;
}

struct DeqBf16;

impl Dequant for DeqBf16 {
    type Q = u16;
    #[inline(always)]
    fn decode(q: u16, _scale: f32) -> f32 {
        bf16_decode(q)
    }
}

struct DeqInt8;

impl Dequant for DeqInt8 {
    type Q = i8;
    #[inline(always)]
    fn decode(q: i8, scale: f32) -> f32 {
        int8_dequantize(q, scale)
    }
}

/// The quantized register-tiled micro-kernel: identical structure to
/// `gemm::micro_tile` (strides, accumulate/finish protocol, ascending-`k`
/// chains) with one extra step — each packed `NR`-row is decoded into a
/// stack-resident f32 row before entering the multiply-add chain. The
/// decode is a pure element map, so the accumulation order and float
/// expression match the f32 kernel run on pre-dequantized weights bit for
/// bit.
// allow: GEMM kernel plumbing — dims, panel slices and strides stay
// individual scalars so they live in registers through the tile loops.
#[allow(clippy::too_many_arguments)]
#[inline(never)] // same rationale as gemm::micro_tile: keep the hot loop a
                 // small standalone optimization unit so LLVM vectorizes it.
fn micro_tile_q<D: Dequant, const M: usize>(
    a: &[f32],
    a_kk: usize,
    a_i: usize,
    b: &[D::Q], // panel slab: b[kk * NR + j]
    scales: &[f32],
    klen: usize,
    c: &mut [f32],
    ldc: usize,
    cols: usize,
    accumulate: bool,
    finish: Option<(&Epilogue<'_, f32>, usize, usize)>,
) {
    let scales = &scales[..NR];
    let mut acc = [[0.0f32; NR]; M];
    if accumulate {
        for (i, arow) in acc.iter_mut().enumerate() {
            for (j, v) in arow.iter_mut().enumerate().take(cols) {
                *v = c[i * ldc + j];
            }
        }
    }
    for kk in 0..klen {
        let braw = &b[kk * NR..kk * NR + NR];
        let mut brow = [0.0f32; NR];
        for (j, v) in brow.iter_mut().enumerate() {
            *v = D::decode(braw[j], scales[j]);
        }
        let abase = kk * a_kk;
        for (i, arow) in acc.iter_mut().enumerate() {
            let av = a[abase + i * a_i];
            for (j, v) in arow.iter_mut().enumerate() {
                // One chain per element, mul+add (not mul_add) — the same
                // contract as the f32 micro-kernel.
                *v += av * brow[j];
            }
        }
    }
    if let Some((epi, row0, col0)) = finish {
        finish_tile::<f32, M>(&mut acc, epi, row0, col0, cols);
    }
    for (i, arow) in acc.iter().enumerate() {
        c[i * ldc..i * ldc + cols].copy_from_slice(&arow[..cols]);
    }
}

/// Sweep the `NR`-wide quantized panels of one `M`-row block.
// allow: GEMM kernel plumbing — see micro_tile_q.
#[allow(clippy::too_many_arguments)]
fn panel_sweep_q<D: Dequant, const M: usize>(
    a: &[f32],
    a_kk: usize,
    a_i: usize,
    data: &[D::Q],
    scales: &[f32],
    n: usize,
    k: usize,
    k0: usize,
    klen: usize,
    c: &mut [f32], // M rows, ldc == n
    row0: usize,
    accumulate: bool,
    epi: Option<&Epilogue<'_, f32>>,
) {
    for p in 0..n.div_ceil(NR) {
        let j0 = p * NR;
        let cols = NR.min(n - j0);
        let slab = &data[p * k * NR + k0 * NR..(p + 1) * k * NR];
        micro_tile_q::<D, M>(
            a,
            a_kk,
            a_i,
            slab,
            &scales[j0..j0 + NR],
            klen,
            &mut c[j0..],
            n,
            cols,
            accumulate,
            epi.map(|e| (e, row0, j0)),
        );
    }
}

/// Compute one C row-stripe against quantized panels — the structural twin
/// of `gemm::stripe_body` for a row-major `A` (`Linear` activations are
/// never packed): `kc`-deep `k` slabs, MR tiles, then 4/2/1 step-down.
// allow: GEMM kernel plumbing — see micro_tile_q.
#[allow(clippy::too_many_arguments)]
fn stripe_body_q<D: Dequant>(
    row0: usize,
    stripe: &mut [f32],
    n: usize,
    k: usize,
    a: &[f32],
    data: &[D::Q],
    scales: &[f32],
    epi: &Epilogue<'_, f32>,
    kc: usize,
) {
    let rows = stripe.len() / n;
    let slabs = k.div_ceil(kc).max(1); // k == 0 still runs one epilogue pass
    for slab in 0..slabs {
        let k0 = slab * kc;
        let klen = kc.min(k - k0);
        let accumulate = slab > 0;
        let last = slab + 1 == slabs;

        let mut r = 0;
        while rows - r >= MR {
            let row = row0 + r;
            panel_sweep_q::<D, MR>(
                &a[row * k + k0..],
                1,
                k,
                data,
                scales,
                n,
                k,
                k0,
                klen,
                &mut stripe[r * n..(r + MR) * n],
                row,
                accumulate,
                last.then_some(epi),
            );
            r += MR;
        }
        while r < rows {
            let row = row0 + r;
            let left = rows - r;
            let ab = &a[row * k + k0..];
            let step = if left >= 4 {
                panel_sweep_q::<D, 4>(
                    ab,
                    1,
                    k,
                    data,
                    scales,
                    n,
                    k,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 4) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                4
            } else if left >= 2 {
                panel_sweep_q::<D, 2>(
                    ab,
                    1,
                    k,
                    data,
                    scales,
                    n,
                    k,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 2) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                2
            } else {
                panel_sweep_q::<D, 1>(
                    ab,
                    1,
                    0,
                    data,
                    scales,
                    n,
                    k,
                    k0,
                    klen,
                    &mut stripe[r * n..(r + 1) * n],
                    row,
                    accumulate,
                    last.then_some(epi),
                );
                1
            };
            r += step;
        }
    }
}

// ---------------------------------------------------------------------------
// Tensor-level entry points
// ---------------------------------------------------------------------------

/// `C[m, n] = epilogue(A[m, k] · Bᵀ)` against quantized packed weights —
/// the reduced-precision `Linear` forward kernel. `c` is resized in place
/// (allocation-free once it has capacity). Bit-identical across pool
/// widths, `KC` blocking and batch sizes, like every kernel in the crate.
pub fn matmul_transb_qpacked_into(
    a: &Tensor<f32>,
    qb: &QPackedB,
    epi: Epilogue<'_, f32>,
    c: &mut Tensor<f32>,
) -> Result<()> {
    matmul_transb_qpacked_into_kc(a, qb, epi, c, KC)
}

/// [`matmul_transb_qpacked_into`] with an explicit cache-slab depth (the
/// determinism/tuning hook, mirroring the f32 entry points).
pub fn matmul_transb_qpacked_into_kc(
    a: &Tensor<f32>,
    qb: &QPackedB,
    epi: Epilogue<'_, f32>,
    c: &mut Tensor<f32>,
    kc: usize,
) -> Result<()> {
    if a.rank() != 2 {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transb_qpacked: lhs expected rank 2, got {:?}",
            a.dims()
        )));
    }
    let (m, k) = (a.dims()[0], a.dims()[1]);
    if k != qb.k() {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transb_qpacked: lhs is [{m}, {k}], packed rhs is [{}, {}]",
            qb.n(),
            qb.k()
        )));
    }
    let n = qb.n();
    c.resize(&[m, n]);
    gemm_q_into_kc(m, n, k, a.data(), qb, epi, c.data_mut(), kc);
    Ok(())
}

/// The quantized macro-kernel driver: same shape validation, parallel
/// split and stripe alignment as `gemm::gemm_into_kc` — row stripes are
/// the parallel axis, aligned to `MR` so every stripe starts on a
/// register-tile boundary.
// allow: GEMM kernel plumbing — see micro_tile_q.
#[allow(clippy::too_many_arguments)]
fn gemm_q_into_kc(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    qb: &QPackedB,
    epi: Epilogue<'_, f32>,
    c: &mut [f32],
    kc: usize,
) {
    assert_eq!(c.len(), m * n, "qgemm: bad C length");
    assert_eq!(a.len(), m * k, "qgemm: bad A length");
    if let Bias::Col(bias) = epi.bias {
        assert_eq!(bias.len(), n, "qgemm: col bias length");
    }
    if let Bias::Row(bias) = epi.bias {
        assert_eq!(bias.len(), m, "qgemm: row bias length");
    }
    if m == 0 || n == 0 {
        return;
    }
    let kc = kc.max(1);
    if par_worthwhile(m, n, k) {
        let rows = par_rows_per_block(m, n, k).div_ceil(MR) * MR;
        hpacml_par::par_chunks_mut(c, rows * n, |start, stripe| {
            qb.stripe(start / n, stripe, n, k, a, &epi, kc);
        });
    } else {
        qb.stripe(0, c, n, k, a, &epi, kc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::Act;

    fn lcg(seed: u64, len: usize) -> Vec<f32> {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f32 / (1u64 << 31) as f32) - 1.0
            })
            .collect()
    }

    /// Naive reference over the *dequantized* weights: one accumulator
    /// per element, ascending k — the canonical semantics the quantized
    /// kernel must reproduce bit for bit.
    fn reference_q(
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        qb: &QPackedB,
        epi: &Epilogue<'_, f32>,
    ) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * qb.dequant(j, kk);
                }
                acc = match epi.bias {
                    Bias::None => acc,
                    Bias::Col(b) => acc + b[j],
                    Bias::Row(b) => acc + b[i],
                };
                if let Some(act) = epi.act {
                    acc = act.apply(acc);
                }
                c[i * n + j] = acc;
            }
        }
        c
    }

    #[test]
    fn bf16_codec_round_trips_exact_values() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 96.0, -1024.0] {
            assert_eq!(bf16_decode(bf16_encode(v)), v, "v={v}");
        }
        assert_eq!(bf16_decode(bf16_encode(f32::INFINITY)), f32::INFINITY);
        assert!(bf16_decode(bf16_encode(f32::NAN)).is_nan());
    }

    #[test]
    fn bf16_rounds_to_nearest_even() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and the next
        // bf16 up; nearest-even keeps the even (lower) one.
        let halfway = f32::from_bits(0x3F80_8000);
        assert_eq!(bf16_decode(bf16_encode(halfway)), 1.0);
        // Just above halfway rounds up.
        let above = f32::from_bits(0x3F80_8001);
        assert_eq!(bf16_decode(bf16_encode(above)), f32::from_bits(0x3F81_0000));
        // Odd-mantissa halfway rounds up to the even neighbor.
        let odd_half = f32::from_bits(0x3F81_8000);
        assert_eq!(
            bf16_decode(bf16_encode(odd_half)),
            f32::from_bits(0x3F82_0000)
        );
    }

    #[test]
    fn int8_quantizer_is_symmetric_and_bounded() {
        let scale = int8_scale(3.5);
        assert_eq!(int8_quantize(3.5, scale), 127);
        assert_eq!(int8_quantize(-3.5, scale), -127);
        assert_eq!(int8_quantize(0.0, scale), 0);
        assert_eq!(int8_scale(0.0), 1.0);
        // Round-trip error never exceeds half a step.
        for v in lcg(7, 1000) {
            let s = int8_scale(1.0);
            let err = (v - int8_dequantize(int8_quantize(v, s), s)).abs();
            assert!(err <= 0.5 * s + f32::EPSILON, "v={v} err={err}");
        }
    }

    #[test]
    fn qpacked_gemm_bitwise_matches_dequant_reference() {
        for prec in [Precision::Bf16, Precision::Int8] {
            for &(m, k, n) in &[
                (1usize, 1usize, 1usize),
                (1, 7, 30),
                (3, 4, 5),
                (8, 16, 16),
                (9, 3, 17),
                (17, 9, 23),
                (64, 33, 48),
                (70, 64, 64),
            ] {
                let a = Tensor::from_vec(lcg(m as u64 * 31 + 1, m * k), [m, k]).unwrap();
                let bt = Tensor::from_vec(lcg(n as u64 * 17 + 2, n * k), [n, k]).unwrap();
                let bias = lcg(99, n);
                let qb = QPackedB::from_transb(&bt, prec).unwrap();
                for epi in [
                    Epilogue::none(),
                    Epilogue::col_bias(&bias).with_act(Some(Act::Tanh)),
                    Epilogue::col_bias(&bias).with_act(Some(Act::Relu)),
                ] {
                    let want = reference_q(m, n, k, a.data(), &qb, &epi);
                    let mut c = Tensor::zeros([0usize; 2]);
                    matmul_transb_qpacked_into(&a, &qb, epi, &mut c).unwrap();
                    assert_eq!(c.data(), &want[..], "{prec} ({m},{k},{n})");
                }
            }
        }
    }

    #[test]
    fn kc_slabs_do_not_change_quantized_results() {
        let (m, k, n) = (13usize, 37usize, 29usize);
        let a = Tensor::from_vec(lcg(5, m * k), [m, k]).unwrap();
        let bt = Tensor::from_vec(lcg(6, n * k), [n, k]).unwrap();
        let bias = lcg(7, n);
        for prec in [Precision::Bf16, Precision::Int8] {
            let qb = QPackedB::from_transb(&bt, prec).unwrap();
            let epi = Epilogue::col_bias(&bias).with_act(Some(Act::Tanh));
            let mut base = Tensor::zeros([0usize; 2]);
            matmul_transb_qpacked_into_kc(&a, &qb, epi, &mut base, 1).unwrap();
            for kc in [2usize, 3, 8, 16, 64, 4096] {
                let mut c = Tensor::zeros([0usize; 2]);
                matmul_transb_qpacked_into_kc(&a, &qb, epi, &mut c, kc).unwrap();
                assert_eq!(c.data(), base.data(), "{prec} kc={kc}");
            }
        }
    }

    #[test]
    fn bf16_pack_of_bf16_exact_weights_matches_f32_kernel() {
        // Weights already on the bf16 grid survive the pack losslessly,
        // so the quantized kernel must equal the f32 kernel bit for bit.
        let (m, k, n) = (9usize, 24usize, 33usize);
        let bt_exact: Vec<f32> = lcg(8, n * k)
            .into_iter()
            .map(|v| bf16_decode(bf16_encode(v)))
            .collect();
        let a = Tensor::from_vec(lcg(9, m * k), [m, k]).unwrap();
        let btt = Tensor::from_vec(bt_exact, [n, k]).unwrap();
        let bias = lcg(10, n);
        let epi = Epilogue::col_bias(&bias).with_act(Some(Act::Sigmoid));
        let qb = QPackedB::from_transb(&btt, Precision::Bf16).unwrap();
        let pb = crate::gemm::PackedB::from_transb(&btt).unwrap();
        let mut cq = Tensor::zeros([0usize; 2]);
        matmul_transb_qpacked_into(&a, &qb, epi, &mut cq).unwrap();
        let mut cf = Tensor::zeros([0usize; 2]);
        crate::gemm::matmul_transb_packed_into(&a, &pb, epi, &mut cf).unwrap();
        assert_eq!(cq.data(), cf.data());
    }

    #[test]
    fn precision_tags_round_trip() {
        for p in [Precision::F32, Precision::Bf16, Precision::Int8] {
            assert_eq!(Precision::from_tag(p.tag()), Some(p));
        }
        assert_eq!(Precision::from_tag(9), None);
        // The ladder order the fallback controller walks.
        assert!(Precision::Int8 < Precision::Bf16);
        assert!(Precision::Bf16 < Precision::F32);
    }

    #[test]
    fn scale_err_bound_holds() {
        let bt = Tensor::from_vec(lcg(11, 40 * 24), [40, 24]).unwrap();
        for prec in [Precision::Bf16, Precision::Int8] {
            let qb = QPackedB::from_transb(&bt, prec).unwrap();
            let err = qb.max_abs_scale_err(&bt);
            assert!(err <= 0.5 + 1e-4, "{prec}: err={err}");
        }
    }

    #[test]
    fn zero_channel_gets_unit_scale_and_exact_zero() {
        let mut w = lcg(12, 5 * 8);
        for v in &mut w[2 * 8..3 * 8] {
            *v = 0.0;
        }
        let bt = Tensor::from_vec(w, [5, 8]).unwrap();
        let qb = QPackedB::from_transb(&bt, Precision::Int8).unwrap();
        assert_eq!(qb.scales()[2], 1.0);
        for kk in 0..8 {
            assert_eq!(qb.dequant(2, kk), 0.0);
        }
    }
}
