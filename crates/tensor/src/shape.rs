//! Shapes, row-major strides and index arithmetic.

use crate::{Result, TensorError};

/// The extents of an n-dimensional tensor. Row-major (C) layout throughout.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape(Vec<usize>);

impl Shape {
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// Scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    pub fn rank(&self) -> usize {
        self.0.len()
    }

    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.0
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.0.len(),
            })
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Row-major strides in *elements* (last dim has stride 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-index; panics in debug if out of range.
    #[inline]
    pub fn offset_of(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let strides = self.strides();
        let mut off = 0usize;
        for (k, &i) in index.iter().enumerate() {
            debug_assert!(
                i < self.0[k],
                "index {i} out of bound {} on axis {k}",
                self.0[k]
            );
            off += i * strides[k];
        }
        off
    }

    /// Iterate every multi-index in row-major order. Intended for tests and
    /// cold paths; hot kernels use explicit loops.
    pub fn indices(&self) -> IndexIter {
        IndexIter {
            dims: self.0.clone(),
            cur: vec![0; self.0.len()],
            remaining: self.numel(),
        }
    }

    /// Shape with `extra` appended as a new trailing dimension.
    pub fn with_trailing(&self, extra: usize) -> Shape {
        let mut d = self.0.clone();
        d.push(extra);
        Shape(d)
    }

    /// Overwrite the dims in place, reusing the existing allocation when the
    /// capacity suffices. This is what lets workspace tensors change shape on
    /// every forward pass without touching the heap in steady state.
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.0.clear();
        self.0.extend_from_slice(dims);
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

/// Row-major multi-index iterator.
pub struct IndexIter {
    dims: Vec<usize>,
    cur: Vec<usize>,
    remaining: usize,
}

impl Iterator for IndexIter {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.remaining == 0 {
            return None;
        }
        let out = self.cur.clone();
        self.remaining -= 1;
        // Increment like an odometer.
        for axis in (0..self.dims.len()).rev() {
            self.cur[axis] += 1;
            if self.cur[axis] < self.dims[axis] {
                break;
            }
            self.cur[axis] = 0;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for IndexIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_strides() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.offset_of(&[]), 0);
    }

    #[test]
    fn offset_of_matches_manual() {
        let s = Shape::new([4, 5, 6]);
        assert_eq!(s.offset_of(&[0, 0, 0]), 0);
        assert_eq!(s.offset_of(&[1, 2, 3]), 30 + 12 + 3);
        assert_eq!(s.offset_of(&[3, 4, 5]), s.numel() - 1);
    }

    #[test]
    fn index_iter_row_major_order() {
        let s = Shape::new([2, 3]);
        let all: Vec<Vec<usize>> = s.indices().collect();
        assert_eq!(
            all,
            vec![
                vec![0, 0],
                vec![0, 1],
                vec![0, 2],
                vec![1, 0],
                vec![1, 1],
                vec![1, 2]
            ]
        );
    }

    #[test]
    fn index_iter_len_matches_numel() {
        let s = Shape::new([3, 1, 4]);
        assert_eq!(s.indices().count(), 12);
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::new([2, 2]);
        assert!(matches!(s.dim(5), Err(TensorError::AxisOutOfRange { .. })));
    }

    #[test]
    fn with_trailing_appends() {
        let s = Shape::new([2, 3]).with_trailing(5);
        assert_eq!(s.dims(), &[2, 3, 5]);
    }
}
