//! Compute kernels: matmul family, im2col convolution, pooling.
//!
//! These are the dense-linear-algebra operations the paper's Observation 2
//! is about: NN inference is implemented by dense kernels that use hardware
//! efficiently. All kernels parallelize over the [`hpacml_par`] pool and fall
//! back to inline execution for small problems; block sizes come from the
//! shared heuristic in [`crate::gemm::par_rows_per_block`].
//!
//! The inference-critical kernels (`matmul_transb_into`, the convolution
//! forward) route through the register-tiled [`crate::gemm`] subsystem with
//! fused bias/activation epilogues; the remaining training-side kernels
//! keep their simpler axpy formulations.

use crate::gemm::{self, ASource, Act, BSource, Epilogue, PackedA, WithScratch};
use crate::scalar::Scalar;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

// Parallelism threshold shared with the GEMM subsystem: below this many
// multiply-adds, kernels run inline.
use crate::gemm::PAR_FLOPS_MIN;

#[inline]
fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    // Plain mul+add (not `mul_add`): on targets without FMA the fused form
    // lowers to a libm call per element, which is ruinous in this hot loop;
    // mul+add autovectorizes everywhere.
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * *xi;
    }
}

/// `C[m,n] = A[m,k] · B[k,n]`.
pub fn matmul<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let mut c = Tensor::zeros([0usize; 2]);
    matmul_into(a, b, &mut c)?;
    Ok(c)
}

/// [`matmul`] writing into a caller-owned output tensor (resized in place;
/// allocation-free once `c` has capacity).
pub fn matmul_into<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>, c: &mut Tensor<T>) -> Result<()> {
    let (m, k) = mat_dims(a, "matmul lhs")?;
    let (kb, n) = mat_dims(b, "matmul rhs")?;
    if k != kb {
        return Err(TensorError::DimMismatch(format!(
            "matmul: lhs is [{m}, {k}], rhs is [{kb}, {n}]"
        )));
    }
    c.resize(&[m, n]);
    c.data_mut().fill(T::ZERO); // the kernel accumulates
    let (ad, bd) = (a.data(), b.data());
    let body = |row0: usize, rows: &mut [T]| {
        for (r, crow) in rows.chunks_exact_mut(n).enumerate() {
            let i = row0 / n + r;
            let arow = &ad[i * k..(i + 1) * k];
            for (kk, &aik) in arow.iter().enumerate() {
                axpy(aik, &bd[kk * n..(kk + 1) * n], crow);
            }
        }
    };
    dispatch_rows(c.data_mut(), m, n, k, body);
    Ok(())
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` (dot products of rows — cache friendly).
pub fn matmul_transb<T: Scalar + WithScratch>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let mut c = Tensor::zeros([0usize; 2]);
    matmul_transb_into(a, b, &mut c, Epilogue::none())?;
    Ok(c)
}

/// Below this many `A` rows, packing `B` costs more than it saves and the
/// row-wise dot kernel wins; at or above it, `B` is packed into this
/// thread's scratch panels and the tiled GEMM runs. The cutover is a pure
/// function of `m`, so a given output row is computed identically whichever
/// path serves it (both accumulate in ascending-`k` order).
const PACK_MIN_ROWS: usize = 4;

/// [`matmul_transb`] writing into a caller-owned output tensor (resized in
/// place; allocation-free once `c` has capacity) with a fused
/// [`Epilogue`] — bias add and activation applied to each output tile
/// while it is register/L1-hot instead of in separate full sweeps. This is
/// the linear-layer kernel the zero-alloc inference workspace uses; when
/// the layer's weights are pre-packed (compiled models), prefer
/// [`gemm::matmul_transb_packed_into`] which skips the per-call pack.
pub fn matmul_transb_into<T: Scalar + WithScratch>(
    a: &Tensor<T>,
    b: &Tensor<T>,
    c: &mut Tensor<T>,
    epi: Epilogue<'_, T>,
) -> Result<()> {
    let (m, k) = mat_dims(a, "matmul_transb lhs")?;
    let (n, kb) = mat_dims(b, "matmul_transb rhs")?;
    if k != kb {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transb: lhs is [{m}, {k}], rhs is [{n}, {kb}]"
        )));
    }
    if let gemm::Bias::Col(bias) = epi.bias {
        if bias.len() != n {
            return Err(TensorError::DimMismatch(format!(
                "matmul_transb: col bias has {} entries for {n} columns",
                bias.len()
            )));
        }
    }
    if let gemm::Bias::Row(bias) = epi.bias {
        if bias.len() != m {
            return Err(TensorError::DimMismatch(format!(
                "matmul_transb: row bias has {} entries for {m} rows",
                bias.len()
            )));
        }
    }
    c.resize(&[m, n]); // every cell is overwritten below; no zero fill needed
    let (ad, bd) = (a.data(), b.data());
    if m >= PACK_MIN_ROWS {
        T::with_gemm_scratch(|s| {
            s.packed_b.pack_rows_into(bd, n, k);
            gemm::gemm_into(
                m,
                n,
                k,
                ASource::Rows(ad),
                BSource::Packed(&s.packed_b),
                epi,
                c.data_mut(),
            );
        });
        return Ok(());
    }
    // Small-m path: per-element dot products over the contiguous B rows,
    // same ascending-k accumulation order as the tiled kernel.
    for (i, crow) in c.data_mut().chunks_exact_mut(n).enumerate() {
        let arow = &ad[i * k..(i + 1) * k];
        for (j, cij) in crow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            let mut acc = T::ZERO;
            for (x, y) in arow.iter().zip(brow) {
                acc += *x * *y;
            }
            acc = match epi.bias {
                gemm::Bias::None => acc,
                gemm::Bias::Col(bias) => acc + bias[j],
                gemm::Bias::Row(bias) => acc + bias[i],
            };
            if let Some(act) = epi.act {
                acc = act.apply(acc);
            }
            *cij = acc;
        }
    }
    Ok(())
}

/// `C[m,n] = A[k,m]ᵀ · B[k,n]`.
pub fn matmul_transa<T: Scalar>(a: &Tensor<T>, b: &Tensor<T>) -> Result<Tensor<T>> {
    let mut c = Tensor::zeros([0usize; 2]);
    matmul_transa_into(a, b, &mut c)?;
    Ok(c)
}

/// [`matmul_transa`] writing into a caller-owned output tensor.
pub fn matmul_transa_into<T: Scalar>(
    a: &Tensor<T>,
    b: &Tensor<T>,
    c: &mut Tensor<T>,
) -> Result<()> {
    let (k, m) = mat_dims(a, "matmul_transa lhs")?;
    let (kb, n) = mat_dims(b, "matmul_transa rhs")?;
    if k != kb {
        return Err(TensorError::DimMismatch(format!(
            "matmul_transa: lhs is [{k}, {m}], rhs is [{kb}, {n}]"
        )));
    }
    c.resize(&[m, n]);
    c.data_mut().fill(T::ZERO); // the kernel accumulates
    let (ad, bd) = (a.data(), b.data());
    let body = |row0: usize, rows: &mut [T]| {
        for (r, crow) in rows.chunks_exact_mut(n).enumerate() {
            let i = row0 / n + r;
            for kk in 0..k {
                let aki = ad[kk * m + i];
                axpy(aki, &bd[kk * n..(kk + 1) * n], crow);
            }
        }
    };
    dispatch_rows(c.data_mut(), m, n, k, body);
    Ok(())
}

fn mat_dims<T: Scalar>(t: &Tensor<T>, what: &str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::DimMismatch(format!(
            "{what}: expected rank 2, got {}",
            t.rank()
        )));
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Run `body(row_start_elem, row_block)` over the `m` rows of an `[m, n]`
/// output, in parallel if the problem is big enough. Task sizes come from
/// the shared [`gemm::par_rows_per_block`] heuristic.
fn dispatch_rows<T, F>(c: &mut [T], m: usize, n: usize, k: usize, body: F)
where
    T: Scalar,
    F: Fn(usize, &mut [T]) + Sync,
{
    if !gemm::par_worthwhile(m, n, k) {
        body(0, c);
        return;
    }
    hpacml_par::par_chunks_mut(c, gemm::par_rows_per_block(m, n, k) * n, body);
}

/// `out[i, :] += bias` for every row of a rank-2 tensor.
///
/// This is the non-fused fallback — the inference path applies bias inside
/// the GEMM epilogue instead. Parallelizes over row blocks (shared
/// heuristic, `k = 1`: one multiply-add-equivalent per element) for the
/// large tensors the training loop feeds it.
pub fn add_bias_rows<T: Scalar>(out: &mut Tensor<T>, bias: &[T]) -> Result<()> {
    let (m, n) = mat_dims(out, "add_bias_rows")?;
    if bias.len() != n {
        return Err(TensorError::DimMismatch(format!(
            "bias has {} entries for {} columns",
            bias.len(),
            n
        )));
    }
    let body = |_start: usize, rows: &mut [T]| {
        for row in rows.chunks_exact_mut(n) {
            for (o, b) in row.iter_mut().zip(bias) {
                *o += *b;
            }
        }
    };
    dispatch_rows(out.data_mut(), m, n, 1, body);
    Ok(())
}

/// Convolution geometry helper: output extent for one spatial dim.
#[inline]
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    let padded = input + 2 * pad;
    if padded < kernel {
        return 0;
    }
    (padded - kernel) / stride + 1
}

/// Parameters of a 2-D convolution / pooling window sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    pub kernel: (usize, usize),
    pub stride: (usize, usize),
    pub pad: (usize, usize),
}

impl Conv2dGeom {
    pub fn square(kernel: usize, stride: usize, pad: usize) -> Self {
        Conv2dGeom {
            kernel: (kernel, kernel),
            stride: (stride, stride),
            pad: (pad, pad),
        }
    }

    pub fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            conv_out_dim(h, self.kernel.0, self.stride.0, self.pad.0),
            conv_out_dim(w, self.kernel.1, self.stride.1, self.pad.1),
        )
    }
}

/// Fill one im2col row: `row` encodes the tap `(ch, ki, kj)` as
/// `(ch * kh + ki) * kw + kj`, `dst` is that row's `OH*OW` destination.
/// Shared verbatim by the sequential and parallel fills — each row's
/// content depends only on the input and its own tap, so fill order (and
/// which thread runs it) cannot change a single bit.
fn im2col_fill_row<T: Scalar>(
    input: &[T],
    h: usize,
    w: usize,
    g: Conv2dGeom,
    row: usize,
    dst: &mut [T],
) {
    let (kh, kw) = g.kernel;
    let (sh, sw) = g.stride;
    let (ph, pw) = g.pad;
    let (oh, ow) = g.out_hw(h, w);
    debug_assert_eq!(dst.len(), oh * ow);
    let kj = row % kw;
    let ki = (row / kw) % kh;
    let ch = row / (kh * kw);
    for oy in 0..oh {
        let iy = (oy * sh + ki) as isize - ph as isize;
        let drow = &mut dst[oy * ow..(oy + 1) * ow];
        if iy < 0 || iy as usize >= h {
            for v in drow.iter_mut() {
                *v = T::ZERO;
            }
            continue;
        }
        let iy = iy as usize;
        let src_row = &input[(ch * h + iy) * w..(ch * h + iy + 1) * w];
        for (ox, v) in drow.iter_mut().enumerate() {
            let ix = (ox * sw + kj) as isize - pw as isize;
            *v = if ix < 0 || ix as usize >= w {
                T::ZERO
            } else {
                src_row[ix as usize]
            };
        }
    }
}

/// im2col for one sample: input `[C, H, W]` slice → col `[C*KH*KW, OH*OW]`.
pub fn im2col<T: Scalar>(input: &[T], c: usize, h: usize, w: usize, g: Conv2dGeom, col: &mut [T]) {
    let (kh, kw) = g.kernel;
    let (oh, ow) = g.out_hw(h, w);
    assert_eq!(
        col.len(),
        c * kh * kw * oh * ow,
        "im2col: bad col buffer size"
    );
    let l = oh * ow;
    // Row r of col corresponds to (ch, ki, kj); column to (oy, ox).
    for (row, dst) in col.chunks_exact_mut(l.max(1)).enumerate() {
        im2col_fill_row(input, h, w, g, row, dst);
    }
}

/// [`im2col`] with the row fills dispatched across the pool — the conv
/// inner-parallel route uses this so the column-matrix build scales along
/// with the GEMM that consumes it. Row contents are produced by the same
/// scalar fill as the sequential version, so results are bit-identical;
/// small problems fall back to the sequential loop inline.
pub fn im2col_par<T: Scalar + Send>(
    input: &[T],
    c: usize,
    h: usize,
    w: usize,
    g: Conv2dGeom,
    col: &mut [T],
) {
    let (kh, kw) = g.kernel;
    let (oh, ow) = g.out_hw(h, w);
    let l = oh * ow;
    let rows = c * kh * kw;
    assert_eq!(col.len(), rows * l, "im2col_par: bad col buffer size");
    if rows <= 1 || rows * l < PAR_FLOPS_MIN {
        im2col(input, c, h, w, g, col);
        return;
    }
    hpacml_par::par_chunks_mut(col, l, |start, dst| {
        // One chunk == one col row (the grain divides col.len() exactly).
        im2col_fill_row(input, h, w, g, start / l, dst);
    });
}

/// Reverse of [`im2col`]: accumulate col `[C*KH*KW, OH*OW]` back into the
/// input gradient `[C, H, W]`.
pub fn col2im<T: Scalar>(col: &[T], c: usize, h: usize, w: usize, g: Conv2dGeom, dinput: &mut [T]) {
    let (kh, kw) = g.kernel;
    let (sh, sw) = g.stride;
    let (ph, pw) = g.pad;
    let (oh, ow) = g.out_hw(h, w);
    assert_eq!(
        col.len(),
        c * kh * kw * oh * ow,
        "col2im: bad col buffer size"
    );
    let l = oh * ow;
    for ch in 0..c {
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ch * kh + ki) * kw + kj;
                let src = &col[row * l..(row + 1) * l];
                for oy in 0..oh {
                    let iy = (oy * sh + ki) as isize - ph as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * sw + kj) as isize - pw as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        dinput[(ch * h + iy) * w + ix as usize] += src[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Forward 2-D convolution.
///
/// `input [N, C, H, W]`, `weight [F, C, KH, KW]`, `bias [F]` → `[N, F, OH, OW]`.
///
/// Large per-sample problems route through im2col into this thread's
/// reusable scratch column buffer and the register-tiled packed GEMM
/// (`out[f, l] = W[f, ckk] · col[ckk, l]` with the bias — and, for fused
/// layers, the activation — applied in the GEMM epilogue). Small problems
/// keep the direct kernels: a row-span `axpy` path for stride 1, im2col +
/// `axpy` otherwise. The choice depends only on the per-sample geometry,
/// never on the batch size or thread count, so batched and per-sample
/// forwards stay bit-identical.
pub fn conv2d<T: Scalar + WithScratch>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    bias: &[T],
    g: Conv2dGeom,
) -> Result<Tensor<T>> {
    let mut out = Tensor::zeros([0usize; 4]);
    conv2d_into(input, weight, bias, g, &mut out)?;
    Ok(out)
}

/// [`conv2d`] writing into a caller-owned output tensor (resized in place).
/// Steady-state allocation-free on every path: the direct kernels touch no
/// scratch, and the im2col/GEMM paths reuse this thread's grow-only
/// [`gemm::GemmScratch`] column buffer.
pub fn conv2d_into<T: Scalar + WithScratch>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    bias: &[T],
    g: Conv2dGeom,
    out: &mut Tensor<T>,
) -> Result<()> {
    conv2d_fused_into(input, weight, None, bias, g, None, out)
}

/// Does a per-sample conv problem (`f` filters, `ckk = c*kh*kw` taps,
/// `l = oh*ow` output pixels) pay for the im2col + packed-GEMM route?
/// The column matrix costs `ckk * l` writes; the GEMM amortizes that only
/// when the spatial extent spans whole register panels and the arithmetic
/// clears the shared [`PAR_FLOPS_MIN`] bar. Pure shape function — see
/// [`conv2d`] for why that matters.
pub fn conv_gemm_worthwhile(f: usize, ckk: usize, l: usize) -> bool {
    l >= 2 * gemm::NR && f * ckk * l >= PAR_FLOPS_MIN
}

/// [`conv2d_into`] with the compiled-layer extras: optionally pre-packed
/// weight panels (`W` viewed as the `[f, ckk]` GEMM `A` operand, packed
/// once at model load) and a fused activation applied while each output
/// tile is hot.
pub fn conv2d_fused_into<T: Scalar + WithScratch>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    packed_w: Option<&PackedA<T>>,
    bias: &[T],
    g: Conv2dGeom,
    act: Option<Act>,
    out: &mut Tensor<T>,
) -> Result<()> {
    let [n, c, h, w] = rank4(input, "conv2d input")?;
    let [f, cw, kh, kw] = rank4(weight, "conv2d weight")?;
    if cw != c || (kh, kw) != g.kernel {
        return Err(TensorError::DimMismatch(format!(
            "conv2d: weight [{f}, {cw}, {kh}, {kw}] does not match input channels {c} / kernel {:?}",
            g.kernel
        )));
    }
    if bias.len() != f {
        return Err(TensorError::DimMismatch(format!(
            "conv2d: bias len {} vs {f} filters",
            bias.len()
        )));
    }
    if let Some(p) = packed_w {
        if (p.m(), p.k()) != (f, c * kh * kw) {
            return Err(TensorError::DimMismatch(format!(
                "conv2d: packed weight is [{}, {}], expected [{f}, {}]",
                p.m(),
                p.k(),
                c * kh * kw
            )));
        }
    }
    let (oh, ow) = g.out_hw(h, w);
    let l = oh * ow;
    let ckk = c * kh * kw;
    out.resize(&[n, f, oh, ow]); // every cell is overwritten by the kernels
    let in_sample = c * h * w;
    let out_sample = f * l;
    let wd = weight.data();
    let id = input.data();
    let use_gemm = conv_gemm_worthwhile(f, ckk, l);
    let direct = g.stride == (1, 1);

    // Small batches on a wide pool starve it if samples are the only
    // parallel axis (n < threads leaves cores idle); route those through
    // intra-sample parallelism — parallel im2col fill plus the row-parallel
    // GEMM — on the caller's thread instead. The per-sample math is the
    // same on both routes (each output element keeps its one ascending-k
    // chain; packed and row-major A are bit-identical by the packing
    // tests), and the route choice is a pure function of batch size and
    // pool width, so batched == sequential stays bitwise.
    if use_gemm && !gemm::outer_saturates(n) {
        let od = out.data_mut();
        T::with_gemm_scratch(|s| {
            // Pack the weight once per call into this thread's scratch when
            // the model didn't pre-pack: every sample's GEMM then reads
            // MR-interleaved panels instead of re-walking row-major rows.
            if packed_w.is_none() {
                s.packed_a.pack_rows_into(wd, f, ckk);
            }
            let gemm::GemmScratch { packed_a, col, .. } = s;
            if col.len() < ckk * l {
                col.resize(ckk * l, T::ZERO);
            }
            let col = &mut col[..ckk * l];
            let a = match packed_w {
                Some(p) => ASource::Packed(p),
                None => ASource::Packed(packed_a),
            };
            for (sample, out_n) in od.chunks_exact_mut(out_sample).enumerate() {
                let inp = &id[sample * in_sample..(sample + 1) * in_sample];
                im2col_par(inp, c, h, w, g, col);
                gemm::gemm_into(
                    f,
                    l,
                    ckk,
                    a,
                    BSource::Cols(col),
                    Epilogue::row_bias(bias).with_act(act),
                    out_n,
                );
            }
        });
        return Ok(());
    }

    hpacml_par::par_chunks_mut(out.data_mut(), out_sample, |start, out_n| {
        let sample = start / out_sample;
        let inp = &id[sample * in_sample..(sample + 1) * in_sample];
        if use_gemm {
            T::with_gemm_scratch(|s| {
                if s.col.len() < ckk * l {
                    s.col.resize(ckk * l, T::ZERO);
                }
                let col = &mut s.col[..ckk * l];
                im2col(inp, c, h, w, g, col);
                let a = match packed_w {
                    Some(p) => ASource::Packed(p),
                    None => ASource::Rows(wd),
                };
                // Nested dispatch runs inline here — on pool workers and
                // on the participating caller alike (both are flagged
                // in-worker while draining) — so the outer per-sample
                // parallelism is preserved.
                gemm::gemm_into(
                    f,
                    l,
                    ckk,
                    a,
                    BSource::Cols(col),
                    Epilogue::row_bias(bias).with_act(act),
                    out_n,
                );
            });
        } else if direct {
            conv2d_sample_direct_s1(inp, c, h, w, wd, bias, g, oh, ow, act, out_n);
        } else {
            T::with_gemm_scratch(|s| {
                if s.col.len() < ckk * l {
                    s.col.resize(ckk * l, T::ZERO);
                }
                let col = &mut s.col[..ckk * l];
                im2col(inp, c, h, w, g, col);
                // out_n[f, l] = W[f, ckk] · col[ckk, l]
                for (fi, orow) in out_n.chunks_exact_mut(l).enumerate() {
                    let wrow = &wd[fi * ckk..(fi + 1) * ckk];
                    for v in orow.iter_mut() {
                        *v = bias[fi];
                    }
                    for (kk, &wv) in wrow.iter().enumerate() {
                        axpy(wv, &col[kk * l..(kk + 1) * l], orow);
                    }
                    if let Some(act) = act {
                        for v in orow.iter_mut() {
                            *v = act.apply(*v);
                        }
                    }
                }
            });
        }
    });
    Ok(())
}

/// Direct stride-1 convolution for one sample: for every (filter, channel,
/// kernel tap) the contribution to an output row is a contiguous slice of an
/// input row scaled by one weight — a vectorizable `axpy` with the padding
/// handled by span clipping instead of per-pixel branches. A fused
/// activation is applied per filter plane while it is still cache-hot.
// allow: conv kernel plumbing — every dim/stride is an individually hot
// scalar the optimizer keeps in registers; a params struct defeats that.
#[allow(clippy::too_many_arguments)]
fn conv2d_sample_direct_s1<T: Scalar>(
    inp: &[T],
    c: usize,
    h: usize,
    w: usize,
    wd: &[T],
    bias: &[T],
    g: Conv2dGeom,
    oh: usize,
    ow: usize,
    act: Option<Act>,
    out_n: &mut [T],
) {
    let (kh, kw) = g.kernel;
    let (ph, pw) = g.pad;
    let l = oh * ow;
    for (fi, of) in out_n.chunks_exact_mut(l).enumerate() {
        for v in of.iter_mut() {
            *v = bias[fi];
        }
        for ch in 0..c {
            let plane = &inp[ch * h * w..(ch + 1) * h * w];
            for ki in 0..kh {
                for kj in 0..kw {
                    let wv = wd[((fi * c + ch) * kh + ki) * kw + kj];
                    if wv == T::ZERO {
                        continue;
                    }
                    // Valid output columns: 0 <= ox + kj - pw < w.
                    let o0 = (pw as isize - kj as isize).max(0) as usize;
                    let o1 = ((w as isize + pw as isize - kj as isize).max(0) as usize).min(ow);
                    if o0 >= o1 {
                        continue;
                    }
                    let shift = kj as isize - pw as isize;
                    for oy in 0..oh {
                        let iy = oy as isize + ki as isize - ph as isize;
                        if iy < 0 || iy as usize >= h {
                            continue;
                        }
                        let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                        let s0 = (o0 as isize + shift) as usize;
                        let src = &src_row[s0..s0 + (o1 - o0)];
                        axpy(wv, src, &mut of[oy * ow + o0..oy * ow + o1]);
                    }
                }
            }
        }
        if let Some(act) = act {
            for v in of.iter_mut() {
                *v = act.apply(*v);
            }
        }
    }
}

/// Gradients of [`conv2d`]: returns `(dinput, dweight, dbias)`.
pub fn conv2d_backward<T: Scalar>(
    input: &Tensor<T>,
    weight: &Tensor<T>,
    dout: &Tensor<T>,
    g: Conv2dGeom,
) -> Result<(Tensor<T>, Tensor<T>, Vec<T>)> {
    let [n, c, h, w] = rank4(input, "conv2d_backward input")?;
    let [f, _, kh, kw] = rank4(weight, "conv2d_backward weight")?;
    let (oh, ow) = g.out_hw(h, w);
    let l = oh * ow;
    let ckk = c * kh * kw;
    if dout.dims() != [n, f, oh, ow] {
        return Err(TensorError::DimMismatch(format!(
            "conv2d_backward: dout {:?} expected [{n}, {f}, {oh}, {ow}]",
            dout.dims()
        )));
    }
    let mut dinput = Tensor::zeros([n, c, h, w]);
    let in_sample = c * h * w;
    let out_sample = f * l;
    let wd = weight.data();
    let id = input.data();
    let dd = dout.data();

    use parking_lot::Mutex;
    let acc: Mutex<(Vec<T>, Vec<T>)> = Mutex::new((vec![T::ZERO; f * ckk], vec![T::ZERO; f]));

    hpacml_par::par_chunks_mut(dinput.data_mut(), in_sample, |start, din_n| {
        let sample = start / in_sample;
        let mut col = vec![T::ZERO; ckk * l];
        im2col(
            &id[sample * in_sample..(sample + 1) * in_sample],
            c,
            h,
            w,
            g,
            &mut col,
        );
        let dout_n = &dd[sample * out_sample..(sample + 1) * out_sample];

        // Local gradient accumulators for this sample.
        let mut dw_loc = vec![T::ZERO; f * ckk];
        let mut db_loc = vec![T::ZERO; f];
        // dW[f, ckk] += dout_n[f, l] · col[ckk, l]ᵀ ; db[f] += Σ dout rows.
        for fi in 0..f {
            let drow = &dout_n[fi * l..(fi + 1) * l];
            for v in drow {
                db_loc[fi] += *v;
            }
            let dwrow = &mut dw_loc[fi * ckk..(fi + 1) * ckk];
            for (kk, dwv) in dwrow.iter_mut().enumerate() {
                let crow = &col[kk * l..(kk + 1) * l];
                let mut s = T::ZERO;
                for (x, y) in drow.iter().zip(crow) {
                    s += *x * *y;
                }
                *dwv = s;
            }
        }
        // dcol[ckk, l] = Wᵀ[ckk, f] · dout_n[f, l]; reuse `col` as dcol.
        for v in col.iter_mut() {
            *v = T::ZERO;
        }
        for fi in 0..f {
            let drow = &dout_n[fi * l..(fi + 1) * l];
            let wrow = &wd[fi * ckk..(fi + 1) * ckk];
            for (kk, &wv) in wrow.iter().enumerate() {
                axpy(wv, drow, &mut col[kk * l..(kk + 1) * l]);
            }
        }
        col2im(&col, c, h, w, g, din_n);

        let mut guard = acc.lock();
        for (a, b) in guard.0.iter_mut().zip(&dw_loc) {
            *a += *b;
        }
        for (a, b) in guard.1.iter_mut().zip(&db_loc) {
            *a += *b;
        }
    });

    let (dw, db) = acc.into_inner();
    let dweight = Tensor::from_vec(dw, [f, c, kh, kw])?;
    Ok((dinput, dweight, db))
}

/// Forward max-pooling over `[N, C, H, W]`; returns the pooled tensor and the
/// flat argmax index (into the input) per output element, for backward.
pub fn maxpool2d<T: Scalar>(input: &Tensor<T>, g: Conv2dGeom) -> Result<(Tensor<T>, Vec<u32>)> {
    let [n, c, _, _] = rank4(input, "maxpool2d input")?;
    let (oh, ow) = g.out_hw(input.dims()[2], input.dims()[3]);
    let mut out = Tensor::zeros([0usize; 4]);
    let mut arg = vec![0u32; n * c * oh * ow];
    maxpool2d_body(input, g, &mut out, Some(&mut arg))?;
    Ok((out, arg))
}

/// [`maxpool2d`] writing into a caller-owned output tensor, without tracking
/// the argmax indices (inference only; resized in place, allocation-free once
/// `out` has capacity).
pub fn maxpool2d_into<T: Scalar>(
    input: &Tensor<T>,
    g: Conv2dGeom,
    out: &mut Tensor<T>,
) -> Result<()> {
    maxpool2d_body(input, g, out, None)
}

fn maxpool2d_body<T: Scalar>(
    input: &Tensor<T>,
    g: Conv2dGeom,
    out: &mut Tensor<T>,
    mut arg: Option<&mut [u32]>,
) -> Result<()> {
    let [n, c, h, w] = rank4(input, "maxpool2d input")?;
    let (kh, kw) = g.kernel;
    let (sh, sw) = g.stride;
    let (oh, ow) = g.out_hw(h, w);
    out.resize(&[n, c, oh, ow]);
    let id = input.data();
    let od = out.data_mut();
    for nn in 0..n {
        for ch in 0..c {
            let plane = (nn * c + ch) * h * w;
            let oplane = (nn * c + ch) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = T::from_f64(f64::NEG_INFINITY);
                    let mut best_ix = 0usize;
                    for ki in 0..kh {
                        let iy = oy * sh + ki;
                        if iy >= h {
                            continue;
                        }
                        for kj in 0..kw {
                            let ix = ox * sw + kj;
                            if ix >= w {
                                continue;
                            }
                            let v = id[plane + iy * w + ix];
                            if v > best {
                                best = v;
                                best_ix = plane + iy * w + ix;
                            }
                        }
                    }
                    od[oplane + oy * ow + ox] = best;
                    if let Some(arg) = arg.as_deref_mut() {
                        arg[oplane + oy * ow + ox] = best_ix as u32;
                    }
                }
            }
        }
    }
    Ok(())
}

/// Backward max-pooling: route `dout` gradients to the argmax positions.
pub fn maxpool2d_backward<T: Scalar>(
    dout: &Tensor<T>,
    arg: &[u32],
    input_shape: &[usize],
) -> Result<Tensor<T>> {
    if dout.numel() != arg.len() {
        return Err(TensorError::DimMismatch(format!(
            "maxpool2d_backward: dout {} vs argmax {}",
            dout.numel(),
            arg.len()
        )));
    }
    let mut dinput = Tensor::zeros(input_shape.to_vec());
    let dd = dinput.data_mut();
    for (g, ix) in dout.data().iter().zip(arg) {
        dd[*ix as usize] += *g;
    }
    Ok(dinput)
}

fn rank4<T: Scalar>(t: &Tensor<T>, what: &str) -> Result<[usize; 4]> {
    if t.rank() != 4 {
        return Err(TensorError::DimMismatch(format!(
            "{what}: expected rank 4, got {:?}",
            t.dims()
        )));
    }
    Ok([t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor<f64>, b: &Tensor<f64>) -> Tensor<f64> {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        Tensor::from_shape_fn([m, n], |ix| {
            (0..k)
                .map(|kk| a.at(&[ix[0], kk]) * b.at(&[kk, ix[1]]))
                .sum()
        })
    }

    fn rand_mat(m: usize, n: usize, seed: u64) -> Tensor<f64> {
        // Small deterministic LCG; avoids a rand dependency in unit tests.
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        Tensor::from_shape_fn([m, n], |_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 4, 5),
            (17, 9, 23),
            (64, 64, 64),
        ] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let c = matmul(&a, &b).unwrap();
            let expect = naive_matmul(&a, &b);
            assert!(c.max_abs_diff(&expect).unwrap() < 1e-10, "({m},{k},{n})");
        }
    }

    #[test]
    fn matmul_parallel_path_matches_naive() {
        let a = rand_mat(200, 80, 3);
        let b = rand_mat(80, 150, 4);
        let c = matmul(&a, &b).unwrap();
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)).unwrap() < 1e-9);
    }

    #[test]
    fn matmul_transb_matches() {
        let a = rand_mat(13, 7, 5);
        let bt = rand_mat(11, 7, 6); // B is [11, 7]; logical B^T is [7, 11]
        let b = Tensor::from_shape_fn([7, 11], |ix| bt.at(&[ix[1], ix[0]]));
        let c = matmul_transb(&a, &bt).unwrap();
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)).unwrap() < 1e-10);
    }

    #[test]
    fn matmul_transa_matches() {
        let at = rand_mat(7, 13, 7); // A is [7, 13]; logical A^T is [13, 7]
        let a = Tensor::from_shape_fn([13, 7], |ix| at.at(&[ix[1], ix[0]]));
        let b = rand_mat(7, 11, 8);
        let c = matmul_transa(&at, &b).unwrap();
        assert!(c.max_abs_diff(&naive_matmul(&a, &b)).unwrap() < 1e-10);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::<f32>::zeros([2, 3]);
        let b = Tensor::<f32>::zeros([4, 2]);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn bias_rows() {
        let mut t = Tensor::from_vec(vec![1.0f32, 2.0, 3.0, 4.0], [2, 2]).unwrap();
        add_bias_rows(&mut t, &[10.0, 20.0]).unwrap();
        assert_eq!(t.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert!(add_bias_rows(&mut t, &[1.0]).is_err());
    }

    fn naive_conv2d(
        input: &Tensor<f64>,
        weight: &Tensor<f64>,
        bias: &[f64],
        g: Conv2dGeom,
    ) -> Tensor<f64> {
        let [n, c, h, w] = [
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        ];
        let [f, _, kh, kw] = [
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        ];
        let (oh, ow) = g.out_hw(h, w);
        Tensor::from_shape_fn([n, f, oh, ow], |ix| {
            let (nn, fi, oy, ox) = (ix[0], ix[1], ix[2], ix[3]);
            let mut acc = bias[fi];
            for ch in 0..c {
                for ki in 0..kh {
                    for kj in 0..kw {
                        let iy = (oy * g.stride.0 + ki) as isize - g.pad.0 as isize;
                        let ixx = (ox * g.stride.1 + kj) as isize - g.pad.1 as isize;
                        if iy < 0 || iy as usize >= h || ixx < 0 || ixx as usize >= w {
                            continue;
                        }
                        acc += input.at(&[nn, ch, iy as usize, ixx as usize])
                            * weight.at(&[fi, ch, ki, kj]);
                    }
                }
            }
            acc
        })
    }

    #[test]
    fn conv2d_matches_naive_with_padding_and_stride() {
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1), (3, 0)] {
            let g = Conv2dGeom::square(3, stride, pad);
            let input = rand_mat(2 * 3 * 8 * 9, 1, 11)
                .reshape([2, 3, 8, 9])
                .unwrap();
            let weight = rand_mat(4 * 3 * 3 * 3, 1, 12)
                .reshape([4, 3, 3, 3])
                .unwrap();
            let bias = vec![0.1, -0.2, 0.3, 0.0];
            let got = conv2d(&input, &weight, &bias, g).unwrap();
            let expect = naive_conv2d(&input, &weight, &bias, g);
            assert!(
                got.max_abs_diff(&expect).unwrap() < 1e-10,
                "stride={stride} pad={pad}"
            );
        }
    }

    #[test]
    fn conv2d_backward_matches_finite_differences() {
        let g = Conv2dGeom::square(3, 2, 1);
        let input = rand_mat(2 * 6 * 6, 1, 21).reshape([1, 2, 6, 6]).unwrap();
        let weight = rand_mat(3 * 2 * 3 * 3, 1, 22)
            .reshape([3, 2, 3, 3])
            .unwrap();
        let bias = vec![0.0; 3];
        // Loss = sum(conv output); then dL/dout = 1 everywhere.
        let out = conv2d(&input, &weight, &bias, g).unwrap();
        let dout = Tensor::full(out.dims().to_vec(), 1.0f64);
        let (dinput, dweight, dbias) = conv2d_backward(&input, &weight, &dout, g).unwrap();

        let eps = 1e-5;
        let loss = |inp: &Tensor<f64>, wt: &Tensor<f64>| -> f64 {
            conv2d(inp, wt, &bias, g).unwrap().sum()
        };
        // Check a scattering of input gradient entries.
        for &flat in &[0usize, 7, 35, 71] {
            let mut ip = input.clone();
            ip.data_mut()[flat] += eps;
            let mut im = input.clone();
            im.data_mut()[flat] -= eps;
            let fd = (loss(&ip, &weight) - loss(&im, &weight)) / (2.0 * eps);
            assert!(
                (fd - dinput.data()[flat]).abs() < 1e-5,
                "dinput[{flat}]: fd={fd} analytic={}",
                dinput.data()[flat]
            );
        }
        // And weight gradient entries.
        for &flat in &[0usize, 5, 17, 53] {
            let mut wp = weight.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[flat] -= eps;
            let fd = (loss(&input, &wp) - loss(&input, &wm)) / (2.0 * eps);
            assert!(
                (fd - dweight.data()[flat]).abs() < 1e-5,
                "dweight[{flat}]: fd={fd} analytic={}",
                dweight.data()[flat]
            );
        }
        // Bias gradient of a sum-loss is the number of output pixels per filter.
        let (oh, ow) = g.out_hw(6, 6);
        for b in &dbias {
            assert!((b - (oh * ow) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn maxpool_forward_and_backward() {
        let input = Tensor::from_vec(
            vec![
                1.0f32, 2.0, 5.0, 3.0, //
                4.0, 0.0, 1.0, 2.0, //
                7.0, 1.0, 0.0, 1.0, //
                2.0, 3.0, 4.0, 8.0,
            ],
            [1, 1, 4, 4],
        )
        .unwrap();
        let g = Conv2dGeom::square(2, 2, 0);
        let (out, arg) = maxpool2d(&input, g).unwrap();
        assert_eq!(out.dims(), &[1, 1, 2, 2]);
        assert_eq!(out.data(), &[4.0, 5.0, 7.0, 8.0]);
        let dout = Tensor::full([1, 1, 2, 2], 1.0f32);
        let din = maxpool2d_backward(&dout, &arg, &[1, 1, 4, 4]).unwrap();
        assert_eq!(din.data()[4], 1.0); // the "4.0"
        assert_eq!(din.data()[2], 1.0); // the "5.0"
        assert_eq!(din.data()[8], 1.0); // the "7.0"
        assert_eq!(din.data()[15], 1.0); // the "8.0"
        assert_eq!(din.sum(), 4.0);
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> — the operators are adjoint.
        let g = Conv2dGeom::square(3, 2, 1);
        let (c, h, w) = (2usize, 5usize, 6usize);
        let (oh, ow) = g.out_hw(h, w);
        let ckk = c * 9;
        let x = rand_mat(c * h * w, 1, 31).into_vec();
        let y = rand_mat(ckk * oh * ow, 1, 32).into_vec();
        let mut cx = vec![0.0f64; ckk * oh * ow];
        im2col(&x, c, h, w, g, &mut cx);
        let mut aty = vec![0.0f64; c * h * w];
        col2im(&y, c, h, w, g, &mut aty);
        let lhs: f64 = cx.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    #[test]
    fn conv_out_dim_formula() {
        assert_eq!(conv_out_dim(8, 3, 1, 0), 6);
        assert_eq!(conv_out_dim(8, 3, 1, 1), 8);
        assert_eq!(conv_out_dim(8, 3, 2, 1), 4);
        assert_eq!(conv_out_dim(2, 3, 1, 0), 0);
    }
}
